"""§4's closing observation: "the time required for obtaining the
predicted speed-up values ... increases for large log files" (the authors
experimented with logs up to 15 MB).

We sweep synthetic workloads over an order of magnitude of event counts
and measure the wall-clock cost of the prediction pipeline (parse +
compile + replay).  The regenerated series must grow roughly linearly in
the number of events — the paper's qualitative claim.
"""

from __future__ import annotations

import time

import pytest

from repro import SimConfig, compile_trace, predict
from repro.program.uniexec import record_program
from repro.recorder import logfile
from repro.workloads.synthetic import event_rate_program

from _common import emit

SYNC_OPS = (250, 1_000, 4_000)


@pytest.fixture(scope="module")
def scaling_data():
    data = []
    for ops in SYNC_OPS:
        program = event_rate_program(nthreads=8, sync_ops=ops, work_per_op_us=500)
        run = record_program(program)
        text = logfile.dumps(run.trace)

        t0 = time.perf_counter()
        trace = logfile.loads(text)
        plan = compile_trace(trace)
        result = predict(trace, SimConfig(cpus=8), plan=plan)
        elapsed = time.perf_counter() - t0

        data.append(
            {
                "sync_ops": ops,
                "events": len(run.trace),
                "bytes": len(text.encode()),
                "predict_s": elapsed,
                "makespan_us": result.makespan_us,
            }
        )
    return data


@pytest.mark.parametrize("ops", SYNC_OPS)
def test_prediction_cost(benchmark, ops):
    """Benchmark parse+compile+replay for one log size."""
    program = event_rate_program(nthreads=8, sync_ops=ops, work_per_op_us=500)
    run = record_program(program)
    text = logfile.dumps(run.trace)

    def pipeline():
        trace = logfile.loads(text)
        plan = compile_trace(trace)
        return predict(trace, SimConfig(cpus=8), plan=plan)

    result = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    assert result.makespan_us > 0


def test_scaling_report(benchmark, scaling_data):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Prediction cost vs log size (paper: grows with log size; "
        "15 MB logs were workable)",
        f"{'sync ops':>9} {'events':>8} {'log bytes':>10} {'predict (s)':>12}",
    ]
    for row in scaling_data:
        lines.append(
            f"{row['sync_ops']:>9} {row['events']:>8} {row['bytes']:>10} "
            f"{row['predict_s']:>12.3f}"
        )
    emit("\n" + "\n".join(lines), artifact="scaling.txt")

    # qualitative claim: bigger logs take longer, roughly linearly
    times = [row["predict_s"] for row in scaling_data]
    events = [row["events"] for row in scaling_data]
    assert times[0] < times[-1]
    growth = (times[-1] / times[0]) / (events[-1] / events[0])
    assert 0.2 < growth < 5.0, f"non-linear scaling: factor {growth:.2f}"
