"""§5, the producer-consumer case study (and figures 6 & 7).

The paper's numbers:

* initial program: "the program ran only 2.2 % faster on 8 CPUs"
  (speed-up 1.022) — every thread blocks on the one buffer mutex (fig. 6);
* tuned program (100 buffers, split insert/fetch mutexes): predicted
  speed-up **7.75**, validated at **7.90** on the real machine — a 1.9 %
  error (fig. 7 shows many runnable-but-not-running threads).

We regenerate all of it: both predictions, the ground-truth validation,
the bottleneck identification that drives the tuning, and the two
flow-graph figures as SVG artifacts.
"""

from __future__ import annotations

import pytest

from repro import SimConfig, predict, predict_speedup, record_program
from repro.analysis import prediction_error, top_bottleneck
from repro.program.mpexec import measure_speedup
from repro.visualizer import ParallelismGraph, render_svg
from repro.workloads.prodcons import make_naive, make_tuned

from _common import BENCH_RUNS, BENCH_SCALE, emit, save_artifact

CPUS = 8


@pytest.fixture(scope="module")
def case_study():
    data = {}
    for label, factory in (("naive", make_naive), ("tuned", make_tuned)):
        program = factory(scale=BENCH_SCALE)
        run = record_program(program)
        pred = predict_speedup(run.trace, CPUS)
        real = measure_speedup(program, CPUS, runs=BENCH_RUNS)
        result = predict(run.trace, SimConfig(cpus=CPUS))
        data[label] = {
            "program": program,
            "run": run,
            "pred": pred,
            "real": real,
            "result": result,
        }
    return data


def test_naive_prediction(benchmark, case_study):
    """The initial program barely speeds up (paper: 1.022x on 8 CPUs)."""
    run = case_study["naive"]["run"]
    pred = benchmark.pedantic(
        lambda: predict_speedup(run.trace, CPUS), rounds=1, iterations=1
    )
    assert pred.speedup < 1.35, f"naive speed-up {pred.speedup:.3f}"


def test_naive_bottleneck_is_the_buffer_mutex(benchmark, case_study):
    """The §5 diagnosis: "it is the same mutex causing the blocking for
    all threads ... the one that we use to lock the insertion and
    fetching"."""
    bottleneck = benchmark.pedantic(
        lambda: top_bottleneck(case_study["naive"]["result"]),
        rounds=1,
        iterations=1,
    )
    assert bottleneck is not None
    assert bottleneck.obj.kind == "mutex" and bottleneck.obj.name == "buffer"


def test_tuned_prediction(benchmark, case_study):
    """After tuning: predicted ~7.75x on 8 CPUs."""
    run = case_study["tuned"]["run"]
    pred = benchmark.pedantic(
        lambda: predict_speedup(run.trace, CPUS), rounds=1, iterations=1
    )
    assert pred.speedup > 6.0, f"tuned speed-up {pred.speedup:.2f}"


def test_tuned_validation(benchmark, case_study):
    """Real 7.90 vs predicted 7.75 in the paper: error ~1.9%.  We allow
    5% (the tuned program is schedule-dependent)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pred = case_study["tuned"]["pred"]
    real = case_study["tuned"]["real"]
    error = prediction_error(real.speedup, pred.speedup)
    assert abs(error) < 0.05, f"error {error:.1%}"


def test_fig7_shows_starved_runnable_threads(benchmark, case_study):
    """Fig. 7: "a larger number of threads are runnable but has no
    processor to run on ... the high red part of the graph, and the
    constant low green part"."""
    graph = benchmark.pedantic(
        lambda: ParallelismGraph.from_result(case_study["tuned"]["result"]),
        rounds=1,
        iterations=1,
    )
    # "the constant low green part": running is pinned at the machine size
    assert graph.max_running() <= CPUS
    # "the high red part": far more threads want CPUs than there are —
    # the red band rivals the green one on average and dwarfs it at peak
    assert graph.max_total() > 2 * CPUS
    assert graph.average_runnable() > 0.5 * graph.average_running()


def test_case_study_report(benchmark, case_study):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    naive, tuned = case_study["naive"], case_study["tuned"]
    lines = [
        f"§5 producer-consumer case study (scale {BENCH_SCALE}, 8 CPUs)",
        f"{'variant':<8} {'predicted':>10} {'real (min-mid-max)':>22} {'error':>7}",
    ]
    for label, d in (("naive", naive), ("tuned", tuned)):
        error = prediction_error(d["real"].speedup, d["pred"].speedup)
        lines.append(
            f"{label:<8} {d['pred'].speedup:>10.3f} "
            f"{d['real'].speedups.brief('{:.3f}'):>22} {error * 100:>6.1f}%"
        )
    lines.append("paper:   naive 1.022 predicted; tuned 7.75 predicted / 7.90 real")
    emit("\n" + "\n".join(lines), artifact="case_study.txt")

    # figures 6 and 7 as SVG artifacts
    for label, fig in (("naive", "fig6"), ("tuned", "fig7")):
        result = case_study[label]["result"]
        window_end = max(1, result.makespan_us // 6)
        svg = render_svg(
            result,
            window_start_us=0,
            window_end_us=window_end,
            compress_threads=True,
            title=f"{fig}: {label} producer-consumer on {CPUS} CPUs (predicted)",
        )
        path = save_artifact(f"{fig}_prodcons_{label}.svg", svg)
        emit(f"wrote {path}")

    assert tuned["pred"].speedup / max(naive["pred"].speedup, 1e-9) > 4.5
