"""Analytic screening tier: throughput, soundness and decision parity.

Not a paper table — this benchmark backs the tiered-prediction claims
(``docs/analytic.md``): the calibrated closed-form models answer grid
cells orders of magnitude faster than replay, their ``[lo, hi]``
intervals bracket the DES makespan on the whole calibration suite, and
``--tier auto`` reaches the *same* best-cell and knee decisions as full
simulation while replaying only the cells the intervals cannot decide.

Fixtures are the scalable suite workloads (``synthetic`` and ``fft`` at
8 threads) swept over cpus x bindings x {solaris, cfs}.  ``prodcons``
is deliberately absent from the escalation-rate gate: its speed-up
curve is flat (the 4- and 8-CPU cells tie exactly), so *every* sound
policy must replay most of its grid — it is covered by the bracketing
gate instead, which runs the full committed-profile suite.

Output: ``benchmarks/results/BENCH_analytic.json`` with per-fixture
analytic/simulated cells-per-second, escalation rates and the decision
blocks from both tiers.

``--check`` gates on **absolute** claims, not a drift tolerance:

* zero bracket violations on the committed profile's suite;
* ``auto`` decisions identical to full simulation on every fixture;
* aggregate escalation rate <= 30 % of fixture cells;
* analytic cell throughput >= 10x the simulated (fast-path) throughput.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import emit, save_json  # noqa: E402

from repro.analytic import (  # noqa: E402
    AnalyticProfile,
    estimate_makespan,
    extract_stats,
    verify_profile,
)
from repro.jobs import JobEngine, ResultCache, SweepManifest  # noqa: E402
from repro.jobs.manifest import run_manifest  # noqa: E402
from repro.program.uniexec import record_program  # noqa: E402
from repro.recorder import logfile  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

BASELINE = "BENCH_analytic.json"
PROFILE_PATH = Path(__file__).parent.parent / "profiles" / "analytic.json"

#: the escalation-rate fixtures: scalable workloads with a real knee
FIXTURES = (("synthetic", 8, 1.0), ("fft", 8, 0.05))
GRID = {
    "cpus": [1, 2, 4, 8],
    "bindings": ["unbound", "bound"],
    "schedulers": ["solaris", "cfs"],
}

ESCALATION_CAP = 0.30
SPEEDUP_FLOOR = 10.0


def bench_fixture(name: str, threads: int, scale: float, profile, workdir: Path):
    program = get_workload(name).make_program(threads, scale, seed=11)
    trace = record_program(program).trace
    log = workdir / f"{name}.log"
    logfile.dump(trace, log)
    manifest = SweepManifest.from_dict(dict(GRID, trace=str(log)))

    # decision parity + escalation count: fresh engines so neither tier
    # is fed the other's cached replays
    sim_engine = JobEngine(mode="inline", cache=ResultCache(None))
    sim_start = time.perf_counter()
    sim_report = run_manifest(manifest, sim_engine, tier="sim")
    sim_s = time.perf_counter() - sim_start
    sim_engine.close()

    auto_engine = JobEngine(mode="inline", cache=ResultCache(None))
    auto_start = time.perf_counter()
    auto_report = run_manifest(
        manifest, auto_engine, tier="auto", analytic_profile=profile
    )
    auto_s = time.perf_counter() - auto_start
    auto_engine.close()

    escalated = sum(1 for s in auto_report.scenarios if s.tier == "escalated")
    analytic = sum(1 for s in auto_report.scenarios if s.tier == "analytic")
    cells = len(auto_report.scenarios)

    # raw analytic cell throughput: stats extraction amortised over the
    # grid, then one closed-form estimate per cell (what an
    # analytic-resolved cell actually costs)
    configs = [c.config for c in manifest.configs(trace)]
    extract_start = time.perf_counter()
    stats = extract_stats(trace)
    extract_s = time.perf_counter() - extract_start
    est_start = time.perf_counter()
    for config in configs:
        estimate_makespan(stats, config, profile)
    est_s = time.perf_counter() - est_start
    analytic_cells_per_s = len(configs) / (extract_s + est_s)
    sim_cells_per_s = (cells + 1) / sim_s  # +1: the baseline replay

    return {
        "name": name,
        "threads": threads,
        "scale": scale,
        "cells": cells,
        "analytic": analytic,
        "escalated": escalated,
        "escalation_rate": round(escalated / cells, 4),
        "decisions_sim": sim_report.decisions,
        "decisions_auto": auto_report.decisions,
        "decisions_agree": sim_report.decisions == auto_report.decisions,
        "sim_s": round(sim_s, 4),
        "auto_s": round(auto_s, 4),
        "extract_s": round(extract_s, 6),
        "estimate_s": round(est_s, 6),
        "sim_cells_per_s": round(sim_cells_per_s, 2),
        "analytic_cells_per_s": round(analytic_cells_per_s, 2),
        "analytic_speedup": round(analytic_cells_per_s / sim_cells_per_s, 1),
    }


def run_bench(profile) -> dict:
    violations = verify_profile(profile)

    with tempfile.TemporaryDirectory(prefix="vppb-bench-analytic-") as tmp:
        workdir = Path(tmp)
        fixtures = [
            bench_fixture(name, threads, scale, profile, workdir)
            for name, threads, scale in FIXTURES
        ]

    total_cells = sum(f["cells"] for f in fixtures)
    total_escalated = sum(f["escalated"] for f in fixtures)
    return {
        "benchmark": "analytic-tier",
        "config": {
            "grid": GRID,
            "fixtures": [
                {"name": n, "threads": t, "scale": s} for n, t, s in FIXTURES
            ],
            "python": sys.version.split()[0],
        },
        "profile": {
            "path": str(PROFILE_PATH),
            "fingerprint": profile.fingerprint(),
            "samples": profile.samples,
            "pad": profile.pad,
            "margin_keys": len(profile.margins),
        },
        "bracketing": {
            "suite_cells": profile.samples,
            "violations": violations,
        },
        "fixtures": fixtures,
        "aggregate": {
            "cells": total_cells,
            "escalated": total_escalated,
            "escalation_rate": round(total_escalated / total_cells, 4),
            "decisions_agree": all(f["decisions_agree"] for f in fixtures),
            "min_analytic_speedup": min(f["analytic_speedup"] for f in fixtures),
        },
    }


def check(report: dict) -> list:
    """Absolute gates: soundness and parity, not drift."""
    failures = []
    violations = report["bracketing"]["violations"]
    if violations:
        failures.append(
            f"bracketing: {len(violations)} suite cells outside their "
            f"interval (first: {violations[0]})"
        )
    for fixture in report["fixtures"]:
        if not fixture["decisions_agree"]:
            failures.append(
                f"{fixture['name']}: tier=auto decisions diverged from "
                f"simulation (auto {fixture['decisions_auto']} vs "
                f"sim {fixture['decisions_sim']})"
            )
        if fixture["analytic_speedup"] < SPEEDUP_FLOOR:
            failures.append(
                f"{fixture['name']}: analytic throughput only "
                f"{fixture['analytic_speedup']:.1f}x the simulated fast "
                f"path (floor {SPEEDUP_FLOOR:.0f}x)"
            )
    rate = report["aggregate"]["escalation_rate"]
    if rate > ESCALATION_CAP:
        failures.append(
            f"aggregate escalation rate {rate:.0%} exceeds the "
            f"{ESCALATION_CAP:.0%} cap"
        )
    return failures


def _render_table(report: dict) -> str:
    lines = [
        "Analytic screening tier vs full simulation "
        f"(grid {len(GRID['cpus'])} cpus x {len(GRID['bindings'])} bindings "
        f"x {len(GRID['schedulers'])} schedulers)",
        f"{'fixture':<12} {'cells':>6} {'escalated':>10} {'sim c/s':>9} "
        f"{'analytic c/s':>13} {'speedup':>9} {'agree':>6}",
    ]
    for f in report["fixtures"]:
        lines.append(
            f"{f['name']:<12} {f['cells']:>6} "
            f"{f['escalated']:>6} ({f['escalation_rate']:.0%}) "
            f"{f['sim_cells_per_s']:>9,.1f} {f['analytic_cells_per_s']:>13,.0f} "
            f"{f['analytic_speedup']:>8,.0f}x {str(f['decisions_agree']):>6}"
        )
    agg = report["aggregate"]
    lines.append(
        f"aggregate: {agg['escalated']}/{agg['cells']} cells escalated "
        f"({agg['escalation_rate']:.0%}), decisions agree: "
        f"{agg['decisions_agree']}, min speedup {agg['min_analytic_speedup']:,}x"
    )
    lines.append(
        f"bracketing: {len(report['bracketing']['violations'])} violations "
        f"over the profile's {report['bracketing']['suite_cells']} suite cells"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="gate on bracketing, decision parity, escalation rate and "
        "analytic throughput (absolute claims, no drift tolerance)",
    )
    parser.add_argument(
        "--profile", default=str(PROFILE_PATH),
        help=f"analytic calibration profile (default {PROFILE_PATH})",
    )
    parser.add_argument(
        "--artifact", default=BASELINE,
        help=f"result JSON filename under benchmarks/results/ (default {BASELINE})",
    )
    args = parser.parse_args(argv)

    profile = AnalyticProfile.load(args.profile)
    report = run_bench(profile)
    save_json(args.artifact, report)
    emit(_render_table(report))

    if args.check:
        failures = check(report)
        if failures:
            emit("GATE FAILED: " + "; ".join(failures))
            return 1
        emit(
            f"gate passed: 0 bracket violations, decisions identical, "
            f"{report['aggregate']['escalation_rate']:.0%} escalated, "
            f">= {SPEEDUP_FLOOR:.0f}x analytic throughput"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
