"""Scheduler-backend replay cost: Clutch/CFS vs the Solaris fast path.

Not a paper table — this benchmark backs the pluggable-backend
performance claim: routing every dispatch decision through a
:class:`repro.sched.SchedulerBackend` keeps the compiled-plan fast path
intact, and the richer non-Solaris policies (EDF bucket ranking,
vruntime bookkeeping) stay within a small constant factor of the
Solaris backend's fast-path cost on the same trace.

Fixtures mirror ``bench_replay.py``'s spread — uncontended sync-heavy
replay, a contended producer/consumer, and a barrier-structured numeric
workload — because backend cost only shows where dispatch decisions
happen.

Output: ``benchmarks/results/BENCH_sched.json`` with per-fixture,
per-backend events/sec and each backend's cost ratio against Solaris
(same machine, same run, so the ratio is hardware-independent).

``--check`` gates the measured ratios: every non-Solaris backend must
replay within ``--max-ratio`` (default 1.5) of the Solaris fast path.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import BENCH_RUNS, BENCH_SCALE, emit, save_json  # noqa: E402

from repro import Program, SimConfig, record_program  # noqa: E402
from repro.core.predictor import compile_trace  # noqa: E402
from repro.core.simulator import Simulator  # noqa: E402
from repro.program import ops as op  # noqa: E402
from repro.sched import available_backends  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

BASELINE = "BENCH_sched.json"
REFERENCE = "solaris"


def make_lock_ladder(scale: float) -> Program:
    rounds = max(1_000, int(20_000 * scale))

    def main(ctx):
        for _ in range(rounds):
            yield op.MutexLock("m")
            yield op.MutexUnlock("m")

    return Program("lock-ladder", main)


def _fixtures(scale: float):
    return [
        ("lock-ladder", make_lock_ladder(scale), 1),
        ("prodcons", get_workload("prodcons").make_program(4, max(0.2, scale)), 4),
        ("barrier-fft", get_workload("fft").make_program(4, max(0.2, scale)), 4),
    ]


def _replay_s(plan, config) -> float:
    sim = Simulator(config)
    start = time.perf_counter()
    sim.run_replay(plan, replay_engine="fast")
    return time.perf_counter() - start


def bench_fixture(name: str, program: Program, cpus: int, runs: int, backends) -> dict:
    trace = record_program(program).trace
    plan = compile_trace(trace)
    if not plan.fast_replayable():
        raise SystemExit(f"{name}: plan did not lower to the fast form")

    configs = {b: SimConfig(cpus=cpus, scheduler=b) for b in backends}
    # determinism sanity before timing: every backend must replay the
    # plan to the same result twice (a nondeterministic backend would
    # make the timing numbers meaningless).  Event counts are
    # per-backend — tickless backends drive far fewer engine events
    # than the always-ticking Solaris model on the same plan.
    events = {}
    for b, config in configs.items():
        first = Simulator(config).run_replay(plan, replay_engine="fast")
        second = Simulator(config).run_replay(plan, replay_engine="fast")
        if first != second:
            raise SystemExit(f"{name}/{b}: nondeterministic replay")
        events[b] = first.engine_events

    # interleave backends so machine noise hits all of them alike
    times = {b: [] for b in backends}
    for _ in range(runs):
        for b in backends:
            times[b].append(_replay_s(plan, configs[b]))

    per_backend = {}
    ref_best = min(times[REFERENCE])
    for b in backends:
        ordered = sorted(times[b])
        best = ordered[0]
        per_backend[b] = {
            "best_s": round(best, 6),
            "p50_s": round(statistics.median(ordered), 6),
            "engine_events": events[b],
            "events_per_s": round(events[b] / best),
            "vs_solaris": round(best / ref_best, 3),
        }
    return {
        "name": name,
        "cpus": cpus,
        "backends": per_backend,
    }


def run_bench(runs: int, scale: float) -> dict:
    backends = list(available_backends())
    backends.remove(REFERENCE)
    backends.insert(0, REFERENCE)
    fixtures = [
        bench_fixture(name, program, cpus, runs, backends)
        for name, program, cpus in _fixtures(scale)
    ]
    worst = {
        b: max(f["backends"][b]["vs_solaris"] for f in fixtures)
        for b in backends
        if b != REFERENCE
    }
    return {
        "benchmark": "sched-backends",
        "config": {
            "scale": scale,
            "runs": runs,
            "python": sys.version.split()[0],
        },
        "fixtures": fixtures,
        "headline": {
            "worst_ratio_vs_solaris": worst,
            "note": (
                "fast-path replay cost per backend relative to the "
                "Solaris backend on the same trace and machine"
            ),
        },
    }


def check(report: dict, max_ratio: float) -> list:
    failures = []
    for fixture in report["fixtures"]:
        for backend, stats in fixture["backends"].items():
            if backend == REFERENCE:
                continue
            if stats["vs_solaris"] > max_ratio:
                failures.append(
                    f"{fixture['name']}/{backend}: {stats['vs_solaris']:.2f}x "
                    f"the Solaris fast-path cost (limit {max_ratio:.2f}x)"
                )
    return failures


def _render_table(report: dict) -> str:
    lines = [
        f"Replay cost per scheduler backend (fast path, scale "
        f"{report['config']['scale']}, best of {report['config']['runs']})",
        f"{'fixture':<14} {'backend':<9} {'events':>8} {'events/s':>12} "
        f"{'vs solaris':>11}",
    ]
    for f in report["fixtures"]:
        for backend, stats in f["backends"].items():
            lines.append(
                f"{f['name']:<14} {backend:<9} {stats['engine_events']:>8} "
                f"{stats['events_per_s']:>12,} {stats['vs_solaris']:>10.2f}x"
            )
    worst = report["headline"]["worst_ratio_vs_solaris"]
    lines.append(
        "worst ratios: "
        + ", ".join(f"{b} {r:.2f}x" for b, r in sorted(worst.items()))
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=max(3, BENCH_RUNS))
    parser.add_argument("--scale", type=float, default=BENCH_SCALE)
    parser.add_argument(
        "--check", action="store_true",
        help="gate measured backend cost ratios against --max-ratio",
    )
    parser.add_argument(
        "--max-ratio", type=float, default=1.5,
        help="allowed backend cost relative to the Solaris fast path "
        "in --check mode (default 1.5)",
    )
    parser.add_argument(
        "--artifact", default=BASELINE,
        help=f"result JSON filename under benchmarks/results/ (default {BASELINE})",
    )
    args = parser.parse_args(argv)

    report = run_bench(args.runs, args.scale)
    save_json(args.artifact, report)
    emit(_render_table(report))

    if args.check:
        failures = check(report, args.max_ratio)
        if failures:
            emit("GATE FAILED: " + "; ".join(failures))
            return 1
        worst = report["headline"]["worst_ratio_vs_solaris"]
        emit(
            "gate passed: "
            + ", ".join(f"{b} {r:.2f}x" for b, r in sorted(worst.items()))
            + f" of the Solaris fast-path cost (limit {args.max_ratio:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
