"""Benchmark-suite plumbing.

* makes the benchmarks directory importable (the shared `_common` module);
* after the run, prints every regenerated text table from
  ``benchmarks/results/`` into the terminal summary, so
  ``pytest benchmarks/ --benchmark-only`` ends with the paper's
  reproduced numbers (pytest's fd-level capture would otherwise swallow
  them mid-run).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

RESULTS = Path(__file__).parent / "results"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not config.getoption("--benchmark-only", default=False):
        return
    tables = sorted(RESULTS.glob("*.txt")) if RESULTS.is_dir() else []
    if not tables:
        return
    terminalreporter.section("reproduced paper tables (benchmarks/results/)")
    for path in tables:
        terminalreporter.write_line(f"--- {path.name} ---")
        for line in path.read_text().splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
    svgs = sorted(RESULTS.glob("*.svg"))
    if svgs:
        terminalreporter.write_line(
            "figures: " + ", ".join(p.name for p in svgs)
        )
