"""§3.2's load-balancing claim: "Binding a thread to a CPU can increase
the speed of the program ... it is possible to use this facility to
determine which thread to bind to which CPU in order to get the best
result from a load balancing point of view."

The experiment: an imbalanced program (threads with very different work),
one recorded log.  We replay it under every interesting binding and show
that (a) a bad hand-binding is much worse than the default scheduler,
(b) a good hand-binding — found *from the predictions alone* by
first-fit-decreasing on the per-thread work — matches or beats it.
This is exactly the workflow the paper proposes: explore bindings in the
simulator, not on the machine.
"""

from __future__ import annotations

import pytest

from repro import Program, SimConfig, ThreadPolicy, compile_trace, predict, record_program
from repro.program import ops as op

from _common import emit

CPUS = 2

#: per-thread work (ms) — deliberately imbalanced
WORK_MS = (60, 10, 30, 40, 20, 50)


def _program() -> Program:
    def worker(ctx):
        yield op.Compute(ctx.args[0] * 1_000)

    def main(ctx):
        tids = []
        for ms in WORK_MS:
            tids.append((yield op.ThrCreate(worker, args=(ms,))))
        for t in tids:
            yield op.ThrJoin(t)

    return Program("imbalanced", main)


@pytest.fixture(scope="module")
def recorded():
    run = record_program(_program())
    return run.trace, compile_trace(run.trace)


def _bind(assignment):
    """assignment: worker index -> cpu (workers get tids 4, 5, ...)."""
    return {4 + i: ThreadPolicy(cpu=cpu) for i, cpu in assignment.items()}


def _first_fit_decreasing(work, cpus):
    """Greedy balanced binding computed from the recorded work amounts."""
    loads = [0] * cpus
    assignment = {}
    for i in sorted(range(len(work)), key=lambda i: -work[i]):
        cpu = min(range(cpus), key=loads.__getitem__)
        assignment[i] = cpu
        loads[cpu] += work[i]
    return assignment


def test_binding_exploration(benchmark, recorded):
    trace, plan = recorded

    def run(policies):
        return predict(
            trace, SimConfig(cpus=CPUS, thread_policies=policies), plan=plan
        ).makespan_us

    unbound = run({})
    # a bad binding: the three biggest workers piled on CPU 0
    bad = run(_bind({0: 0, 5: 0, 3: 0, 1: 1, 2: 1, 4: 1}))
    # the good binding, derived from the recorded per-thread work
    good_assignment = _first_fit_decreasing(WORK_MS, CPUS)
    good = benchmark.pedantic(
        lambda: run(_bind(good_assignment)), rounds=1, iterations=1
    )

    ideal = sum(WORK_MS) * 1_000 // CPUS
    emit(
        "\n§3.2 binding exploration (6 imbalanced threads, 2 CPUs):\n"
        f"  unbound (scheduler decides) : {unbound / 1e3:8.2f} ms\n"
        f"  bad hand-binding            : {bad / 1e3:8.2f} ms\n"
        f"  balanced binding (predicted): {good / 1e3:8.2f} ms\n"
        f"  ideal (sum/CPUs)            : {ideal / 1e3:8.2f} ms",
        artifact="binding.txt",
    )

    assert bad > good * 1.3  # piling the big threads together hurts
    assert good <= unbound * 1.02  # the explored binding is competitive
    assert good <= ideal * 1.1  # and close to the theoretical floor


def test_binding_is_pure_configuration(benchmark, recorded):
    """The §3.2 point: all of this exploration reuses ONE log file."""
    trace, plan = recorded
    results = benchmark.pedantic(
        lambda: [
            predict(
                trace,
                SimConfig(
                    cpus=CPUS,
                    thread_policies=_bind({i: i % CPUS for i in range(6)}),
                ),
                plan=plan,
            ).makespan_us
            for _ in range(3)
        ],
        rounds=1,
        iterations=1,
    )
    assert len(set(results)) == 1  # deterministic replays of the same log
