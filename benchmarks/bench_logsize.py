"""§4 log statistics: sizes and event rates.

The paper reports: largest log 1.4 MB (Ocean, a binary format), maximum
event rate 653 events/s (Ocean), uni-processor runtimes of 60-210 s, and
"neither the execution time overhead, nor the size of the log files
caused any problems".

We regenerate the per-kernel statistics table.  Absolute byte counts
differ (our log is a text format; theirs was binary), but the *shape*
must hold: Ocean produces the largest log and the highest event rate of
the five.  The benchmark timing wraps serialisation (``logfile.dumps``).
"""

from __future__ import annotations

import pytest

from repro.program.uniexec import record_program
from repro.recorder import logfile
from repro.workloads import get_workload

from _common import BENCH_SCALE, emit

KERNELS = ("ocean", "water", "fft", "radix", "lu")


@pytest.fixture(scope="module")
def logs():
    data = {}
    for name in KERNELS:
        program = get_workload(name).make_program(8, BENCH_SCALE)
        run = record_program(program)
        text = logfile.dumps(run.trace)
        data[name] = (run.trace, run.trace.stats(serialized_bytes=len(text.encode())))
    return data


@pytest.mark.parametrize("kernel", KERNELS)
def test_serialization(benchmark, logs, kernel):
    trace, stats = logs[kernel]
    text = benchmark.pedantic(lambda: logfile.dumps(trace), rounds=1, iterations=1)
    assert len(text.encode()) == stats.serialized_bytes
    # and it parses back losslessly
    assert len(logfile.loads(text)) == stats.n_events


def test_logsize_report(benchmark, logs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"Log statistics (scale {BENCH_SCALE}; paper: Ocean largest at "
        "1.4 MB, max 653 events/s)",
        f"{'kernel':<8} {'events':>8} {'duration (s)':>13} "
        f"{'events/s':>9} {'log bytes':>10}",
    ]
    for name, (_, stats) in logs.items():
        lines.append(
            f"{name:<8} {stats.n_events:>8} {stats.duration_us / 1e6:>13.2f} "
            f"{stats.events_per_second:>9.1f} {stats.serialized_bytes:>10}"
        )
    emit("\n" + "\n".join(lines), artifact="logsize.txt")

    # the paper's shape: Ocean emits the most events per second and the
    # biggest log of the five kernels
    rates = {name: stats.events_per_second for name, (_, stats) in logs.items()}
    sizes = {name: stats.serialized_bytes for name, (_, stats) in logs.items()}
    assert max(rates, key=rates.get) == "ocean"
    assert max(sizes, key=sizes.get) in ("ocean", "lu")  # LU's 48x3 barriers
    assert rates["ocean"] < 5000  # same order as the paper's 653/s regime
