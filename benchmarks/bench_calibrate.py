"""Calibration fit throughput: cold vs warm content-addressed cache.

Not a paper table — this validates the calibration subsystem's
performance claim: every parameter vector a fit visits becomes a batch
of content-addressed jobs, so a *refit* over the same suite (tweaked
budget, new CV split, a validation run) answers from the
:class:`~repro.jobs.cache.ResultCache` instead of re-simulating.  The
second fit must be dominated by cache reads — and must reproduce the
first fit's parameters bit for bit, since the fitter is deterministic.

``VPPB_BENCH_SCALE`` scales the calibration workload as in the other
benchmarks.
"""

from __future__ import annotations

import time

import pytest

from repro.calib import ObjectiveEvaluator, WorkloadSpec, fit, measure_suite
from repro.jobs import JobEngine, ResultCache

from _common import BENCH_SCALE, emit, save_json

MAX_EVALS = 40

SUITE = [
    WorkloadSpec(name="synthetic", threads=4, scale=max(0.3, BENCH_SCALE), cpus=(2, 4), runs=2),
    WorkloadSpec(name="prodcons", threads=4, scale=0.05, cpus=(2, 4), runs=2),
]


@pytest.fixture(scope="module")
def measured():
    return measure_suite(SUITE)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_calibrate_throughput(benchmark, measured, tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("calib-cache"))
    engine = JobEngine(mode="inline", cache=cache)

    def run_fit():
        evaluator = ObjectiveEvaluator(measured, engine=engine)
        return fit(evaluator, max_evals=MAX_EVALS)

    # cold: fresh disk cache, every visited vector simulates
    cold_fit, cold_s = _timed(run_fit)
    cold_stats = cache.stats()

    # warm: identical fit, same cache — every vector is a disk read
    warm_fit = benchmark.pedantic(run_fit, rounds=1, iterations=1)
    _, warm_s = _timed(run_fit)
    warm_stats = cache.stats()

    # determinism is part of the contract: the refit retraces the fit
    assert warm_fit.params == cold_fit.params
    assert warm_fit.objective == cold_fit.objective
    hits = warm_stats["hits"] - cold_stats["hits"]
    misses = warm_stats["misses"] - cold_stats["misses"]
    assert misses == 0, "warm refit should never simulate"

    # a warm refit must beat cold simulation outright
    assert warm_s < cold_s

    lines = [
        f"Calibration fit throughput ({len(SUITE)}-workload suite, "
        f"{MAX_EVALS} evaluation budget, inline engine)",
        f"{'mode':<24} {'wall (s)':>10} {'vs cold':>10}",
        f"{'fit, cold cache':<24} {cold_s:>10.3f} {'1.00x':>10}",
        f"{'refit, warm cache':<24} {warm_s:>10.3f} "
        f"{cold_s / warm_s:>9.2f}x",
        f"objective {cold_fit.baseline_objective:.4f} (defaults) -> "
        f"{cold_fit.objective:.4f} in {cold_fit.evaluations} evaluations",
        f"warm refit: {hits} cache hits / {misses} misses "
        f"over two timed passes",
    ]
    emit("\n" + "\n".join(lines), artifact="calibrate.txt")
    save_json(
        "BENCH_calibrate.json",
        {
            "benchmark": "calibration-refit",
            "config": {
                "suite": [w.name for w in SUITE],
                "max_evals": MAX_EVALS,
                "scale": BENCH_SCALE,
            },
            "results": {
                "fit_cold_s": round(cold_s, 6),
                "refit_warm_s": round(warm_s, 6),
                "refit_speedup": round(cold_s / warm_s, 3),
                "evaluations": cold_fit.evaluations,
                "objective": cold_fit.objective,
                "baseline_objective": cold_fit.baseline_objective,
                "warm_cache_hits": hits,
                "warm_cache_misses": misses,
            },
        },
    )
