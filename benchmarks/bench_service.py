"""Service load benchmark: latency/throughput/error budgets under fire.

Unlike the other benchmarks this is a standalone load generator, not a
pytest case — CI's ``load-smoke`` job runs it directly and gates on its
exit code::

    python benchmarks/bench_service.py --duration 5 --clients 8 \
        --gate-p99-ms 2000 --gate-error-rate 0.01 [--chaos]

It stands up the real asyncio front end (:class:`BackgroundServer`)
over a real worker-pool engine, drives it with concurrent closed-loop
clients, and asserts the resilience contract from the service docs:

* every response is well-formed JSON with an expected status — 200,
  413, 422, 429, 503 or 504; a hung connection, a stack-trace body or
  a surprise 500 counts against the error budget;
* latency percentiles stay inside the gate (shed 429s are cheap by
  design, so they are tracked separately from served-request latency);
* with ``--chaos``, a saboteur thread periodically sends requests that
  make the worker crash mid-simulation (the faultinject crash
  sentinel); the server must keep answering, trip its breaker rather
  than melt, and recover once the faults stop.

The JSON artifact (``benchmarks/results/BENCH_service.json``) is the
perf-trajectory record: commit it so the numbers travel with the code.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import BENCH_SCALE, emit, save_artifact  # noqa: E402

#: statuses the resilience contract allows on the wire
WELL_FORMED = {200, 400, 404, 413, 422, 429, 503, 504}


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


class LoadStats:
    """Thread-safe request ledger for the client fleet."""

    def __init__(self):
        self._lock = threading.Lock()
        self.latencies_ms = []       # served (non-429) request latencies
        self.statuses = {}
        self.malformed = 0           # transport errors, bad JSON, surprise 500s

    def record(self, status, latency_ms, *, well_formed):
        with self._lock:
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if not well_formed:
                self.malformed += 1
            elif status != 429:  # shed responses are cheap by design
                self.latencies_ms.append(latency_ms)

    def summary(self):
        with self._lock:
            values = sorted(self.latencies_ms)
            total = sum(self.statuses.values())
            return {
                "requests": total,
                "statuses": dict(sorted(self.statuses.items())),
                "malformed": self.malformed,
                "error_rate": (self.malformed / total) if total else 0.0,
                "latency_ms": {
                    "p50": round(_percentile(values, 0.50), 2),
                    "p90": round(_percentile(values, 0.90), 2),
                    "p99": round(_percentile(values, 0.99), 2),
                    "max": round(values[-1], 2) if values else 0.0,
                },
            }


def _one_request(port, method, path, body=None, headers=None, timeout=60.0):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = response.read()
        json.loads(payload) if payload else {}
        return response.status, payload
    finally:
        conn.close()


def _client_loop(port, fingerprint, stats, stop, worker_id):
    """One closed-loop client: mostly cache-friendly, some fresh work."""
    n = 0
    while not stop.is_set():
        n += 1
        request = {"trace": fingerprint, "cpus": [2, 4]}
        if n % 5 == 0:
            # a fresh config point: forces real simulation, not a cache hit
            request["comm_delay_us"] = (worker_id * 1000 + n) % 7919
        started = time.perf_counter()
        try:
            status, _ = _one_request(
                port, "POST", "/predict", body=json.dumps(request)
            )
            ok = status in WELL_FORMED
        except Exception:
            status, ok = 0, False
        stats.record(
            status, (time.perf_counter() - started) * 1000.0, well_formed=ok
        )


def _chaos_loop(port, stats, stop, period_s):
    """Periodically ask for a prediction that murders its worker."""
    crashes_sent = 0
    while not stop.is_set():
        try:
            status, _ = _one_request(
                port, "POST", "/predict",
                body=json.dumps({"log": "CRASH", "cpus": [2]}),
            )
            # a crash request must still die politely
            ok = status in WELL_FORMED and status != 200
        except Exception:
            status, ok = 0, False
        stats.record(status, 0.0, well_formed=ok)
        crashes_sent += 1
        stop.wait(period_s)
    return crashes_sent


def run_bench(args):
    from repro.jobs.engine import JobEngine
    from repro.jobs.model import TraceRef
    from repro.jobs.resilience import CircuitBreaker
    from repro.jobs.service import PredictionService
    from repro.jobs.service_async import BackgroundServer
    from repro.jobs.worker import CRASH_SENTINEL
    from repro.program.uniexec import record_program
    from repro.recorder import logfile
    from repro.workloads import get_workload

    program = get_workload(args.workload).make_program(8, args.scale)
    trace = record_program(program).trace
    log_text = logfile.dumps(trace)

    engine = JobEngine(
        mode="inline" if args.inline else "process",
        workers=args.workers,
        breaker=CircuitBreaker(failure_threshold=3, cooldown_s=1.0),
    )
    service = PredictionService(engine)

    if args.chaos:
        # route the sentinel request body straight to a crashing TraceRef,
        # exactly like the chaos case in tests/test_resilience.py
        real_resolve = service._resolve_trace

        def chaos_resolve(request):
            if request.get("log") == "CRASH":
                return TraceRef(fingerprint="c" * 64, text=CRASH_SENTINEL), trace
            return real_resolve(request)

        service._resolve_trace = chaos_resolve

    stats = LoadStats()
    stop = threading.Event()
    shutdown_report = None
    started = time.perf_counter()
    with BackgroundServer(
        service,
        max_inflight=args.max_inflight,
        default_deadline_s=args.deadline,
    ) as bg:
        upload_status, _ = _one_request(
            bg.port, "POST", "/traces", body=log_text.encode("utf-8")
        )
        assert upload_status == 200, f"trace upload failed: {upload_status}"
        fingerprint = trace.fingerprint()

        threads = [
            threading.Thread(
                target=_client_loop,
                args=(bg.port, fingerprint, stats, stop, i),
                daemon=True,
            )
            for i in range(args.clients)
        ]
        if args.chaos:
            threads.append(
                threading.Thread(
                    target=_chaos_loop,
                    args=(bg.port, stats, stop, args.chaos_period),
                    daemon=True,
                )
            )
        for t in threads:
            t.start()
        time.sleep(args.duration)
        stop.set()
        for t in threads:
            t.join(timeout=120.0)

        if args.chaos:
            # faults have stopped: the recovery clause of the contract
            recovered = False
            recovery_deadline = time.time() + 30.0
            while time.time() < recovery_deadline:
                try:
                    status, _ = _one_request(
                        bg.port, "POST", "/predict",
                        body=json.dumps({"trace": fingerprint, "cpus": [2]}),
                    )
                except Exception:
                    status = 0
                if status == 200:
                    recovered = True
                    break
                time.sleep(0.5)
            assert recovered, "service did not recover after chaos stopped"

        _, metrics_body = _one_request(bg.port, "GET", "/metrics")
        server_metrics = json.loads(metrics_body)
        shutdown_report = bg.stop()
    elapsed_s = time.perf_counter() - started
    engine.close()

    summary = stats.summary()
    report = {
        "benchmark": "service-load",
        "config": {
            "workload": args.workload,
            "scale": args.scale,
            "duration_s": args.duration,
            "clients": args.clients,
            "max_inflight": args.max_inflight,
            "deadline_s": args.deadline,
            "engine": "inline" if args.inline else "process",
            "workers": engine.workers,
            "chaos": bool(args.chaos),
        },
        "results": {
            **summary,
            "throughput_rps": round(summary["requests"] / elapsed_s, 2),
            "shed": server_metrics["service"]["requests_shed"],
            "deadline_timeouts": server_metrics["service"]["deadline_timeouts"],
            "worker_crashes": server_metrics.get("worker_crashes", 0),
            "breaker_trips": (server_metrics.get("breaker") or {}).get("trips", 0),
            "breaker_rejected": server_metrics.get("jobs_rejected_breaker", 0),
            "graceful_shutdown": shutdown_report,
        },
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds of sustained load (default: 5)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent closed-loop clients (default: 8)")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="server admission watermark (default: 4)")
    parser.add_argument("--deadline", type=float, default=10.0,
                        help="server default deadline in seconds (default: 10)")
    parser.add_argument("--workers", type=int, default=2,
                        help="engine worker processes (default: 2)")
    parser.add_argument("--workload", default="prodcons")
    parser.add_argument("--scale", type=float, default=BENCH_SCALE)
    parser.add_argument("--inline", action="store_true",
                        help="inline engine (no worker pool)")
    parser.add_argument("--chaos", action="store_true",
                        help="inject worker crashes while under load")
    parser.add_argument("--chaos-period", type=float, default=0.5,
                        help="seconds between injected crashes (default: 0.5)")
    parser.add_argument("--gate-p99-ms", type=float, default=None,
                        help="fail if served p99 latency exceeds this")
    parser.add_argument("--gate-error-rate", type=float, default=None,
                        help="fail if the malformed-response rate exceeds this")
    parser.add_argument("--artifact", default="BENCH_service.json")
    args = parser.parse_args(argv)

    report = run_bench(args)
    rendered = json.dumps(report, indent=2)
    save_artifact(args.artifact, rendered + "\n")
    emit(rendered)

    results = report["results"]
    failures = []
    if args.gate_p99_ms is not None and results["latency_ms"]["p99"] > args.gate_p99_ms:
        failures.append(
            f"p99 {results['latency_ms']['p99']}ms > gate {args.gate_p99_ms}ms"
        )
    if (
        args.gate_error_rate is not None
        and results["error_rate"] > args.gate_error_rate
    ):
        failures.append(
            f"error rate {results['error_rate']:.4f} > gate {args.gate_error_rate}"
        )
    if failures:
        emit("GATE FAILED: " + "; ".join(failures))
        return 1
    emit(
        f"gates passed: {results['requests']} requests, "
        f"p99 {results['latency_ms']['p99']}ms, "
        f"error rate {results['error_rate']:.4f}, "
        f"{results['shed']} shed, {results['breaker_trips']} breaker trips"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
