"""Lint-engine throughput and predictive-grid cache effectiveness.

Not a paper table — this benchmark backs the static-analysis performance
claims: the whole rule catalog (lockset + happens-before + lock-order +
hygiene) runs off **one** time-ordered sweep of the log, so lint
throughput is a single events/s figure; and the ``--whatif`` grid is
content-addressed through the ``JobEngine``'s ``ResultCache``, so a warm
re-run of the same grid costs file reads, not simulations.

Fixtures:

* ``prodcons-racy`` — the planted-bug fixture: every expensive path is
  exercised (HB race judging, witness synthesis, cycle detection);
* ``prodcons-clean`` — the same program fixed: the all-rules-silent
  sweep, lint's common case;
* ``fft`` — a barrier-structured SPLASH-2 shape with many threads.

Output: ``benchmarks/results/BENCH_lint.json`` with per-fixture lint
events/s and the cold/warm grid timings.

``--check`` re-measures and gates against the committed baseline on the
machine-independent ratio: the warm-cache grid speedup (cold time /
warm time, same machine, same run) must stay within ``--tolerance``
(default 0.5, cache effects are noisy at these sizes) of the committed
one, and the warm run must be 100 % cache hits.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import BENCH_RUNS, BENCH_SCALE, emit, load_json, save_json  # noqa: E402

from repro import record_program  # noqa: E402
from repro.analysis.lint import run_lint, whatif_lint  # noqa: E402
from repro.jobs import JobEngine, ResultCache, SweepManifest  # noqa: E402
from repro.workloads import get_workload  # noqa: E402
from repro.workloads.prodcons import make_clean, make_racy  # noqa: E402

BASELINE = "BENCH_lint.json"

_GRID_CPUS = [1, 2, 4]


def _fixtures(scale: float):
    return [
        ("prodcons-racy", make_racy(max(0.05, scale / 4))),
        ("prodcons-clean", make_clean(max(0.05, scale / 4))),
        ("fft", get_workload("fft").make_program(4, max(0.05, scale / 4))),
    ]


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------


def _stats(times, events: int):
    ordered = sorted(times)
    best = ordered[0]
    return {
        "best_s": round(best, 6),
        "p50_s": round(statistics.median(ordered), 6),
        "events_per_s": round(events / best) if best else 0,
    }


def bench_sweep(name: str, program, runs: int) -> dict:
    trace = record_program(program).trace
    times = []
    report = None
    for _ in range(runs):
        start = time.perf_counter()
        report = run_lint(trace)
        times.append(time.perf_counter() - start)
    return {
        "name": name,
        "events": len(trace),
        "findings": len(report),
        "lint": _stats(times, len(trace)),
    }


def bench_grid(runs: int) -> dict:
    """Cold vs warm ``--whatif`` grid over the racy fixture."""
    trace = record_program(make_racy()).trace
    report = run_lint(trace)
    manifest = SweepManifest.from_dict({"trace": "bench.log", "cpus": _GRID_CPUS})
    cold_times, warm_times = [], []
    warm_all_cached = True
    for _ in range(runs):
        with tempfile.TemporaryDirectory() as cache_dir:
            engine = JobEngine(mode="inline", cache=ResultCache(cache_dir))
            with engine:
                start = time.perf_counter()
                whatif_lint(trace, manifest, report=report, engine=engine)
                cold_times.append(time.perf_counter() - start)
                start = time.perf_counter()
                warm = whatif_lint(trace, manifest, report=report, engine=engine)
                warm_times.append(time.perf_counter() - start)
                warm_all_cached &= all(c.from_cache for c in warm.cells)
    cold = _stats(cold_times, len(trace) * len(_GRID_CPUS))
    warm = _stats(warm_times, len(trace) * len(_GRID_CPUS))
    return {
        "grid_cpus": _GRID_CPUS,
        "events": len(trace),
        "cold": cold,
        "warm": warm,
        "warm_all_cached": warm_all_cached,
        "speedup": round(cold["best_s"] / warm["best_s"], 3)
        if warm["best_s"]
        else 0.0,
    }


def run_bench(runs: int, scale: float) -> dict:
    fixtures = [bench_sweep(name, prog, runs) for name, prog in _fixtures(scale)]
    grid = bench_grid(runs)
    total_events = sum(f["events"] for f in fixtures)
    total_s = sum(f["lint"]["best_s"] for f in fixtures)
    return {
        "benchmark": "lint",
        "config": {
            "scale": scale,
            "runs": runs,
            "python": sys.version.split()[0],
        },
        "fixtures": fixtures,
        "grid": grid,
        "aggregate": {
            "events": total_events,
            "lint_s": round(total_s, 6),
            "events_per_s": round(total_events / total_s) if total_s else 0,
        },
    }


# ---------------------------------------------------------------------------
# gate
# ---------------------------------------------------------------------------


def check(report: dict, baseline: dict, tolerance: float) -> list:
    failures = []
    if not report["grid"]["warm_all_cached"]:
        failures.append("warm grid re-run was not served entirely from cache")
    base_speedup = baseline.get("grid", {}).get("speedup")
    if base_speedup:
        floor = base_speedup * (1.0 - tolerance)
        if report["grid"]["speedup"] < floor:
            failures.append(
                f"grid warm-cache speedup {report['grid']['speedup']:.1f}x "
                f"fell below {floor:.1f}x ({(1 - tolerance):.0%} of committed "
                f"{base_speedup:.1f}x)"
            )
    return failures


def _render_table(report: dict) -> str:
    lines = [
        f"Lint throughput: one-sweep rule catalog + happens-before "
        f"(scale {report['config']['scale']}, best of {report['config']['runs']})",
        f"{'fixture':<16} {'events':>8} {'findings':>9} {'lint best':>10} "
        f"{'events/s':>10}",
    ]
    for f in report["fixtures"]:
        lines.append(
            f"{f['name']:<16} {f['events']:>8} {f['findings']:>9} "
            f"{f['lint']['best_s']*1e3:>8.1f}ms {f['lint']['events_per_s']:>10,}"
        )
    agg = report["aggregate"]
    lines.append(
        f"{'aggregate':<16} {agg['events']:>8} {'':>9} "
        f"{agg['lint_s']*1e3:>8.1f}ms {agg['events_per_s']:>10,}"
    )
    grid = report["grid"]
    lines.append(
        f"whatif grid {grid['grid_cpus']}: cold {grid['cold']['best_s']*1e3:.1f}ms, "
        f"warm {grid['warm']['best_s']*1e3:.1f}ms "
        f"({grid['speedup']:.1f}x, all-cached={grid['warm_all_cached']})"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=max(3, BENCH_RUNS))
    parser.add_argument("--scale", type=float, default=BENCH_SCALE)
    parser.add_argument(
        "--check", action="store_true",
        help=f"gate the warm-cache grid speedup against the committed {BASELINE}",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.50,
        help="allowed fractional speedup drop in --check mode (default 0.50)",
    )
    parser.add_argument(
        "--artifact", default=BASELINE,
        help=f"result JSON filename under benchmarks/results/ (default {BASELINE})",
    )
    args = parser.parse_args(argv)

    report = run_bench(args.runs, args.scale)
    save_json(args.artifact, report)
    emit(_render_table(report))

    if args.check:
        baseline = load_json(BASELINE)
        if baseline is None:
            emit(f"GATE FAILED: no committed baseline {BASELINE}")
            return 1
        failures = check(report, baseline, args.tolerance)
        if failures:
            emit("GATE FAILED: " + "; ".join(failures))
            return 1
        emit(
            f"gate passed: warm grid speedup {report['grid']['speedup']:.1f}x "
            f"(committed {baseline['grid']['speedup']:.1f}x, "
            f"tolerance {args.tolerance:.0%})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
