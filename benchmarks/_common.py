"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure from the paper.  Results
are written to ``benchmarks/results/`` *and* echoed to the real stdout
(bypassing pytest's capture) so ``pytest benchmarks/ --benchmark-only``
shows the reproduced numbers inline.

``VPPB_BENCH_SCALE`` controls the workload problem scale (default 0.2 —
minutes, shapes intact; 1.0 reproduces the paper's 60-210 s uni-processor
runs and takes correspondingly longer).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: problem scale for the SPLASH-2 models (1.0 = paper-sized)
BENCH_SCALE = float(os.environ.get("VPPB_BENCH_SCALE", "0.2"))

#: ground-truth runs per configuration (the paper uses five)
BENCH_RUNS = int(os.environ.get("VPPB_BENCH_RUNS", "5"))

#: the paper's processor counts
CPU_COUNTS = (2, 4, 8)


def emit(text: str, *, artifact: str | None = None) -> None:
    """Print *text* to the real stdout and optionally save it."""
    print(text, file=sys.__stdout__)
    sys.__stdout__.flush()
    if artifact:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / artifact).write_text(text + "\n")


def save_artifact(name: str, content: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content)
    return path


def save_json(name: str, payload) -> Path:
    """Write a machine-readable ``BENCH_*.json`` perf artifact.

    Every benchmark that makes a performance claim commits one of these
    (and CI uploads a freshly-measured copy) so the perf trajectory is
    diffable across PRs instead of living in prose.
    """
    import json

    return save_artifact(name, json.dumps(payload, indent=2) + "\n")


def load_json(name: str):
    """Read a committed ``BENCH_*.json`` baseline; None when absent."""
    import json

    path = RESULTS_DIR / name
    if not path.is_file():
        return None
    return json.loads(path.read_text())
