"""§4 recording overhead: "the execution time overhead for doing the
recordings was very small.  The maximum overhead, which was obtained for
Ocean, was 2.6 % of the total execution time" (and < 3 % for all five).

For each kernel we run the uni-processor execution with and without the
Recorder's probes and report the relative prolongation.  The benchmark
timing wraps the monitored recording itself (how expensive is it to make
a log).
"""

from __future__ import annotations

import pytest

from repro.analysis import recording_overhead
from repro.program.uniexec import record_program, unmonitored_run
from repro.workloads import get_workload

from _common import BENCH_SCALE, emit

KERNELS = ("ocean", "water", "fft", "radix", "lu")

#: the paper's bound: "less than 3% for all five programs"
OVERHEAD_LIMIT = 0.03


@pytest.fixture(scope="module")
def overhead_data():
    data = {}
    for name in KERNELS:
        program = get_workload(name).make_program(8, BENCH_SCALE)
        plain = unmonitored_run(program)
        monitored = record_program(program)
        data[name] = (
            recording_overhead(monitored.monitored_makespan_us, plain.makespan_us),
            monitored,
            plain.makespan_us,
        )
    return data


@pytest.mark.parametrize("kernel", KERNELS)
def test_recording_overhead(benchmark, overhead_data, kernel):
    program = get_workload(kernel).make_program(8, BENCH_SCALE)
    benchmark.pedantic(lambda: record_program(program), rounds=1, iterations=1)
    overhead, _, _ = overhead_data[kernel]
    assert 0 <= overhead < OVERHEAD_LIMIT, f"{kernel}: {overhead:.2%}"


def test_overhead_report(benchmark, overhead_data):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"Recording overhead (scale {BENCH_SCALE}; paper: max 2.6%, Ocean)",
        f"{'kernel':<8} {'plain (s)':>10} {'monitored (s)':>14} "
        f"{'events':>8} {'overhead':>9}",
    ]
    worst = ("", 0.0)
    for name, (overhead, monitored, plain_us) in overhead_data.items():
        lines.append(
            f"{name:<8} {plain_us / 1e6:>10.3f} "
            f"{monitored.monitored_makespan_us / 1e6:>14.3f} "
            f"{monitored.n_events:>8} {overhead:>8.2%}"
        )
        if overhead > worst[1]:
            worst = (name, overhead)
    lines.append(f"max overhead: {worst[0]} at {worst[1]:.2%}")
    emit("\n" + "\n".join(lines), artifact="overhead.txt")
    assert worst[1] < OVERHEAD_LIMIT
    # the paper's shape: Ocean (most events/s) pays the most
    assert worst[0] == "ocean"
