"""Figures 2, 4 and 5: the worked example and the Visualizer views.

* **fig. 2** — the example program's recorded event list (the right-hand
  side of the figure): ``main`` creates ``thr_a``/``thr_b`` (ids 4 and 5),
  joins both; the log shows create/join/exit events in the same order;
* **fig. 4** — the Simulator's first stage: the global log sorted into
  one event list per thread;
* **fig. 5** — the parallelism graph over the execution flow graph,
  rendered as SVG and ASCII artifacts.

The benchmark timings wrap the rendering calls.
"""

from __future__ import annotations

import pytest

from repro import Program, SimConfig, predict, record_program
from repro.core.events import Phase, Primitive
from repro.core.timebase import format_us
from repro.program.ops import Compute, ThrCreate, ThrExit, ThrJoin
from repro.recorder import logfile
from repro.visualizer import render_ascii, render_svg

from _common import emit, save_artifact


def _fig2_program() -> Program:
    def thread(ctx):
        yield Compute(100_000)

    def main(ctx):
        thr_a = yield ThrCreate(thread, name="thread")
        thr_b = yield ThrCreate(thread, name="thread")
        yield ThrJoin(thr_a)
        yield ThrJoin(thr_b)
        yield ThrExit()

    return Program("fig2", main)


@pytest.fixture(scope="module")
def fig2_run():
    return record_program(_fig2_program())


def test_fig2_recorder_output(benchmark, fig2_run):
    """Regenerate the fig. 2 log listing and check its structure."""
    text = benchmark.pedantic(
        lambda: logfile.dumps(fig2_run.trace), rounds=3, iterations=1
    )
    emit("\nfig. 2 — recorded information:\n" + text, artifact="fig2_log.txt")

    trace = fig2_run.trace
    # the paper's thread numbering: main = 1, thr_a = 4, thr_b = 5
    assert sorted(int(t) for t in trace.thread_ids()) == [1, 4, 5]
    creates = [r for r in trace if r.primitive is Primitive.THR_CREATE and r.is_ret]
    assert [int(r.target) for r in creates] == [4, 5]
    # ... and the log ends with main's thr_exit (before end_collect)
    exits = [r for r in trace if r.primitive is Primitive.THR_EXIT]
    assert int(exits[-1].tid) == 1


def test_fig4_per_thread_sorting(benchmark, fig2_run):
    """Regenerate fig. 4: the per-thread event lists."""
    trace = fig2_run.trace
    per_thread = benchmark.pedantic(trace.per_thread, rounds=3, iterations=1)

    lines = ["fig. 4 — the Simulator's sorting of the log file:"]
    for tid, records in sorted(per_thread.items(), key=lambda kv: int(kv[0])):
        lines.append(f"\nT{int(tid)}'s event list:")
        for rec in records:
            lines.append(f"  {format_us(rec.time_us, decimals=6)}  {rec.brief()}")
    emit("\n" + "\n".join(lines), artifact="fig4_sorted.txt")

    assert set(int(t) for t in per_thread) == {1, 4, 5}
    for tid, records in per_thread.items():
        assert all(r.tid == tid for r in records)
        times = [r.time_us for r in records]
        assert times == sorted(times)
    # T1 keeps the creates and joins; T4/T5 the start/exit markers
    t1_prims = {r.primitive for r in per_thread[min(per_thread, key=int)]}
    assert Primitive.THR_CREATE in t1_prims and Primitive.THR_JOIN in t1_prims


def test_fig5_graphs(benchmark, fig2_run):
    """Render the fig. 5 view of the predicted 2-CPU execution."""
    result = predict(fig2_run.trace, SimConfig(cpus=2))

    svg = benchmark.pedantic(
        lambda: render_svg(result, title="fig. 5: fig2 example on 2 CPUs"),
        rounds=3,
        iterations=1,
    )
    path = save_artifact("fig5_view.svg", svg)
    ascii_view = render_ascii(result, width=78)
    emit(
        "\nfig. 5 — parallelism and execution flow graphs "
        f"(SVG at {path}):\n" + ascii_view,
        artifact="fig5_view.txt",
    )

    assert svg.startswith("<svg")
    # the view shows all three threads and both workers' parallel phase
    assert "T1 main" in svg and "T4 thread" in svg and "T5 thread" in svg
    assert "parallelism" in ascii_view
