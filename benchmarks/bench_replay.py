"""Replay-engine throughput: compiled opcode fast path vs legacy walker.

Not a paper table — this benchmark backs the simulator-core performance
claim: lowering each thread's ``Step`` list to flat opcode arrays and
replaying them through the fast interpreter multiplies replay throughput
while producing **bit-identical** results (parity is asserted on every
timed run; a mismatch fails the benchmark outright).

Fixtures span the contention spectrum, because the two engines share all
scheduler/block/wake machinery and the fast path can only shrink the
per-step interpreter cost:

* ``lock-ladder`` — uncontended sync-heavy replay, the pure measure of
  interpreter dispatch (the **headline** replay-throughput figure);
* ``prodcons`` — contended producer/consumer, dominated by shared
  block/wake scheduling;
* ``barrier-fft`` — a SPLASH-2-shaped numeric workload between the two.

Output: ``benchmarks/results/BENCH_replay.json`` with per-fixture
events/sec, plan compile time, p50/p90 replay times and speedups.

``--check`` re-measures and gates against the committed baseline: the
measured *speedup ratio* (fast vs legacy, same machine, same run) must
stay within ``--tolerance`` (default 20 %) of the committed one.  The
ratio — not absolute throughput — is gated so the check holds on CI
hardware that is faster or slower than the machine that committed the
baseline.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import BENCH_RUNS, BENCH_SCALE, emit, load_json, save_json  # noqa: E402

from repro import Program, SimConfig, record_program  # noqa: E402
from repro.core.predictor import compile_trace  # noqa: E402
from repro.core.simulator import Simulator  # noqa: E402
from repro.program import ops as op  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

BASELINE = "BENCH_replay.json"


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------


def make_lock_ladder(scale: float) -> Program:
    """One thread hammering an uncontended mutex: no blocking, no
    preemption, so replay time is pure interpreter dispatch plus
    sync-table bookkeeping — the cost the compiled fast path attacks."""
    rounds = max(1_000, int(20_000 * scale))

    def main(ctx):
        for _ in range(rounds):
            yield op.MutexLock("m")
            yield op.MutexUnlock("m")

    return Program("lock-ladder", main)


def _fixtures(scale: float):
    return [
        ("lock-ladder", make_lock_ladder(scale), 1),
        ("prodcons", get_workload("prodcons").make_program(4, max(0.2, scale)), 4),
        ("barrier-fft", get_workload("fft").make_program(4, max(0.2, scale)), 4),
    ]


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------


def _replay_s(plan, config, engine: str) -> float:
    sim = Simulator(config)
    start = time.perf_counter()
    sim.run_replay(plan, replay_engine=engine)
    return time.perf_counter() - start


def _stats(times, events: int):
    ordered = sorted(times)
    best = ordered[0]
    return {
        "best_s": round(best, 6),
        "p50_s": round(statistics.median(ordered), 6),
        "p90_s": round(ordered[min(len(ordered) - 1, int(0.9 * len(ordered)))], 6),
        "events_per_s": round(events / best),
    }


def bench_fixture(name: str, program: Program, cpus: int, runs: int) -> dict:
    trace = record_program(program).trace

    compile_start = time.perf_counter()
    plan = compile_trace(trace)
    compile_s = time.perf_counter() - compile_start
    if not plan.fast_replayable():
        raise SystemExit(f"{name}: plan did not lower to the fast form")

    # parity first, on a shared config object (SimulationResult equality
    # includes the config, and each SimConfig owns its DispatchTable)
    config = SimConfig(cpus=cpus)
    reference = Simulator(config).run_replay(plan, replay_engine="legacy")
    fast_result = Simulator(config).run_replay(plan, replay_engine="fast")
    if reference != fast_result:
        raise SystemExit(f"{name}: fast replay diverged from legacy (parity)")

    # interleave engines so machine noise hits both alike
    legacy_times, fast_times = [], []
    for _ in range(runs):
        legacy_times.append(_replay_s(plan, config, "legacy"))
        fast_times.append(_replay_s(plan, config, "fast"))

    events = reference.engine_events
    legacy = _stats(legacy_times, events)
    fast = _stats(fast_times, events)
    return {
        "name": name,
        "cpus": cpus,
        "engine_events": events,
        "plan_events": plan.event_count,
        "compile_s": round(compile_s, 6),
        "legacy": legacy,
        "fast": fast,
        "speedup": round(legacy["best_s"] / fast["best_s"], 3),
        "parity": True,
    }


def run_bench(runs: int, scale: float) -> dict:
    fixtures = [
        bench_fixture(name, program, cpus, runs)
        for name, program, cpus in _fixtures(scale)
    ]
    total_events = sum(f["engine_events"] for f in fixtures)
    total_legacy = sum(f["legacy"]["best_s"] for f in fixtures)
    total_fast = sum(f["fast"]["best_s"] for f in fixtures)
    headline = next(f for f in fixtures if f["name"] == "lock-ladder")
    return {
        "benchmark": "replay-fastpath",
        "config": {
            "scale": scale,
            "runs": runs,
            "python": sys.version.split()[0],
        },
        "fixtures": fixtures,
        "headline": {
            "fixture": headline["name"],
            "speedup": headline["speedup"],
            "fast_events_per_s": headline["fast"]["events_per_s"],
            "note": (
                "uncontended sync-heavy replay: pure interpreter throughput, "
                "unaffected by the block/wake machinery both engines share"
            ),
        },
        "aggregate": {
            "engine_events": total_events,
            "legacy_s": round(total_legacy, 6),
            "fast_s": round(total_fast, 6),
            "speedup": round(total_legacy / total_fast, 3),
        },
    }


# ---------------------------------------------------------------------------
# gate
# ---------------------------------------------------------------------------


def check(report: dict, baseline: dict, tolerance: float) -> list:
    """Compare measured speedup ratios against the committed baseline."""
    failures = []
    base_fixtures = {f["name"]: f for f in baseline.get("fixtures", [])}
    for fixture in report["fixtures"]:
        base = base_fixtures.get(fixture["name"])
        if base is None:
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        if fixture["speedup"] < floor:
            failures.append(
                f"{fixture['name']}: speedup {fixture['speedup']:.2f}x fell "
                f"below {floor:.2f}x ({(1 - tolerance):.0%} of committed "
                f"{base['speedup']:.2f}x)"
            )
    base_headline = baseline.get("headline", {}).get("speedup")
    if base_headline:
        floor = base_headline * (1.0 - tolerance)
        if report["headline"]["speedup"] < floor:
            failures.append(
                f"headline: speedup {report['headline']['speedup']:.2f}x fell "
                f"below {floor:.2f}x"
            )
    return failures


def _render_table(report: dict) -> str:
    lines = [
        f"Replay throughput: fast opcode interpreter vs legacy Step walker "
        f"(scale {report['config']['scale']}, best of {report['config']['runs']})",
        f"{'fixture':<14} {'events':>8} {'compile':>9} {'legacy ev/s':>12} "
        f"{'fast ev/s':>12} {'speedup':>8}",
    ]
    for f in report["fixtures"]:
        lines.append(
            f"{f['name']:<14} {f['engine_events']:>8} {f['compile_s']*1e3:>7.1f}ms "
            f"{f['legacy']['events_per_s']:>12,} {f['fast']['events_per_s']:>12,} "
            f"{f['speedup']:>7.2f}x"
        )
    agg = report["aggregate"]
    lines.append(
        f"{'aggregate':<14} {agg['engine_events']:>8} {'':>9} "
        f"{'':>12} {'':>12} {agg['speedup']:>7.2f}x"
    )
    lines.append(
        f"headline (interpreter throughput, {report['headline']['fixture']}): "
        f"{report['headline']['speedup']:.2f}x at "
        f"{report['headline']['fast_events_per_s']:,} events/s"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=max(3, BENCH_RUNS))
    parser.add_argument("--scale", type=float, default=BENCH_SCALE)
    parser.add_argument(
        "--check", action="store_true",
        help=f"gate measured speedups against the committed {BASELINE}",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional speedup drop in --check mode (default 0.20)",
    )
    parser.add_argument(
        "--artifact", default=BASELINE,
        help=f"result JSON filename under benchmarks/results/ (default {BASELINE})",
    )
    args = parser.parse_args(argv)

    report = run_bench(args.runs, args.scale)
    save_json(args.artifact, report)
    emit(_render_table(report))

    if args.check:
        baseline = load_json(BASELINE)
        if baseline is None:
            emit(f"GATE FAILED: no committed baseline {BASELINE}")
            return 1
        failures = check(report, baseline, args.tolerance)
        if failures:
            emit("GATE FAILED: " + "; ".join(failures))
            return 1
        emit(
            f"gate passed: headline {report['headline']['speedup']:.2f}x "
            f"(committed {baseline['headline']['speedup']:.2f}x, "
            f"tolerance {args.tolerance:.0%})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
