"""Ablations over the design choices DESIGN.md calls out.

Not a paper table — these sweeps quantify the §3.2 model ingredients so a
user can see what each knob buys:

* **bound-thread cost multipliers** (x6.7 create / x5.9 sync, the paper's
  only hard constants): how much they slow a fine-grained program;
* **LWP pool size**: the throttle between user threads and processors;
* **communication delay**: sensitivity of a synchronisation-heavy
  program to cross-CPU wake-up latency;
* **TS time slicing**: classic dispatch table vs no preemption — the
  fairness/makespan trade;
* **probe overhead**: how recording intrusion propagates into prediction
  error (the §4 intrusion argument, quantified).
"""

from __future__ import annotations

import pytest

from repro import (
    Program,
    SimConfig,
    ThreadPolicy,
    compile_trace,
    predict,
    record_program,
)
from repro.program.ops import Compute, MutexLock, MutexUnlock, ThrCreate, ThrJoin
from repro.program.uniexec import unmonitored_run
from repro.solaris.dispatch import DispatchTable
from repro.workloads import get_workload

from _common import BENCH_SCALE, emit


def _finegrained(nthreads: int = 4, iters: int = 50) -> Program:
    def worker(ctx):
        for _ in range(iters):
            yield Compute(500)
            yield MutexLock("m")
            yield Compute(20)
            yield MutexUnlock("m")

    def main(ctx):
        tids = []
        for _ in range(nthreads):
            tids.append((yield ThrCreate(worker)))
        for tid in tids:
            yield ThrJoin(tid)

    return Program("finegrained", main)


@pytest.fixture(scope="module")
def finegrained_trace():
    return record_program(_finegrained()).trace


def test_ablation_bound_costs(benchmark, finegrained_trace):
    """The paper's x6.7/x5.9 multipliers on a fine-grained program."""
    plan = compile_trace(finegrained_trace)
    unbound_cfg = SimConfig(cpus=4)
    bound_cfg = SimConfig(
        cpus=4, thread_policies={4 + i: ThreadPolicy(bound=True) for i in range(4)}
    )
    unbound = predict(finegrained_trace, unbound_cfg, plan=plan)
    bound = benchmark.pedantic(
        lambda: predict(finegrained_trace, bound_cfg, plan=plan),
        rounds=1,
        iterations=1,
    )
    slowdown = bound.makespan_us / unbound.makespan_us
    emit(
        f"\nablation: binding all threads to LWPs slows the fine-grained "
        f"program by {slowdown:.3f}x (x6.7 create / x5.9 sync costs)",
        artifact="ablation_bound.txt",
    )
    assert slowdown > 1.01  # the multipliers must be visible


def test_ablation_lwp_pool(benchmark, finegrained_trace):
    plan = compile_trace(finegrained_trace)
    rows = ["ablation: LWP pool size on 4 CPUs (fine-grained program)"]
    makespans = {}
    for lwps in (1, 2, 3, 4, None):
        res = predict(finegrained_trace, SimConfig(cpus=4, lwps=lwps), plan=plan)
        makespans[lwps] = res.makespan_us
        label = "on-demand" if lwps is None else str(lwps)
        rows.append(f"  lwps={label:<10} makespan {res.makespan_us / 1e3:8.2f} ms")
    benchmark.pedantic(
        lambda: predict(finegrained_trace, SimConfig(cpus=4, lwps=2), plan=plan),
        rounds=1,
        iterations=1,
    )
    emit("\n" + "\n".join(rows), artifact="ablation_lwps.txt")
    assert makespans[1] > makespans[2] > makespans[4] * 0.99
    assert makespans[None] <= makespans[1]


def test_ablation_comm_delay(benchmark):
    """A lock-passing kernel degrades as cross-CPU wake-ups get slower."""
    trace = record_program(
        get_workload("water").make_program(4, BENCH_SCALE / 2)
    ).trace
    plan = compile_trace(trace)
    rows = ["ablation: communication delay (water kernel, 4 CPUs)"]
    makespans = []
    for delay in (0, 100, 1_000, 10_000):
        res = predict(
            trace, SimConfig(cpus=4, comm_delay_us=delay), plan=plan
        )
        makespans.append(res.makespan_us)
        rows.append(f"  delay {delay:>6} us -> makespan {res.makespan_us / 1e3:9.2f} ms")
    benchmark.pedantic(
        lambda: predict(trace, SimConfig(cpus=4, comm_delay_us=100), plan=plan),
        rounds=1,
        iterations=1,
    )
    emit("\n" + "\n".join(rows), artifact="ablation_commdelay.txt")
    assert makespans == sorted(makespans)  # monotone degradation


def test_ablation_time_slicing(benchmark):
    """Classic TS quanta vs run-to-block: fairness costs context switches."""
    program = _finegrained(nthreads=6, iters=80)
    classic = unmonitored_run(program)
    cfg = SimConfig(cpus=2, lwps=2, dispatch=DispatchTable.fixed_quantum(2_000))
    from repro.core.simulator import simulate_program

    sliced = benchmark.pedantic(
        lambda: simulate_program(program, cfg), rounds=1, iterations=1
    )
    no_slice = simulate_program(
        program, SimConfig(cpus=2, lwps=2, time_slicing=False)
    )
    emit(
        "\nablation: time slicing (6 threads, 2 CPUs, 2 LWPs)\n"
        f"  2 ms quanta : makespan {sliced.makespan_us / 1e3:8.2f} ms, "
        f"engine events {sliced.engine_events}\n"
        f"  run-to-block: makespan {no_slice.makespan_us / 1e3:8.2f} ms, "
        f"engine events {no_slice.engine_events}",
        artifact="ablation_timeslice.txt",
    )
    del classic
    # preemption adds engine events but must not change total work much
    assert abs(sliced.makespan_us - no_slice.makespan_us) < 0.2 * no_slice.makespan_us


def test_ablation_probe_overhead(benchmark):
    """Recording intrusion propagates into the prediction (§4)."""
    program = get_workload("ocean").make_program(4, BENCH_SCALE / 2)
    rows = ["ablation: probe overhead -> predicted 4-CPU makespan (ocean)"]
    makespans = {}
    for overhead in (0, 15, 60, 240):
        run = record_program(program, overhead_us=overhead)
        res = predict(run.trace, SimConfig(cpus=4))
        makespans[overhead] = res.makespan_us
        rows.append(
            f"  overhead {overhead:>3} us/record -> "
            f"{res.makespan_us / 1e3:9.2f} ms predicted"
        )
    benchmark.pedantic(
        lambda: record_program(program, overhead_us=15), rounds=1, iterations=1
    )
    emit("\n" + "\n".join(rows), artifact="ablation_probe.txt")
    # more intrusion -> slower predicted execution, monotonically
    values = [makespans[k] for k in sorted(makespans)]
    assert values == sorted(values)
    # at the default 15 us the distortion is well under the paper's 3%
    assert makespans[15] / makespans[0] < 1.03


def test_ablation_lwp_switch_overhead(benchmark, finegrained_trace):
    """§6: the paper's simulator ignores LWP context-switch overhead on
    the multiprocessor.  Quantify what that approximation is worth."""
    from repro.solaris.costs import CostModel

    plan = compile_trace(finegrained_trace)
    rows = ["ablation: kernel LWP-switch cost (fine-grained, 2 CPUs, 4 LWPs)"]
    makespans = {}
    for cost in (0, 50, 200, 1_000):
        cfg = SimConfig(cpus=2, lwps=4, costs=CostModel(lwp_switch_us=cost))
        res = predict(finegrained_trace, cfg, plan=plan)
        makespans[cost] = res.makespan_us
        rows.append(
            f"  lwp switch {cost:>5} us -> makespan {res.makespan_us / 1e3:8.2f} ms"
        )
    benchmark.pedantic(
        lambda: predict(
            finegrained_trace,
            SimConfig(cpus=2, lwps=4, costs=CostModel(lwp_switch_us=50)),
            plan=plan,
        ),
        rounds=1,
        iterations=1,
    )
    emit("\n" + "\n".join(rows), artifact="ablation_lwpswitch.txt")
    values = [makespans[k] for k in sorted(makespans)]
    assert values == sorted(values)  # overhead only ever slows things
    # the paper-faithful default (0) differs from a realistic 50 us by
    # little — supporting the paper's decision to ignore it
    assert makespans[50] / makespans[0] < 1.05
