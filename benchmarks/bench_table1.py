"""Table 1: measured and predicted speed-ups for the five SPLASH-2 kernels.

For each kernel and each processor count (2, 4, 8):

* **Real** — five seeded ground-truth executions on the simulated
  multiprocessor (middle value plus min-max spread, the paper's protocol);
* **Pred.** — the VPPB pipeline: one monitored uni-processor run of the
  P-thread program, compiled and replayed on the P-CPU machine;
* **Error** — §4's ``(real - predicted)/real``.

Pass criterion (the paper's headline): every error within ±6 %-ish — we
allow 8 % to absorb miniaturisation noise at the default bench scale.

The pytest-benchmark timing wraps the *prediction* step (trace compile +
replay), i.e. how long VPPB itself takes to predict one configuration.
"""

from __future__ import annotations

import pytest

from repro import compile_trace, predict, predict_speedup, record_program
from repro.analysis import Table1, Table1Cell, Table1Row, format_table1
from repro.core.config import SimConfig
from repro.program.mpexec import measure_speedup
from repro.workloads import PAPER_TABLE1, get_workload

from _common import BENCH_RUNS, BENCH_SCALE, CPU_COUNTS, emit

KERNELS = ("ocean", "water", "fft", "radix", "lu")

#: tolerated |error|: the paper's worst case is 6.2 % (Ocean at 8 CPUs)
ERROR_TOLERANCE = 0.08


@pytest.fixture(scope="module")
def table1_data():
    """Run the whole Table 1 experiment once; benches assert against it."""
    rows = []
    traces = {}
    for name in KERNELS:
        workload = get_workload(name)
        sequential = workload.make_program(1, BENCH_SCALE)
        baseline = record_program(sequential, overhead_us=0)
        cells = []
        for cpus in CPU_COUNTS:
            program = workload.make_program(cpus, BENCH_SCALE)
            run = record_program(program)
            traces[(name, cpus)] = run.trace
            pred = predict_speedup(
                run.trace, cpus, baseline_us=baseline.monitored_makespan_us
            )
            real = measure_speedup(
                program, cpus, runs=BENCH_RUNS, baseline_program=sequential
            )
            cells.append(Table1Cell(cpus=cpus, real=real, predicted=pred))
        rows.append(Table1Row(application=name, cells=cells))
    return Table1(rows=rows), traces


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("cpus", CPU_COUNTS)
def test_table1_cell(benchmark, table1_data, kernel, cpus):
    """One Table 1 cell: benchmark the prediction, assert the error."""
    table, traces = table1_data
    trace = traces[(kernel, cpus)]
    plan = compile_trace(trace)

    benchmark.pedantic(
        lambda: predict(trace, SimConfig(cpus=cpus), plan=plan),
        rounds=1,
        iterations=1,
    )

    cell = table.row(kernel).cell(cpus)
    assert abs(cell.error) <= ERROR_TOLERANCE, (
        f"{kernel}@{cpus}p error {cell.error:.1%} "
        f"(real {cell.real.speedup:.2f}, pred {cell.predicted.speedup:.2f})"
    )


def test_table1_report(benchmark, table1_data):
    """Assemble and print the full table next to the paper's numbers."""
    table, _ = table1_data
    text = benchmark.pedantic(
        lambda: format_table1(
            table,
            paper=PAPER_TABLE1,
            title=(
                "Table 1: Measured and predicted speed-ups "
                f"(scale {BENCH_SCALE}, {BENCH_RUNS} real runs)"
            ),
        ),
        rounds=1,
        iterations=1,
    )
    emit("\n" + text, artifact="table1.txt")
    assert table.max_abs_error <= ERROR_TOLERANCE

    # the paper's shape: FFT is the worst scaler, Radix the best, and
    # Ocean owns the largest prediction error at 8 CPUs.  The Ocean error
    # comes from trylock contention timing, so its magnitude depends on
    # the phase/fold size ratio: at the default bench scale (which also
    # matches the paper's events-per-second regime) Ocean is strictly the
    # worst; at other scales we require it among the top two.
    at8 = {row.application: row.cell(8).predicted.speedup for row in table.rows}
    assert at8["fft"] == min(at8.values())
    assert at8["radix"] == max(at8.values())
    errors_at_8 = {row.application: abs(row.cell(8).error) for row in table.rows}
    ranked = sorted(errors_at_8, key=errors_at_8.get, reverse=True)
    if abs(BENCH_SCALE - 0.2) < 1e-9:
        assert ranked[0] == "ocean", ranked
    else:
        assert "ocean" in ranked[:2], ranked
