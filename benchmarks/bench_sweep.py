"""Batch engine throughput: serial vs pooled sweeps, cold vs warm cache.

Not a paper table — this one validates the batch subsystem's two
performance claims on a real workload trace:

* a pooled :class:`~repro.jobs.engine.JobEngine` runs a CPU sweep's
  points concurrently (wall-clock below the serial sum once the trace is
  large enough to amortise pool start-up);
* a warm content-addressed cache answers a repeated sweep from disk —
  the second run must be dominated by cache reads, not simulation.

``VPPB_BENCH_SCALE`` scales the traced workload as in the other
benchmarks.
"""

from __future__ import annotations

import time

import pytest

from repro.jobs import JobEngine, ResultCache, TraceRef
from repro.program.uniexec import record_program
from repro.workloads import get_workload

from _common import BENCH_SCALE, emit, save_json

SWEEP_CPUS = list(range(1, 9))
POOL_WORKERS = 4


@pytest.fixture(scope="module")
def trace():
    program = get_workload("fft").make_program(8, BENCH_SCALE)
    return record_program(program).trace


@pytest.fixture(scope="module")
def trace_ref(trace):
    return TraceRef.from_trace(trace)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_sweep_throughput(benchmark, trace, trace_ref, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("sweep-cache")

    # serial reference: inline engine, no cache
    def serial():
        return JobEngine(mode="inline").predict_speedups(
            trace, SWEEP_CPUS, trace_ref=trace_ref, use_cache=False
        )

    serial_preds, serial_s = _timed(serial)

    # pooled, cold: fresh pool + fresh disk cache
    pooled_engine = JobEngine(workers=POOL_WORKERS, cache=ResultCache(cache_dir))
    with pooled_engine:
        pooled_preds, cold_s = _timed(
            lambda: pooled_engine.predict_speedups(
                trace, SWEEP_CPUS, trace_ref=trace_ref
            )
        )

        # warm: identical sweep, same cache — benchmark fixture times this
        warm_preds = benchmark.pedantic(
            lambda: pooled_engine.predict_speedups(
                trace, SWEEP_CPUS, trace_ref=trace_ref
            ),
            rounds=1,
            iterations=1,
        )
        _, warm_s = _timed(
            lambda: pooled_engine.predict_speedups(
                trace, SWEEP_CPUS, trace_ref=trace_ref
            )
        )
        cache_stats = pooled_engine.cache.stats()

    # determinism across execution modes is part of the contract
    key = lambda preds: [(p.cpus, p.makespan_us) for p in preds]
    assert key(serial_preds) == key(pooled_preds) == key(warm_preds)
    assert cache_stats["hits"] >= 2 * (len(SWEEP_CPUS) + 1)

    # a warm cache must beat cold simulation outright
    assert warm_s < cold_s

    lines = [
        f"Batch sweep throughput (fft, scale {BENCH_SCALE}, "
        f"{len(SWEEP_CPUS)}-point sweep, pool of {POOL_WORKERS})",
        f"{'mode':<24} {'wall (s)':>10} {'vs serial':>10}",
        f"{'serial (inline)':<24} {serial_s:>10.3f} {'1.00x':>10}",
        f"{'pooled, cold cache':<24} {cold_s:>10.3f} "
        f"{serial_s / cold_s:>9.2f}x",
        f"{'pooled, warm cache':<24} {warm_s:>10.3f} "
        f"{serial_s / warm_s:>9.2f}x",
        f"cache: {cache_stats['hits']} hits / {cache_stats['misses']} misses "
        f"(hit rate {cache_stats['hit_rate']:.0%})",
    ]
    emit("\n" + "\n".join(lines), artifact="sweep.txt")
    save_json(
        "BENCH_sweep.json",
        {
            "benchmark": "batch-sweep",
            "config": {
                "workload": "fft",
                "scale": BENCH_SCALE,
                "sweep_cpus": SWEEP_CPUS,
                "pool_workers": POOL_WORKERS,
            },
            "results": {
                "serial_s": round(serial_s, 6),
                "pooled_cold_s": round(cold_s, 6),
                "pooled_warm_s": round(warm_s, 6),
                "pooled_speedup": round(serial_s / cold_s, 3),
                "warm_speedup": round(serial_s / warm_s, 3),
                "cache": cache_stats,
            },
        },
    )
