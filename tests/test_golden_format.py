"""Golden-file regression test of the log format.

The serialised form of the fig. 2 example is pinned byte-for-byte
(modulo source locations, which carry this repo's line numbers).  Any
change to timestamps, costs, record ordering or the format itself shows
up here first — bump the golden file consciously when that is intended.
"""

import re
from pathlib import Path

from repro.program.uniexec import record_program
from repro.recorder import logfile
from tests.conftest import make_fig2_program

GOLDEN = Path(__file__).parent / "golden" / "fig2.log"


def _normalise(text: str) -> str:
    return re.sub(r" src=\S+", "", text)


class TestGoldenLog:
    def test_fig2_log_matches_golden(self):
        run = record_program(make_fig2_program())
        text = _normalise(logfile.dumps(run.trace))
        assert text == GOLDEN.read_text(), (
            "the log format or the simulated timing changed; if that is "
            "intentional, regenerate tests/golden/fig2.log"
        )

    def test_golden_parses_and_predicts(self):
        from repro import SimConfig, predict

        trace = logfile.loads(GOLDEN.read_text())
        res = predict(trace, SimConfig(cpus=2))
        # the canonical fig. 2 numbers: two 100 ms workers overlap
        assert res.makespan_us == 100_410
