"""Unit tests for the discrete-event core."""

import pytest

from repro.core.engine import Engine, EventQueue
from repro.core.errors import LivelockError, SimulationError


class TestEventQueue:
    def test_pop_order(self):
        q = EventQueue()
        order = []
        q.push(20, lambda: order.append("b"))
        q.push(10, lambda: order.append("a"))
        q.push(30, lambda: order.append("c"))
        while (ev := q.pop()) is not None:
            ev.action()
        assert order == ["a", "b", "c"]

    def test_ties_keep_insertion_order(self):
        q = EventQueue()
        q.push(5, lambda: None, "first")
        q.push(5, lambda: None, "second")
        assert q.pop().label == "first"
        assert q.pop().label == "second"

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        ev = q.push(1, lambda: None, "dead")
        q.push(2, lambda: None, "live")
        ev.cancel()
        assert q.pop().label == "live"

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        ev = q.push(1, lambda: None)
        q.push(2, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        ev = q.push(7, lambda: None)
        assert q.peek_time() == 7
        ev.cancel()
        assert q.peek_time() is None

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(1, lambda: None)
        assert q


class TestEngine:
    def test_clock_advances(self):
        eng = Engine()
        seen = []
        eng.schedule_at(100, lambda: seen.append(eng.now_us))
        eng.schedule_at(50, lambda: seen.append(eng.now_us))
        final = eng.run()
        assert seen == [50, 100]
        assert final == 100

    def test_schedule_in_relative(self):
        eng = Engine()
        seen = []
        eng.schedule_in(10, lambda: eng.schedule_in(5, lambda: seen.append(eng.now_us)))
        eng.run()
        assert seen == [15]

    def test_schedule_in_past_rejected(self):
        eng = Engine()
        eng.schedule_at(100, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_at(50, lambda: None)

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule_in(-1, lambda: None)

    def test_livelock_guard(self):
        eng = Engine(max_events=100)

        def rearm():
            eng.schedule_in(0, rearm)

        eng.schedule_in(0, rearm)
        with pytest.raises(LivelockError):
            eng.run()

    def test_max_time_guard(self):
        eng = Engine(max_time_us=1_000)
        eng.schedule_at(2_000, lambda: None)
        with pytest.raises(LivelockError):
            eng.run()

    def test_step(self):
        eng = Engine()
        seen = []
        eng.schedule_at(5, lambda: seen.append(1))
        assert eng.step() is True
        assert eng.step() is False
        assert seen == [1]

    def test_events_executed_counter(self):
        eng = Engine()
        for t in range(5):
            eng.schedule_at(t, lambda: None)
        eng.run()
        assert eng.events_executed == 5

    def test_cancel_during_run(self):
        eng = Engine()
        seen = []
        later = eng.schedule_at(10, lambda: seen.append("late"))
        eng.schedule_at(5, later.cancel)
        eng.run()
        assert seen == []

    def test_same_time_cascade(self):
        """Events scheduled for 'now' during an event run in order."""
        eng = Engine()
        seen = []
        def first():
            seen.append("first")
            eng.schedule_in(0, lambda: seen.append("nested"))
        eng.schedule_at(1, first)
        eng.schedule_at(1, lambda: seen.append("second"))
        eng.run()
        assert seen == ["first", "second", "nested"]
