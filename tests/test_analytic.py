"""The analytic prediction tier: stats, models, calibration, tiering.

The load-bearing properties, tested end to end:

* **bracketing** — calibrated ``[lo, hi]`` intervals contain the DES
  makespan for every suite workload across the cpus x binding x
  scheduler grid (the soundness premise of the whole tier);
* **decision parity** — ``tier=auto`` reaches decisions identical to
  full simulation while replaying only the escalated subset, and
  ``tier=analytic`` agrees too on the calibrated workloads;
* **content addressing** — analytic answers re-key when the profile
  (margins) changes, exactly like sim jobs re-key on engine changes.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import SimConfig
from repro.core.errors import CalibrationError
from repro.jobs import JobEngine, ResultCache, SweepManifest
from repro.jobs.manifest import run_manifest
from repro.jobs.model import AnalyticJob, SimJob, TraceRef
from repro.jobs.tiering import TierCell, decide, escalation_labels
from repro.program.uniexec import record_program
from repro.recorder import logfile
from repro.workloads import get_workload

from repro.analytic import (
    AnalyticProfile,
    MODEL_NAMES,
    TraceStats,
    calibrate_analytic,
    default_analytic_suite,
    estimate_makespan,
    extract_stats,
    margin_key_for,
    model_points,
    trace_class,
    verify_profile,
)

from tests.conftest import make_fig2_program


# ---------------------------------------------------------------------------
# shared fixtures: one inline engine + one calibration for the module
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def engine():
    eng = JobEngine(mode="inline", cache=ResultCache(None))
    yield eng
    eng.close()


@pytest.fixture(scope="module")
def profile(engine):
    return calibrate_analytic(engine=engine)


@pytest.fixture(scope="module")
def synthetic_trace():
    spec = default_analytic_suite()[0]  # synthetic, 8 threads
    program = get_workload(spec.name).make_program(
        spec.threads, spec.scale, seed=spec.seed
    )
    return record_program(program, overhead_us=spec.probe_overhead_us).trace


@pytest.fixture(scope="module")
def synthetic_stats(synthetic_trace):
    return extract_stats(synthetic_trace)


@pytest.fixture(scope="module")
def grid_manifest(synthetic_trace, tmp_path_factory):
    log = tmp_path_factory.mktemp("analytic") / "synthetic.log"
    logfile.dump(synthetic_trace, log)
    return SweepManifest.from_dict(
        {
            "trace": str(log),
            "cpus": [1, 2, 4, 8],
            "bindings": ["unbound", "bound"],
            "schedulers": ["solaris", "cfs"],
        }
    )


# ---------------------------------------------------------------------------
# TraceStats extraction
# ---------------------------------------------------------------------------


class TestTraceStats:
    def test_decomposition_totals(self, synthetic_trace, synthetic_stats):
        s = synthetic_stats
        assert s.n_threads == len(synthetic_trace.thread_ids())
        assert s.n_events == len(synthetic_trace)
        assert s.duration_us == synthetic_trace.duration_us
        assert s.compute_us > 0
        assert s.busy_us == s.compute_us + s.sync_us + s.io_us + s.overhead_us
        assert s.compute_us == sum(t.compute_us for t in s.threads)
        assert 0 <= s.span_us <= s.compute_us
        assert 0 <= s.serial_us <= s.duration_us
        assert 0.0 <= s.compute_ratio <= 1.0

    def test_fork_join_counts(self):
        trace = record_program(make_fig2_program()).trace
        s = extract_stats(trace)
        assert s.forks == 2
        assert s.joins == 2
        assert s.n_threads == 3
        assert s.locks == ()  # fig2 has no lock objects

    def test_roundtrip_and_fingerprint(self, synthetic_stats):
        clone = TraceStats.from_dict(synthetic_stats.to_dict())
        assert clone == synthetic_stats
        assert clone.fingerprint() == synthetic_stats.fingerprint()
        other = extract_stats(record_program(make_fig2_program()).trace)
        assert other.fingerprint() != synthetic_stats.fingerprint()

    def test_lock_profiles_ordered_and_sane(self, synthetic_stats):
        names = [(l.kind, l.name) for l in synthetic_stats.locks]
        assert names == sorted(names)
        for lock in synthetic_stats.locks:
            assert lock.acquisitions >= lock.contended >= 0
            assert lock.held_us >= lock.max_held_us >= 0


# ---------------------------------------------------------------------------
# closed-form models + margin keys
# ---------------------------------------------------------------------------


class TestModels:
    def test_margin_key_chain_most_specific_first(self, synthetic_stats):
        config = SimConfig(cpus=4, scheduler="cfs")
        keys = margin_key_for(synthetic_stats, config)
        cls = trace_class(synthetic_stats)
        assert keys[0] == f"{cls}/cfs/unbound/4cpu"
        assert keys[-1] == "default"
        assert len(keys) == len(set(keys)) == 6

    def test_trace_class_buckets(self, synthetic_stats):
        fig2 = extract_stats(record_program(make_fig2_program()).trace)
        assert trace_class(fig2) == "lock-free"
        assert trace_class(synthetic_stats) in (
            "lock-free", "lock-light", "lock-heavy",
        )

    def test_model_points_positive(self, synthetic_stats):
        points = model_points(synthetic_stats, SimConfig(cpus=4))
        assert set(points) == set(MODEL_NAMES)
        assert all(p > 0 for p in points.values())

    def test_estimate_interval_contains_point(self, synthetic_stats, profile):
        for cpus in (1, 2, 8):
            interval = estimate_makespan(
                synthetic_stats, SimConfig(cpus=cpus), profile
            )
            assert 0 < interval.lo_us <= interval.point_us <= interval.hi_us
            assert interval.brackets(interval.point_us)
            assert not interval.brackets(interval.hi_us + 1)


# ---------------------------------------------------------------------------
# calibration artifact + the bracketing property
# ---------------------------------------------------------------------------


class TestCalibration:
    def test_intervals_bracket_des_on_entire_suite(self, profile, engine):
        # the property behind the tier: every suite workload, every
        # cpus x binding x scheduler cell, DES inside [lo, hi]
        assert verify_profile(profile, engine=engine) == []

    def test_committed_profile_is_sound(self, engine):
        from repro.analytic.profile import default_profile_path

        path = default_profile_path()
        if path is None:
            pytest.skip("no committed profiles/analytic.json")
        committed = AnalyticProfile.load(path)
        assert verify_profile(committed, engine=engine) == []

    def test_profile_roundtrip(self, profile, tmp_path):
        saved = profile.save(tmp_path / "analytic.json")
        loaded = AnalyticProfile.load(saved)
        assert loaded.to_dict() == profile.to_dict()
        assert loaded.fingerprint() == profile.fingerprint()

    def test_fingerprint_tracks_content(self, profile):
        data = profile.to_dict()
        data["pad"] = 0.5
        assert AnalyticProfile.from_dict(data).fingerprint() != profile.fingerprint()

    def test_bad_profiles_rejected(self, profile):
        data = profile.to_dict()
        del data["margins"]["default"]
        with pytest.raises(CalibrationError):
            AnalyticProfile.from_dict(data)
        with pytest.raises(CalibrationError):
            calibrate_analytic(pad=-0.1)


# ---------------------------------------------------------------------------
# tiering policy units
# ---------------------------------------------------------------------------


def _cell(label, cpus, lo, hi, *, group="g", exact=False):
    point = (lo + hi) // 2
    return TierCell(
        label=label, group=group, cpus=cpus,
        lo_us=lo, hi_us=hi, point_us=point, exact=exact,
    )


class TestTieringPolicy:
    def test_clear_loser_stays_analytic(self):
        cells = [
            _cell("2cpu", 2, 480, 520),   # speedup <= 2.08
            _cell("8cpu", 8, 120, 130),   # speedup >= 7.7: sole contender
        ]
        escalated = escalation_labels(cells, 1000)
        assert "8cpu" in escalated
        # 2cpu is below every knee threshold too? its hi_sp 2.08 vs
        # knee_lo 0.8*(1000/130)=6.15 -> decidedly below, stays analytic
        assert "2cpu" not in escalated

    def test_overlapping_contenders_both_escalate(self):
        cells = [_cell("a", 4, 200, 300), _cell("b", 8, 250, 350)]
        assert set(escalation_labels(cells, 1000)) == {"a", "b"}

    def test_exact_cells_never_escalate(self):
        cells = [_cell("a", 4, 250, 250, exact=True), _cell("b", 8, 200, 300)]
        assert escalation_labels(cells, 1000) == ["b"]

    def test_unusable_baseline_escalates_everything(self):
        cells = [_cell("a", 2, 400, 500), _cell("b", 4, 200, 300, exact=True)]
        assert escalation_labels(cells, 0) == ["a"]

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            escalation_labels([_cell("a", 2, 1, 2)], 10, target_fraction=1.5)

    def test_decide_best_and_knee(self):
        cells = [
            _cell("1cpu", 1, 1000, 1000, exact=True),
            _cell("2cpu", 2, 520, 540),
            _cell("4cpu", 4, 260, 280, exact=True),
        ]
        decisions = decide(cells, 1000)
        assert decisions["best"] == "4cpu"
        # 2cpu's point speedup ~1.89 >= 0.8 * best (~2.96) ? 2.37 -> no;
        # knee is the smallest cpus reaching the threshold: 4
        assert decisions["knees"] == {"g": 4}
        assert decide(cells, None) == {}
        assert decide([], 1000) == {}


# ---------------------------------------------------------------------------
# tier equivalence on a real grid (the subsystem's contract)
# ---------------------------------------------------------------------------


class TestTierEquivalence:
    @pytest.fixture(scope="class")
    def reports(self, grid_manifest, profile, engine):
        sim = run_manifest(grid_manifest, engine, tier="sim")
        auto = run_manifest(
            grid_manifest, engine, tier="auto", analytic_profile=profile
        )
        analytic = run_manifest(
            grid_manifest, engine, tier="analytic", analytic_profile=profile
        )
        return sim, auto, analytic

    def test_decisions_identical_across_tiers(self, reports):
        sim, auto, analytic = reports
        assert sim.decisions  # non-trivial grid
        assert auto.decisions == sim.decisions
        # analytic-only: same best cell and knees; best_speedup is the
        # model's point estimate, so only the *labels* are guaranteed
        assert analytic.decisions["best"] == sim.decisions["best"]
        assert analytic.decisions["knees"] == sim.decisions["knees"]

    def test_escalated_cells_match_simulation_exactly(self, reports):
        sim, auto, _ = reports
        sim_by_label = {s.label: s for s in sim.scenarios}
        for s in auto.scenarios:
            if s.tier == "escalated":
                assert s.outcome.makespan_us == sim_by_label[s.label].outcome.makespan_us

    def test_intervals_bracket_simulated_makespans(self, reports):
        sim, auto, _ = reports
        sim_by_label = {s.label: s for s in sim.scenarios}
        for s in auto.scenarios:
            assert s.interval is not None
            lo, hi = s.interval
            assert lo <= sim_by_label[s.label].outcome.makespan_us <= hi

    def test_escalation_stays_under_the_budget(self, reports):
        _, auto, _ = reports
        escalated = sum(1 for s in auto.scenarios if s.tier == "escalated")
        assert escalated / len(auto.scenarios) <= 0.30

    def test_auto_is_deterministic(self, grid_manifest, profile, engine, reports):
        _, auto, _ = reports
        again = run_manifest(
            grid_manifest, engine, tier="auto", analytic_profile=profile
        )
        assert [s.tier for s in again.scenarios] == [s.tier for s in auto.scenarios]
        assert again.decisions == auto.decisions

    def test_report_surfaces_tier_column_and_footer(self, reports):
        _, auto, _ = reports
        table = auto.format_table()
        assert "tier" in table.splitlines()[1]
        assert "answered analytically" in table
        assert "decisions: best" in table
        payload = json.loads(auto.to_json())
        assert payload["tier"] == "auto"
        assert payload["decisions"] == auto.decisions
        assert all("tier" in s for s in payload["scenarios"])

    def test_tier_validation(self, grid_manifest, engine, profile):
        from repro.core.errors import AnalysisError

        with pytest.raises(AnalysisError, match="unknown tier"):
            run_manifest(grid_manifest, engine, tier="psychic")
        with pytest.raises(AnalysisError, match="analytic profile"):
            run_manifest(grid_manifest, engine, tier="auto")


# ---------------------------------------------------------------------------
# analytic jobs through the engine (content addressing + metrics)
# ---------------------------------------------------------------------------


class TestAnalyticJobs:
    def test_fingerprint_rekeys_on_profile_change(self, synthetic_trace, profile):
        ref = TraceRef.from_trace(synthetic_trace)
        config = SimConfig(cpus=4)
        job = AnalyticJob.for_trace(synthetic_trace, config, profile)
        data = profile.to_dict()
        data["pad"] = 0.5
        recalibrated = AnalyticProfile.from_dict(data)
        rekeyed = AnalyticJob(trace=ref, config=config, profile=recalibrated)
        assert job.fingerprint != rekeyed.fingerprint
        assert job.fingerprint != SimJob(trace=ref, config=config).fingerprint

    def test_engine_answers_with_interval_payload(self, synthetic_trace, profile):
        eng = JobEngine(mode="inline", cache=ResultCache(None))
        try:
            jobs = [
                AnalyticJob.for_trace(
                    synthetic_trace, SimConfig(cpus=n), profile, label=f"{n}cpu"
                )
                for n in (2, 4)
            ]
            first, second = eng.run(jobs)
            for outcome in (first, second):
                assert outcome.ok and outcome.complete
                assert outcome.payload["kind"] == "analytic"
                lo, hi = outcome.payload["lo_us"], outcome.payload["hi_us"]
                assert lo <= outcome.makespan_us <= hi
                assert outcome.engine_events == 0
            # the second job reuses the worker's extracted-stats cache
            assert second.plan_cache_hits == 1
            assert eng.metrics.snapshot()["analytic_jobs"] == 2
        finally:
            eng.close()


# ---------------------------------------------------------------------------
# service + CLI surfaces
# ---------------------------------------------------------------------------


class TestServiceTier:
    @pytest.fixture()
    def service(self, profile):
        from repro.jobs.service import PredictionService

        eng = JobEngine(mode="inline", cache=ResultCache(None))
        svc = PredictionService(eng)
        svc._analytic_profile = profile  # skip disk resolution
        yield svc
        eng.close()

    def test_auto_matches_sim_decisions(self, service, synthetic_trace):
        log = logfile.dumps(synthetic_trace)
        sim = service.predict({"log": log, "cpus": [2, 4, 8]})
        auto = service.predict({"log": log, "cpus": [2, 4, 8], "tier": "auto"})
        assert auto["tier"] == "auto"
        best = max(sim["predictions"], key=lambda p: p["speedup"])
        assert auto["decisions"]["best"] == f"{best['cpus']}cpu"
        tiers = {p["cpus"]: p["tier"] for p in auto["predictions"]}
        assert set(tiers.values()) <= {"analytic", "escalated"}
        for p in auto["predictions"]:
            lo, hi = p["interval"]
            sim_p = next(s for s in sim["predictions"] if s["cpus"] == p["cpus"])
            assert lo <= sim_p["makespan_us"] <= hi
        snapshot = service.engine.snapshot()
        assert snapshot["analytic_hits"] + snapshot["escalations"] == 3

    def test_bad_tier_and_target_rejected(self, service, synthetic_trace):
        from repro.jobs.service import ServiceError

        log = logfile.dumps(synthetic_trace)
        with pytest.raises(ServiceError) as err:
            service.predict({"log": log, "tier": "psychic"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            service.predict({"log": log, "tier": "auto", "target": 7})
        assert err.value.status == 400

    def test_missing_profile_is_a_client_error(self, service, synthetic_trace):
        from repro.jobs.service import ServiceError

        service._analytic_profile = None
        with pytest.raises(ServiceError) as err:
            service.predict(
                {"log": logfile.dumps(synthetic_trace), "tier": "analytic"}
            )
        assert err.value.status == 400
        assert "calibrate-analytic" in err.value.message


class TestCLI:
    def test_stats_json_dumps_trace_stats(self, synthetic_trace, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "t.log"
        logfile.dump(synthetic_trace, log)
        assert main(["stats", str(log), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_threads"] == len(synthetic_trace.thread_ids())
        assert payload["stats_version"] >= 1

    def test_batch_tier_auto(self, synthetic_trace, profile, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "t.log"
        logfile.dump(synthetic_trace, log)
        (tmp_path / "sweep.json").write_text(
            json.dumps({"trace": str(log), "cpus": [1, 4]})
        )
        profile_path = profile.save(tmp_path / "analytic.json")
        code = main(
            [
                "batch", str(tmp_path / "sweep.json"), "--inline", "--no-cache",
                "--tier", "auto", "--analytic-profile", str(profile_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "tier" in out and "decisions: best" in out

    def test_batch_unknown_manifest_key_names_it(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "sweep.json").write_text(
            json.dumps({"trace": "x.log", "scheduler": ["solaris"]})
        )
        assert main(["batch", str(tmp_path / "sweep.json")]) == 2
        err = capsys.readouterr().err
        assert "scheduler" in err and "did you mean 'schedulers'" in err
