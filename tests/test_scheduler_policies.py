"""Tests of the §3.2 scheduling knobs: LWPs, binding, priorities, delays."""

import pytest

from repro import Program, SimConfig, ThreadPolicy, simulate_program
from repro.core.errors import ConfigError
from repro.core.result import SegmentKind
from repro.program import ops as op
from repro.solaris import costs as costs_mod
from repro.solaris.dispatch import DispatchTable

FREE = costs_mod.free()


def spawn_n_workers(n, body, join=True, **create_kw):
    def main(ctx):
        tids = []
        for i in range(n):
            tids.append((yield op.ThrCreate(body, **create_kw)))
        if join:
            for t in tids:
                yield op.ThrJoin(t)

    return main


def runnable_time(result, tid):
    return sum(
        s.duration_us
        for s in result.segments.get(tid, [])
        if s.kind is SegmentKind.RUNNABLE
    )


def running_time(result, tid):
    return sum(
        s.duration_us
        for s in result.segments.get(tid, [])
        if s.kind is SegmentKind.RUNNING
    )


class TestCpuScaling:
    @pytest.mark.parametrize("cpus,expected", [(1, 4000), (2, 2000), (4, 1000)])
    def test_embarrassingly_parallel(self, cpus, expected):
        def w(ctx):
            yield op.Compute(1000)

        res = simulate_program(
            Program("p", spawn_n_workers(4, w)), SimConfig(cpus=cpus, costs=FREE)
        )
        assert res.makespan_us == expected

    def test_more_cpus_than_threads(self):
        def w(ctx):
            yield op.Compute(1000)

        res = simulate_program(
            Program("p", spawn_n_workers(2, w)), SimConfig(cpus=8, costs=FREE)
        )
        assert res.makespan_us == 1000

    def test_cpu_busy_accounting(self):
        def w(ctx):
            yield op.Compute(1000)

        res = simulate_program(
            Program("p", spawn_n_workers(4, w)), SimConfig(cpus=2, costs=FREE)
        )
        assert res.total_cpu_time_us() == 4000
        assert res.utilisation() == pytest.approx(1.0)


class TestLwpLimits:
    def test_single_lwp_serialises(self):
        def w(ctx):
            yield op.Compute(1000)

        res = simulate_program(
            Program("p", spawn_n_workers(4, w)),
            SimConfig(cpus=4, lwps=1, costs=FREE),
        )
        assert res.makespan_us == 4000

    def test_two_lwps_on_four_cpus(self):
        def w(ctx):
            yield op.Compute(1000)

        res = simulate_program(
            Program("p", spawn_n_workers(4, w)),
            SimConfig(cpus=4, lwps=2, costs=FREE),
        )
        assert res.makespan_us == 2000

    def test_runnable_without_lwp_shown_grey(self):
        # §3.3: "a grey line [means] the thread is ready to run but does
        # not have any LWP or CPU to run on"
        def w(ctx):
            yield op.Compute(1000)

        res = simulate_program(
            Program("p", spawn_n_workers(2, w)),
            SimConfig(cpus=2, lwps=1, costs=FREE),
        )
        waits = [runnable_time(res, tid) for tid in res.summaries if int(tid) != 1]
        assert sorted(waits) == [0, 1000]

    def test_setconcurrency_honoured_without_lwp_override(self):
        def main(ctx):
            yield op.ThrSetConcurrency(4)
            yield op.Compute(1)

        simulate_program(Program("p", main), SimConfig(costs=FREE))

    def test_bound_thread_gets_lwp_beyond_pool(self):
        # one pool LWP, but the bound thread brings its own
        def w(ctx):
            yield op.Compute(1000)

        def main(ctx):
            a = yield op.ThrCreate(w)
            b = yield op.ThrCreate(w, bound=True)
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)

        res = simulate_program(
            Program("p", main), SimConfig(cpus=2, lwps=1, costs=FREE)
        )
        assert res.makespan_us == 1000


class TestBinding:
    def test_cpu_bound_threads_serialise_on_their_cpu(self):
        def w(ctx):
            yield op.Compute(1000)

        def main(ctx):
            a = yield op.ThrCreate(w, cpu=0)
            b = yield op.ThrCreate(w, cpu=0)
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)

        res = simulate_program(Program("p", main), SimConfig(cpus=4, costs=FREE))
        assert res.makespan_us == 2000
        cpus_used = {
            s.cpu
            for tid in res.segments
            for s in res.segments[tid]
            if s.kind is SegmentKind.RUNNING and int(tid) != 1
        }
        assert cpus_used == {0}

    def test_policy_binding_overrides_program(self):
        # §3.2: each thread can individually be bound to a certain CPU
        def w(ctx):
            yield op.Compute(1000)

        config = SimConfig(
            cpus=4,
            costs=FREE,
            thread_policies={4: ThreadPolicy(cpu=1), 5: ThreadPolicy(cpu=1)},
        )
        res = simulate_program(Program("p", spawn_n_workers(2, w)), config)
        assert res.makespan_us == 2000

    def test_policy_cpu_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(cpus=2, thread_policies={4: ThreadPolicy(cpu=5)})

    def test_bound_create_costs_more(self):
        # §3.2: bound creation is 6.7x unbound
        def w(ctx):
            yield op.Compute(10)

        def main_unbound(ctx):
            t = yield op.ThrCreate(w)
            yield op.ThrJoin(t)

        def main_bound(ctx):
            t = yield op.ThrCreate(w, bound=True)
            yield op.ThrJoin(t)

        cfg = SimConfig(cpus=1)
        r_unbound = simulate_program(Program("u", main_unbound), cfg)
        r_bound = simulate_program(Program("b", main_bound), cfg)
        base = cfg.costs.op_cost(op.ThrCreate(w).primitive)
        assert (
            r_bound.makespan_us - r_unbound.makespan_us
            == round(base * 6.7) - base
        )


class TestPriorities:
    def test_higher_user_priority_gets_lwp_first(self):
        # one LWP, a high- and a low-priority thread runnable: the high
        # one runs first
        order = []

        def w(ctx):
            order.append(int(ctx.tid))
            yield op.Compute(100)

        def main(ctx):
            lo = yield op.ThrCreate(w, priority=1)
            hi = yield op.ThrCreate(w, priority=10)
            yield op.ThrJoin(lo)
            yield op.ThrJoin(hi)

        simulate_program(Program("p", main), SimConfig(cpus=1, lwps=1, costs=FREE))
        assert order == [5, 4]  # hi (T5) before lo (T4)

    def test_thr_setprio_changes_priority(self):
        order = []

        def w(ctx):
            order.append(int(ctx.tid))
            yield op.Compute(100)

        def main(ctx):
            yield op.ThrSetPrio(5)
            lo = yield op.ThrCreate(w, priority=1)
            hi = yield op.ThrCreate(w, priority=3)
            yield op.ThrJoin(lo)
            yield op.ThrJoin(hi)

        simulate_program(Program("p", main), SimConfig(cpus=1, lwps=1, costs=FREE))
        assert order == [5, 4]

    def test_policy_priority_override_locks_setprio(self):
        # §3.2: a configured priority makes the thread's thr_setprio
        # events ignored
        order = []

        def w(ctx):
            yield op.ThrSetPrio(100)  # ignored: policy locked it to 1
            order.append(int(ctx.tid))
            yield op.Compute(100)

        def main(ctx):
            a = yield op.ThrCreate(w)  # locked low
            b = yield op.ThrCreate(w, priority=10)
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)

        config = SimConfig(
            cpus=1, lwps=1, costs=FREE, thread_policies={4: ThreadPolicy(priority=1)}
        )
        simulate_program(Program("p", main), config)
        assert order[0] == 5


class TestCommDelay:
    def _pingpong(self):
        def waiter(ctx):
            yield op.SemaWait("go")
            yield op.Compute(100)

        def main(ctx):
            t = yield op.ThrCreate(waiter)
            yield op.Compute(1000)
            yield op.SemaPost("go")
            yield op.ThrJoin(t)

        return Program("p", main)

    def test_cross_cpu_wake_pays_delay(self):
        # waiter last ran on another CPU: its wake-up crosses CPUs
        no_delay = simulate_program(
            self._pingpong(), SimConfig(cpus=2, costs=FREE, comm_delay_us=0)
        )
        delayed = simulate_program(
            self._pingpong(), SimConfig(cpus=2, costs=FREE, comm_delay_us=50)
        )
        assert delayed.makespan_us >= no_delay.makespan_us + 50

    def test_same_cpu_wake_free(self):
        uni_no = simulate_program(
            self._pingpong(), SimConfig(cpus=1, costs=FREE, comm_delay_us=0)
        )
        uni_delay = simulate_program(
            self._pingpong(), SimConfig(cpus=1, costs=FREE, comm_delay_us=50)
        )
        assert uni_no.makespan_us == uni_delay.makespan_us

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(comm_delay_us=-1)


class TestTimeSlicing:
    def test_quantum_round_robin(self):
        # 2 CPU-bound threads, 1 CPU, small fixed quantum: they interleave
        def w(ctx):
            yield op.Compute(30_000)

        config = SimConfig(
            cpus=1,
            costs=FREE,
            dispatch=DispatchTable.fixed_quantum(10_000),
        )
        res = simulate_program(Program("p", spawn_n_workers(2, w)), config)
        assert res.makespan_us == 60_000
        # both threads finish near the end (interleaved), not one at 30k
        ends = sorted(
            res.summaries[tid].end_us for tid in res.summaries if int(tid) != 1
        )
        assert ends[0] > 45_000

    def test_no_time_slicing_runs_to_completion(self):
        def w(ctx):
            yield op.Compute(30_000)

        config = SimConfig(cpus=1, costs=FREE, time_slicing=False)
        res = simulate_program(Program("p", spawn_n_workers(2, w)), config)
        ends = sorted(
            res.summaries[tid].end_us for tid in res.summaries if int(tid) != 1
        )
        assert ends == [30_000, 60_000]

    def test_yield_interleaves(self):
        order = []

        def w(ctx):
            for i in range(3):
                order.append((int(ctx.tid), i))
                yield op.Compute(10)
                yield op.ThrYield()

        res = simulate_program(
            Program("p", spawn_n_workers(2, w)),
            SimConfig(cpus=1, lwps=1, costs=FREE),
        )
        # with yields the two workers alternate rounds
        tids = [t for t, _ in order]
        assert tids[:4] == [4, 5, 4, 5]


class TestConfigValidation:
    def test_zero_cpus_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(cpus=0)

    def test_zero_lwps_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(lwps=0)

    def test_with_cpus_copy(self):
        cfg = SimConfig(cpus=2, comm_delay_us=7)
        cfg8 = cfg.with_cpus(8)
        assert cfg8.cpus == 8 and cfg8.comm_delay_us == 7
        assert cfg.cpus == 2

    def test_with_policy_copy(self):
        cfg = SimConfig(cpus=4)
        cfg2 = cfg.with_policy(4, ThreadPolicy(bound=True))
        assert cfg2.policy_for(4).bound is True
        assert cfg.policy_for(4).bound is None

    def test_describe_mentions_knobs(self):
        text = SimConfig(cpus=8, lwps=3, comm_delay_us=10).describe()
        assert "8 CPU" in text and "LWPs=3" in text and "comm-delay" in text
