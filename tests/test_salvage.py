"""Salvage pipeline tests: strict rejection vs lenient repair.

A table of damaged-log fixtures drives both modes: strict loading must
fail with a precise, located error (or succeed when the damage is
structural only), and lenient loading must always produce a trace plus
a report enumerating exactly the repairs the damage calls for.
"""

import pytest

from repro.core.errors import LogFormatError, TraceError
from repro.recorder import logfile
from repro.recorder.salvage import salvage_load, salvage_loads

# A minimal, fully valid log: main creates T4, T4 takes a mutex, exits,
# main joins and exits.  Every fixture below is a mutation of this.
GOOD = """\
# vppb-log 1
# program: tiny
0.000000 T1 call start_collect
0.000010 T1 call thr_create
0.000020 T1 ret thr_create target=T4 status=ok
0.000030 T4 call thread_start
0.000040 T4 call mutex_lock obj=mutex:m
0.000050 T4 ret mutex_lock obj=mutex:m status=ok
0.000060 T4 call mutex_unlock obj=mutex:m
0.000070 T4 ret mutex_unlock obj=mutex:m status=ok
0.000080 T4 call thr_exit
0.000090 T1 call thr_join target=T4
0.000100 T1 ret thr_join target=T4 status=ok
0.000110 T1 call thr_exit
0.000120 T1 call end_collect
"""


def _replace_line(text: str, needle: str, replacement: str) -> str:
    assert needle in text, f"fixture bug: {needle!r} not in base log"
    return text.replace(needle, replacement)


def _drop_line(text: str, needle: str) -> str:
    return _replace_line(text, needle + "\n", "")


# Each row: (name, text, strict_fails, expected repair kinds in lenient
# mode, minimum records kept after salvage).  ``strict_fails`` is None
# when strict loading should still succeed (damage is replay-level, or
# no damage at all).
FIXTURES = [
    (
        "pristine",
        GOOD,
        None,
        set(),
        13,
    ),
    (
        "header-only",
        "# vppb-log 1\n# program: tiny\n",
        None,
        set(),
        0,
    ),
    (
        "partial-last-line",
        GOOD[:-1][: len(GOOD) - 10],
        LogFormatError,
        {"dropped-partial-last-line"},
        12,
    ),
    (
        "empty-file",
        "",
        LogFormatError,
        {"missing-version-header"},
        0,
    ),
    (
        "missing-version-header",
        "\n".join(GOOD.splitlines()[1:]) + "\n",
        LogFormatError,
        {"missing-version-header"},
        13,
    ),
    (
        "duplicate-version-header",
        GOOD.replace("# program: tiny", "# program: tiny\n# vppb-log 1"),
        None,
        {"duplicate-header"},
        13,
    ),
    (
        "mangled-timestamp",
        _replace_line(GOOD, "0.000040 T4", "not-a-time T4"),
        LogFormatError,
        {"dropped-unparsable-line", "dropped-orphan-return"},
        11,
    ),
    (
        "negative-timestamp",
        _replace_line(GOOD, "0.000040 T4", "-5.000000 T4"),
        LogFormatError,
        {"clamped-negative-timestamp", "clamped-timestamp"},
        13,
    ),
    (
        "out-of-order-timestamp",
        _replace_line(GOOD, "0.000050 T4 ret", "0.000001 T4 ret"),
        TraceError,
        {"clamped-timestamp"},
        13,
    ),
    (
        "mangled-tid",
        _replace_line(GOOD, "0.000040 T4 call", "0.000040 X9 call"),
        LogFormatError,
        {"dropped-unparsable-line", "dropped-orphan-return"},
        11,
    ),
    (
        "unknown-primitive",
        _replace_line(GOOD, "call mutex_lock obj=mutex:m", "call warp_drive obj=mutex:m"),
        LogFormatError,
        {"dropped-unparsable-line", "dropped-orphan-return"},
        11,
    ),
    (
        "unknown-attribute",
        _replace_line(
            GOOD, "0.000050 T4 ret mutex_lock obj=mutex:m status=ok",
            "0.000050 T4 ret mutex_lock obj=mutex:m status=ok colour=red",
        ),
        LogFormatError,
        {"skipped-attribute"},
        13,
    ),
    (
        "bad-attribute-value",
        _replace_line(GOOD, "target=T4 status=ok\n0.000030", "target=banana status=ok\n0.000030"),
        LogFormatError,
        {"skipped-attribute", "dropped-unreplayable-create",
         "dropped-orphan-thread", "dropped-orphan-join"},
        3,
    ),
    (
        "missing-return",
        _drop_line(GOOD, "0.000050 T4 ret mutex_lock obj=mutex:m status=ok"),
        TraceError,
        {"synthesized-return"},
        13,
    ),
    (
        "orphan-return",
        _replace_line(
            GOOD, "0.000030 T4 call thread_start",
            "0.000030 T4 call thread_start\n0.000035 T4 ret sema_wait obj=sema:s status=ok",
        ),
        TraceError,
        {"dropped-orphan-return"},
        13,
    ),
    (
        "mismatched-return",
        _replace_line(
            GOOD, "0.000050 T4 ret mutex_lock obj=mutex:m status=ok",
            "0.000050 T4 ret sema_wait obj=sema:s status=ok",
        ),
        TraceError,
        {"dropped-mismatched-return", "synthesized-return"},
        13,
    ),
    (
        "duplicate-call",
        _replace_line(
            GOOD, "0.000040 T4 call mutex_lock obj=mutex:m",
            "0.000040 T4 call mutex_lock obj=mutex:m\n"
            "0.000040 T4 call mutex_lock obj=mutex:m",
        ),
        TraceError,
        {"dropped-duplicate-call"},
        13,
    ),
    (
        "record-after-exit",
        _replace_line(
            GOOD, "0.000090 T1 call thr_join",
            "0.000085 T4 call mutex_lock obj=mutex:m\n0.000090 T1 call thr_join",
        ),
        None,
        {"dropped-after-exit"},
        13,
    ),
    (
        "orphan-thread",
        _replace_line(
            GOOD, "0.000090 T1 call thr_join",
            "0.000082 T9 call mutex_lock obj=mutex:m\n"
            "0.000084 T9 ret mutex_lock obj=mutex:m status=ok\n"
            "0.000090 T1 call thr_join",
        ),
        TraceError,
        {"dropped-orphan-thread"},
        13,
    ),
    (
        "create-ret-missing-target",
        _replace_line(
            GOOD, "0.000020 T1 ret thr_create target=T4 status=ok",
            "0.000020 T1 ret thr_create status=ok",
        ),
        TraceError,
        {"dropped-unreplayable-create", "dropped-orphan-thread",
         "dropped-orphan-join"},
        3,
    ),
    (
        "create-target-recovered-from-call",
        _replace_line(
            _replace_line(
                GOOD, "0.000010 T1 call thr_create",
                "0.000010 T1 call thr_create target=T4",
            ),
            "0.000020 T1 ret thr_create target=T4 status=ok",
            "0.000020 T1 ret thr_create status=ok",
        ),
        TraceError,
        {"repaired-create-target"},
        13,
    ),
    (
        "child-left-no-records",
        GOOD.split("0.000030 T4")[0]
        + "0.000110 T1 call thr_exit\n0.000120 T1 call end_collect\n",
        None,
        {"dropped-unreplayable-create"},
        3,
    ),
    (
        "join-on-nonexistent-thread",
        _replace_line(
            GOOD, "0.000090 T1 call thr_join target=T4\n"
            "0.000100 T1 ret thr_join target=T4 status=ok",
            "0.000090 T1 call thr_join target=T9\n"
            "0.000100 T1 ret thr_join target=T9 status=ok",
        ),
        None,
        {"dropped-orphan-join"},
        11,
    ),
    (
        "binary-garbage-line",
        _replace_line(
            GOOD, "0.000030 T4 call thread_start",
            "\x00\xff\x7f garbage \x01\n0.000030 T4 call thread_start",
        ),
        LogFormatError,
        {"dropped-unparsable-line"},
        13,
    ),
]

IDS = [row[0] for row in FIXTURES]


class TestStrictMode:
    @pytest.mark.parametrize("name,text,strict_exc,kinds,min_kept", FIXTURES, ids=IDS)
    def test_strict_verdict(self, name, text, strict_exc, kinds, min_kept):
        if strict_exc is None:
            logfile.loads(text, mode="strict")  # must not raise
        else:
            with pytest.raises(strict_exc):
                logfile.loads(text, mode="strict")

    def test_strict_error_is_located(self):
        bad = _replace_line(GOOD, "0.000040 T4 call", "0.000040 X9 call")
        with pytest.raises(LogFormatError) as exc_info:
            logfile.loads(bad, mode="strict", source="tiny.log")
        err = exc_info.value
        assert err.lineno == 7
        assert err.line == "0.000040 X9 call mutex_lock obj=mutex:m"
        assert err.source == "tiny.log"
        assert "tiny.log" in str(err) and "line 7" in str(err)

    def test_strict_error_snippet_has_caret(self):
        bad = _replace_line(GOOD, "0.000040 T4 call", "0.000040 X9 call")
        with pytest.raises(LogFormatError) as exc_info:
            logfile.loads(bad, mode="strict")
        snippet = exc_info.value.snippet()
        line, caret = snippet.splitlines()
        assert line.endswith("0.000040 X9 call mutex_lock obj=mutex:m")
        assert "^" in caret
        assert line[caret.index("^")] == "X"  # caret points at the bad token


class TestLenientMode:
    @pytest.mark.parametrize("name,text,strict_exc,kinds,min_kept", FIXTURES, ids=IDS)
    def test_salvage_repairs(self, name, text, strict_exc, kinds, min_kept):
        result = salvage_loads(text, source=name)
        got = set(result.report.counts_by_kind())
        assert got == kinds
        assert len(result.trace) >= min_kept
        if strict_exc is not None:
            assert not result.report.clean  # damage must never pass silently

    @pytest.mark.parametrize("name,text,strict_exc,kinds,min_kept", FIXTURES, ids=IDS)
    def test_salvaged_trace_revalidates(self, name, text, strict_exc, kinds, min_kept):
        """Whatever salvage produces must round-trip through the strict
        validator (unless a residual inconsistency was reported)."""
        result = salvage_loads(text)
        if "residual-inconsistency" not in result.report.counts_by_kind():
            logfile.loads(logfile.dumps(result.trace), mode="strict")

    def test_loads_lenient_equals_salvage(self):
        bad = _drop_line(GOOD, "0.000050 T4 ret mutex_lock obj=mutex:m status=ok")
        via_loads = logfile.loads(bad, mode="lenient")
        via_salvage = salvage_loads(bad).trace
        assert len(via_loads) == len(via_salvage)
        assert [r.brief() for r in via_loads] == [r.brief() for r in via_salvage]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            logfile.loads(GOOD, mode="optimistic")

    def test_report_lineno_points_at_damage(self):
        bad = _replace_line(GOOD, "0.000040 T4 call", "not-a-time T4 call")
        report = salvage_loads(bad).report
        dropped = [r for r in report.repairs if r.kind == "dropped-unparsable-line"]
        assert len(dropped) == 1
        assert dropped[0].lineno == 7

    def test_report_summary_and_details(self):
        bad = _drop_line(GOOD, "0.000050 T4 ret mutex_lock obj=mutex:m status=ok")
        report = salvage_loads(bad, source="tiny.log").report
        assert "tiny.log" in report.summary()
        assert "repair(s)" in report.summary()
        assert "synthesized-return" in report.details()

    def test_clean_report_on_pristine_input(self):
        report = salvage_loads(GOOD).report
        assert report.clean
        assert "clean" in report.summary()

    def test_salvage_load_reads_from_disk(self, tmp_path):
        path = tmp_path / "damaged.log"
        path.write_text(_drop_line(GOOD, "0.000050 T4 ret mutex_lock obj=mutex:m status=ok"))
        result = salvage_load(path)
        assert result.report.source == str(path)
        assert "synthesized-return" in result.report.counts_by_kind()


class TestTruncationSweep:
    def test_every_prefix_salvages_or_is_empty(self):
        """Cutting the log at any byte offset must never raise."""
        for offset in range(len(GOOD) + 1):
            result = salvage_loads(GOOD[:offset])
            assert result.trace is not None  # never raises, always a trace

    def test_every_prefix_with_damage_reports_it(self):
        """A strict-rejected prefix must salvage with a non-empty report."""
        for offset in range(1, len(GOOD)):
            text = GOOD[:offset]
            try:
                logfile.loads(text, mode="strict")
            except TraceError:
                assert not salvage_loads(text).report.clean, (
                    f"offset {offset}: strict load failed "
                    "but salvage reported nothing"
                )
