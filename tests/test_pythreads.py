"""Tests for the live Python ``threading`` interposer."""

import threading
import time

import pytest

from repro import SimConfig, compile_trace, predict
from repro.core.events import Phase, Primitive, Status
from repro.recorder import PyThreadsRecorder
from repro.recorder.srcmap import AddressMap, capture_call_site


def _spin(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


class TestSrcMap:
    def test_capture_here(self):
        site = capture_call_site(depth=1)
        assert site is not None
        assert site.code.co_filename.endswith("test_pythreads.py")

    def test_resolve_caches(self):
        site = capture_call_site(depth=1)
        amap = AddressMap()
        a = amap.resolve(site)
        b = amap.resolve(site)
        assert a is b
        assert len(amap) == 1

    def test_resolve_none(self):
        assert AddressMap().resolve(None) is None


class TestRecorderBasics:
    def test_thread_lifecycle_recorded(self):
        rec = PyThreadsRecorder("t")

        def worker():
            _spin(0.002)

        t = rec.Thread(target=worker)
        with rec.collecting():
            t.start()
            t.join()
        trace = rec.trace()
        prims = [r.primitive for r in trace]
        assert Primitive.THR_CREATE in prims
        assert Primitive.THREAD_START in prims
        assert Primitive.THR_EXIT in prims
        assert Primitive.THR_JOIN in prims
        assert prims[0] is Primitive.START_COLLECT
        assert prims[-1] is Primitive.END_COLLECT

    def test_main_is_thread_one_children_from_four(self):
        rec = PyThreadsRecorder("t")
        t = rec.Thread(target=lambda: None)
        with rec.collecting():
            t.start()
            t.join()
        tids = {int(r.tid) for r in rec.trace()}
        assert 1 in tids and 4 in tids

    def test_thread_function_names_resolved(self):
        rec = PyThreadsRecorder("t")

        def my_worker():
            pass

        t = rec.Thread(target=my_worker)
        with rec.collecting():
            t.start()
            t.join()
        assert "my_worker" in rec.trace().meta.thread_functions.values()

    def test_events_outside_collection_ignored(self):
        rec = PyThreadsRecorder("t")
        lock = rec.Lock("m")
        with rec.collecting():
            pass
        lock.acquire()
        lock.release()
        assert len(rec.trace()) == 2  # just the collect markers


class TestLock:
    def test_acquire_release_recorded_with_source(self):
        rec = PyThreadsRecorder("t")
        lock = rec.Lock("m")
        with rec.collecting():
            with lock:
                pass
        trace = rec.trace()
        locks = [r for r in trace if r.primitive is Primitive.MUTEX_LOCK]
        unlocks = [r for r in trace if r.primitive is Primitive.MUTEX_UNLOCK]
        assert len(locks) == 2 and len(unlocks) == 2  # call + ret each
        assert locks[0].obj.name == "m"
        assert locks[0].source is not None

    def test_trylock_status(self):
        rec = PyThreadsRecorder("t")
        lock = rec.Lock("m")
        with rec.collecting():
            assert lock.acquire(blocking=False) is True
            assert lock.acquire(blocking=False) is False
            lock.release()
        rets = [
            r
            for r in rec.trace()
            if r.primitive is Primitive.MUTEX_TRYLOCK and r.phase is Phase.RET
        ]
        assert [r.status for r in rets] == [Status.OK, Status.BUSY]


class TestSemaphore:
    def test_init_count_recorded(self):
        rec = PyThreadsRecorder("t")
        with rec.collecting():
            sem = rec.Semaphore(3, "s")
            sem.acquire()
            sem.release()
        inits = [r for r in rec.trace() if r.primitive is Primitive.SEMA_INIT]
        assert inits and inits[0].arg == 3

    def test_wait_post_pairing(self):
        rec = PyThreadsRecorder("t")
        with rec.collecting():
            sem = rec.Semaphore(1, "s")
            sem.acquire()
            sem.release()
        prims = [r.primitive for r in rec.trace()]
        assert Primitive.SEMA_WAIT in prims and Primitive.SEMA_POST in prims


class TestCondition:
    def test_timedwait_timeout_status(self):
        rec = PyThreadsRecorder("t")
        with rec.collecting():
            cond = rec.Condition()
            with cond:
                cond.wait(timeout=0.002)
        rets = [
            r
            for r in rec.trace()
            if r.primitive is Primitive.COND_TIMEDWAIT and r.phase is Phase.RET
        ]
        assert rets and rets[0].status is Status.TIMEOUT

    def test_notify_all_recorded(self):
        rec = PyThreadsRecorder("t")
        cond = rec.Condition()
        done = threading.Event()

        def waiter():
            with cond:
                done.set()
                cond.wait(timeout=2)

        t = rec.Thread(target=waiter)
        with rec.collecting():
            t.start()
            done.wait()
            time.sleep(0.01)
            with cond:
                cond.notify_all()
            t.join()
        prims = [r.primitive for r in rec.trace()]
        assert Primitive.COND_BROADCAST in prims


class TestEndToEnd:
    def test_gil_trace_feeds_the_predictor(self):
        """Record a real GIL-serialised Python program and replay it.

        CPU-demand numbers from a GIL run are approximate (threads'
        wall-clock windows overlap under the 5 ms switch interval — the
        repro-band's "GIL distorts thread timing"), so this asserts the
        structural pipeline: the live trace compiles, replays on a
        multiprocessor model, and never predicts a slowdown.
        """
        rec = PyThreadsRecorder("gil-demo")

        def worker():
            _spin(0.02)

        threads = [rec.Thread(target=worker) for _ in range(2)]
        with rec.collecting():
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        trace = rec.trace()
        plan = compile_trace(trace)
        assert set(plan.steps) >= {1, 4, 5}
        res = predict(trace, SimConfig(cpus=2), plan=plan)
        assert 0 < res.makespan_us <= trace.duration_us * 1.10
        assert len(res.events) > 0

    def test_sleeping_threads_predicted_to_overlap(self):
        """Threads that wait (sleep/IO) release the GIL; their waits are
        genuinely overlappable and the prediction shows it."""
        rec = PyThreadsRecorder("sleepy")

        def worker():
            time.sleep(0.02)

        threads = [rec.Thread(target=worker) for _ in range(3)]
        with rec.collecting():
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        trace = rec.trace()
        res = predict(trace, SimConfig(cpus=4))
        # three 20ms waits overlap on 4 CPUs: well under the 60ms a
        # serial machine would need
        assert res.makespan_us < trace.duration_us * 1.05
        assert res.makespan_us < 45_000

    def test_patched_module_records_unmodified_code(self):
        rec = PyThreadsRecorder("patched")

        def unmodified():
            lock = threading.Lock()
            with lock:
                pass

        with rec.patched(), rec.collecting():
            unmodified()
        prims = [r.primitive for r in rec.trace()]
        assert Primitive.MUTEX_LOCK in prims
        # and the patch is gone afterwards
        assert threading.Lock().__class__.__module__ == "_thread"
