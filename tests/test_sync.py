"""Unit tests for the synchronisation-object semantics, via a fake kernel."""

import pytest

from repro.core.errors import SimulationError
from repro.core.ids import SyncObjectId, ThreadId
from repro.solaris.sync import (
    NO_RESULT,
    SimCondVar,
    SimMutex,
    SimRwLock,
    SimSemaphore,
    SyncObjectTable,
    WaitQueue,
)
from repro.solaris.thread_model import SimThread


class FakeKernel:
    """Records block/wake calls; executes timers only on demand."""

    def __init__(self):
        self.now_us = 0
        self.blocked = []
        self.woken = []
        self.results = {}
        self.timers = []

    def block(self, thread, reason):
        self.blocked.append((int(thread.tid), reason))

    def wake(self, thread, result=NO_RESULT):
        self.woken.append(int(thread.tid))
        if result is not NO_RESULT:
            self.results[int(thread.tid)] = result

    def post_result(self, thread, result):
        self.results[int(thread.tid)] = result

    def arm_timer(self, delay_us, action, label):
        handle = [delay_us, action, label, False]
        self.timers.append(handle)
        return handle

    def cancel_timer(self, handle):
        handle[3] = True


def thr(tid, priority=1):
    return SimThread(tid=ThreadId(tid), priority=priority)


@pytest.fixture
def kernel():
    return FakeKernel()


class TestWaitQueue:
    def test_priority_order(self):
        q = WaitQueue()
        low, high = thr(4, priority=1), thr(5, priority=9)
        q.push(low)
        q.push(high)
        assert q.pop() is high
        assert q.pop() is low

    def test_fifo_within_priority(self):
        q = WaitQueue()
        a, b = thr(4), thr(5)
        q.push(a)
        q.push(b)
        assert q.pop() is a

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            WaitQueue().pop()

    def test_remove(self):
        q = WaitQueue()
        a, b = thr(4), thr(5)
        q.push(a)
        q.push(b)
        assert q.remove(a) is True
        assert q.remove(a) is False
        assert q.pop() is b

    def test_threads_listing_ordered(self):
        q = WaitQueue()
        a, b, c = thr(4, 1), thr(5, 5), thr(6, 3)
        for t in (a, b, c):
            q.push(t)
        assert q.threads() == [b, c, a]


class TestMutex:
    def test_uncontended_lock(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        t = thr(4)
        assert m.lock(t, kernel) is True
        assert m.owner is t
        assert kernel.blocked == []

    def test_contended_lock_blocks(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        a, b = thr(4), thr(5)
        m.lock(a, kernel)
        assert m.lock(b, kernel) is False
        assert kernel.blocked == [(5, "mutex m")]

    def test_unlock_hands_off_directly(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        a, b = thr(4), thr(5)
        m.lock(a, kernel)
        m.lock(b, kernel)
        m.unlock(a, kernel)
        assert m.owner is b  # direct hand-off
        assert kernel.woken == [5]

    def test_unlock_without_waiters_frees(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        a = thr(4)
        m.lock(a, kernel)
        m.unlock(a, kernel)
        assert m.owner is None

    def test_unlock_by_non_owner_rejected(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        a, b = thr(4), thr(5)
        m.lock(a, kernel)
        with pytest.raises(SimulationError):
            m.unlock(b, kernel)

    def test_unlock_free_mutex_rejected(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        with pytest.raises(SimulationError):
            m.unlock(thr(4), kernel)

    def test_relock_self_deadlock_detected(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        a = thr(4)
        m.lock(a, kernel)
        with pytest.raises(SimulationError):
            m.lock(a, kernel)

    def test_trylock(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        a, b = thr(4), thr(5)
        assert m.trylock(a) is True
        assert m.trylock(b) is False
        assert kernel.blocked == []

    def test_priority_waiter_wins_handoff(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        owner, low, high = thr(4), thr(5, priority=1), thr(6, priority=9)
        m.lock(owner, kernel)
        m.lock(low, kernel)
        m.lock(high, kernel)
        m.unlock(owner, kernel)
        assert m.owner is high

    def test_contention_statistics(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        a, b = thr(4), thr(5)
        m.lock(a, kernel)
        m.lock(b, kernel)
        m.unlock(a, kernel)
        assert m.acquisitions == 2
        assert m.contended_acquisitions == 1


class TestSemaphore:
    def test_initial_count_consumed(self, kernel):
        s = SimSemaphore(SyncObjectId("sema", "s"), initial=2)
        assert s.wait(thr(4), kernel) is True
        assert s.wait(thr(5), kernel) is True
        assert s.wait(thr(6), kernel) is False  # blocks
        assert kernel.blocked == [(6, "sema s")]

    def test_negative_initial_rejected(self):
        with pytest.raises(SimulationError):
            SimSemaphore(SyncObjectId("sema", "s"), initial=-1)

    def test_post_wakes_waiter_directly(self, kernel):
        s = SimSemaphore(SyncObjectId("sema", "s"))
        t = thr(4)
        s.wait(t, kernel)
        s.post(kernel)
        assert kernel.woken == [4]
        assert s.count == 0  # token handed over, not banked

    def test_post_without_waiters_banks_token(self, kernel):
        s = SimSemaphore(SyncObjectId("sema", "s"))
        s.post(kernel)
        assert s.count == 1

    def test_trywait(self, kernel):
        s = SimSemaphore(SyncObjectId("sema", "s"), initial=1)
        assert s.trywait(thr(4)) is True
        assert s.trywait(thr(5)) is False


class TestCondVar:
    def test_wait_releases_mutex_and_blocks(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        c = SimCondVar(SyncObjectId("cond", "c"))
        t = thr(4)
        m.lock(t, kernel)
        c.wait(t, m, kernel)
        assert m.owner is None  # released atomically
        assert kernel.blocked == [(4, "cond c")]

    def test_signal_reacquires_mutex(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        c = SimCondVar(SyncObjectId("cond", "c"))
        t = thr(4)
        m.lock(t, kernel)
        c.wait(t, m, kernel)
        assert c.signal(kernel) == 1
        assert m.owner is t  # mutex free: re-acquired at signal
        assert kernel.woken == [4]
        assert kernel.results[4] is True

    def test_signal_queues_on_held_mutex(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        c = SimCondVar(SyncObjectId("cond", "c"))
        waiter, holder = thr(4), thr(5)
        m.lock(waiter, kernel)
        c.wait(waiter, m, kernel)
        m.lock(holder, kernel)
        c.signal(kernel)
        assert kernel.woken == []  # parked on the mutex
        assert kernel.results[4] is True  # outcome preserved
        m.unlock(holder, kernel)
        assert m.owner is waiter
        assert kernel.woken == [4]

    def test_signal_without_waiters(self, kernel):
        c = SimCondVar(SyncObjectId("cond", "c"))
        assert c.signal(kernel) == 0

    def test_live_broadcast_wakes_all(self, kernel):
        c = SimCondVar(SyncObjectId("cond", "c"))
        a, b = thr(4), thr(5)
        c.wait(a, None, kernel)
        c.wait(b, None, kernel)
        caller = thr(6)
        assert c.broadcast(caller, kernel) is True
        assert sorted(kernel.woken) == [4, 5]

    def test_replay_broadcast_blocks_until_quota(self, kernel):
        # §6: the broadcast blocks until the logged number of waiters arrive
        c = SimCondVar(SyncObjectId("cond", "c"))
        a, b, caster = thr(4), thr(5), thr(6)
        c.wait(a, None, kernel)
        assert c.broadcast(caster, kernel, expected_waiters=2) is False
        assert (6, "cond-broadcast c") in kernel.blocked
        c.wait(b, None, kernel)  # the last arrival releases everyone
        assert sorted(kernel.woken) == [4, 5, 6]

    def test_replay_broadcast_releases_held_mutex(self, kernel):
        # a blocked barrier broadcast must not deadlock arriving waiters
        m = SimMutex(SyncObjectId("mutex", "m"))
        c = SimCondVar(SyncObjectId("cond", "c"))
        caster, waiter = thr(4), thr(5)
        m.lock(caster, kernel)
        assert (
            c.broadcast(caster, kernel, expected_waiters=1, held_mutex=m) is False
        )
        assert m.owner is None  # released while blocked
        m.lock(waiter, kernel)
        c.wait(waiter, m, kernel)
        # quota reached: waiter released, broadcaster re-acquired the mutex
        assert m.owner is caster
        assert 4 in kernel.woken

    def test_replay_broadcast_quota_already_met(self, kernel):
        c = SimCondVar(SyncObjectId("cond", "c"))
        a = thr(4)
        c.wait(a, None, kernel)
        assert c.broadcast(thr(6), kernel, expected_waiters=1) is True

    def test_double_pending_broadcast_rejected(self, kernel):
        c = SimCondVar(SyncObjectId("cond", "c"))
        c.broadcast(thr(4), kernel, expected_waiters=1)
        with pytest.raises(SimulationError):
            c.broadcast(thr(5), kernel, expected_waiters=1)

    def test_timed_wait_arms_timer_and_cancels_on_signal(self, kernel):
        c = SimCondVar(SyncObjectId("cond", "c"))
        t = thr(4)
        fired = []
        c.wait(t, None, kernel, timeout_us=100, on_timeout=fired.append)
        assert len(kernel.timers) == 1
        c.signal(kernel)
        assert kernel.timers[0][3] is True  # cancelled

    def test_cancel_wait_returns_mutex(self, kernel):
        m = SimMutex(SyncObjectId("mutex", "m"))
        c = SimCondVar(SyncObjectId("cond", "c"))
        t = thr(4)
        m.lock(t, kernel)
        c.wait(t, m, kernel, timeout_us=100, on_timeout=lambda th: None)
        assert c.cancel_wait(t, kernel) is m

    def test_cancel_wait_not_waiting_rejected(self, kernel):
        c = SimCondVar(SyncObjectId("cond", "c"))
        with pytest.raises(SimulationError):
            c.cancel_wait(thr(4), kernel)

    def test_timeout_without_handler_rejected(self, kernel):
        c = SimCondVar(SyncObjectId("cond", "c"))
        with pytest.raises(SimulationError):
            c.wait(thr(4), None, kernel, timeout_us=5)


class TestRwLock:
    def test_concurrent_readers(self, kernel):
        rw = SimRwLock(SyncObjectId("rwlock", "rw"))
        assert rw.rdlock(thr(4), kernel) is True
        assert rw.rdlock(thr(5), kernel) is True
        assert len(rw.readers) == 2

    def test_writer_excludes_readers(self, kernel):
        rw = SimRwLock(SyncObjectId("rwlock", "rw"))
        w, r = thr(4), thr(5)
        assert rw.wrlock(w, kernel) is True
        assert rw.rdlock(r, kernel) is False

    def test_writer_preference(self, kernel):
        # a waiting writer blocks new readers (Solaris policy)
        rw = SimRwLock(SyncObjectId("rwlock", "rw"))
        r1, w, r2 = thr(4), thr(5), thr(6)
        rw.rdlock(r1, kernel)
        rw.wrlock(w, kernel)  # queued behind the reader
        assert rw.rdlock(r2, kernel) is False  # would starve the writer
        rw.unlock(r1, kernel)
        assert rw.writer is w

    def test_writer_release_admits_reader_run(self, kernel):
        rw = SimRwLock(SyncObjectId("rwlock", "rw"))
        w, r1, r2 = thr(4), thr(5), thr(6)
        rw.wrlock(w, kernel)
        rw.rdlock(r1, kernel)
        rw.rdlock(r2, kernel)
        rw.unlock(w, kernel)
        assert sorted(kernel.woken) == [5, 6]
        assert len(rw.readers) == 2

    def test_try_variants(self, kernel):
        rw = SimRwLock(SyncObjectId("rwlock", "rw"))
        assert rw.tryrdlock(thr(4)) is True
        assert rw.trywrlock(thr(5)) is False
        rw.unlock(thr(4), kernel) if thr(4) in rw.readers else None

    def test_unlock_not_held_rejected(self, kernel):
        rw = SimRwLock(SyncObjectId("rwlock", "rw"))
        with pytest.raises(SimulationError):
            rw.unlock(thr(4), kernel)


class TestSyncObjectTable:
    def test_lazy_creation_and_identity(self):
        table = SyncObjectTable()
        assert table.mutex("m") is table.mutex("m")
        assert table.sema("s") is table.sema("s")
        assert table.cond("c") is table.cond("c")
        assert table.rwlock("rw") is table.rwlock("rw")

    def test_kinds_do_not_collide(self):
        table = SyncObjectTable()
        assert table.mutex("x").oid != table.sema("x").oid

    def test_sema_initial_count_only_first_time(self):
        table = SyncObjectTable()
        s = table.sema("s", 3)
        assert table.sema("s", 99) is s
        assert s.count == 3

    def test_all_mutexes_snapshot(self):
        table = SyncObjectTable()
        table.mutex("a")
        table.mutex("b")
        assert set(table.all_mutexes()) == {"a", "b"}
