"""End-to-end scenario tests combining several subsystems at once."""

import pytest

from repro import (
    Program,
    SimConfig,
    compile_trace,
    measure_speedup,
    predict,
    predict_speedup,
    record_program,
)
from repro.analysis import contention_by_object, max_speedup
from repro.core.events import Primitive, Status
from repro.core.ids import SyncObjectId
from repro.program import ops as op
from repro.recorder import logfile
from repro.visualizer import EventInspector, render_svg


class TestReaderWriterScenario:
    """A reader-heavy cache with occasional writers, through the whole
    pipeline: record -> log -> compile -> predict -> validate -> inspect."""

    def _program(self, readers=4, writers=1, rounds=6):
        def reader(ctx):
            for _ in range(rounds):
                yield op.Compute(2_000)
                yield op.RwRdLock("cache")
                yield op.Compute(300)
                yield op.RwUnlock("cache")

        def writer(ctx):
            for _ in range(rounds // 2):
                yield op.Compute(5_000)
                yield op.RwWrLock("cache")
                yield op.Compute(1_000)
                yield op.RwUnlock("cache")

        def main(ctx):
            tids = []
            for _ in range(readers):
                tids.append((yield op.ThrCreate(reader, name="reader")))
            for _ in range(writers):
                tids.append((yield op.ThrCreate(writer, name="writer")))
            for t in tids:
                yield op.ThrJoin(t)

        return Program("rwcache", main)

    @pytest.fixture(scope="class")
    def recorded(self):
        return record_program(self._program())

    def test_rw_events_recorded(self, recorded):
        prims = {r.primitive for r in recorded.trace}
        assert Primitive.RW_RDLOCK in prims and Primitive.RW_WRLOCK in prims

    def test_readers_overlap_in_prediction(self, recorded):
        # readers share the lock, but writer preference periodically
        # drains them (each wrlock serialises the system around it), so
        # scaling is real yet well below linear
        pred4 = predict_speedup(recorded.trace, 4)
        pred8 = predict_speedup(recorded.trace, 8)
        assert pred4.speedup > 2.0
        assert pred8.speedup > 3.5

    def test_prediction_validates_against_ground_truth(self, recorded):
        pred = predict_speedup(recorded.trace, 4)
        real = measure_speedup(self._program(), 4, runs=3)
        assert abs(real.speedup - pred.speedup) / real.speedup < 0.08

    def test_log_roundtrip_preserves_rw_semantics(self, recorded):
        back = logfile.loads(logfile.dumps(recorded.trace))
        a = predict(recorded.trace, SimConfig(cpus=4))
        b = predict(back, SimConfig(cpus=4))
        assert a.makespan_us == b.makespan_us

    def test_inspector_steps_through_cache_operations(self, recorded):
        res = predict(recorded.trace, SimConfig(cpus=4))
        insp = EventInspector(res)
        cache_ops = insp.all_on_object(SyncObjectId("rwlock", "cache"))
        assert len(cache_ops) >= 4 * 6 * 2  # rd+unlock per reader round
        # stepping from the first reaches the second
        nxt = insp.next_similar(cache_ops[0].index)
        assert nxt.index == cache_ops[1].index

    def test_svg_renders_rw_symbols(self, recorded):
        res = predict(recorded.trace, SimConfig(cpus=4))
        svg = render_svg(res)
        assert "T4 reader" in svg and "writer" in svg


class TestPriorityInversionScenario:
    """Priorities + a shared mutex: the classic inversion shape, visible
    in the simulated timeline."""

    def _program(self):
        def low(ctx):
            yield op.MutexLock("res")
            yield op.SemaPost("locked")  # guarantee the inversion ordering
            yield op.Compute(50_000)  # long critical section
            yield op.MutexUnlock("res")

        def mid(ctx):
            yield op.Compute(60_000)

        def high(ctx):
            yield op.SemaWait("locked")
            yield op.MutexLock("res")  # blocks on low's long hold
            yield op.Compute(1_000)
            yield op.MutexUnlock("res")

        def main(ctx):
            a = yield op.ThrCreate(low, priority=1)
            b = yield op.ThrCreate(mid, priority=5)
            c = yield op.ThrCreate(high, priority=9)
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)
            yield op.ThrJoin(c)

        return Program("inversion", main)

    def test_high_priority_thread_blocked_by_low(self):
        run = record_program(self._program())
        res = predict(run.trace, SimConfig(cpus=1, lwps=2))
        profiles = contention_by_object(res)
        res_mutex = [p for p in profiles if p.obj == SyncObjectId("mutex", "res")]
        assert res_mutex and res_mutex[0].total_blocked_us > 10_000

    def test_more_cpus_dissolve_the_inversion(self):
        run = record_program(self._program())
        one = predict(run.trace, SimConfig(cpus=1))
        three = predict(run.trace, SimConfig(cpus=3))
        assert three.makespan_us < one.makespan_us


class TestMixedIoAndCpuScenario:
    """The §6 I/O extension mixed with CPU phases and a bottleneck."""

    def _program(self, nthreads=4):
        def worker(ctx):
            for _ in range(3):
                yield op.IoWait(8_000)  # read a block
                yield op.Compute(4_000)  # process it
                yield op.MutexLock("index")
                yield op.Compute(200)  # update shared index
                yield op.MutexUnlock("index")

        def main(ctx):
            tids = []
            for _ in range(nthreads):
                tids.append((yield op.ThrCreate(worker)))
            for t in tids:
                yield op.ThrJoin(t)

        return Program("io-mixed", main)

    def test_io_overlap_bounds_speedup_gains(self):
        run = record_program(self._program())
        # on the monitored run the I/O already overlaps, so extra CPUs
        # only help the compute part
        pred2 = predict_speedup(run.trace, 2)
        pred8 = predict_speedup(run.trace, 8)
        assert 1.0 <= pred2.speedup <= 8
        assert pred8.speedup >= pred2.speedup * 0.98

    def test_bound_matches_sweep_plateau(self):
        run = record_program(self._program())
        bound = max_speedup(run.trace)
        pred8 = predict_speedup(run.trace, 8)
        assert pred8.speedup <= bound * 1.02


class TestCompileIdempotence:
    def test_compile_twice_same_plan_shape(self):
        run = record_program(
            TestReaderWriterScenario()._program(readers=2, writers=1, rounds=2)
        )
        a = compile_trace(run.trace)
        b = compile_trace(run.trace)
        assert set(a.steps) == set(b.steps)
        for tid in a.steps:
            assert [s.work_us for s in a.steps[tid]] == [
                s.work_us for s in b.steps[tid]
            ]
            assert [type(s.op) for s in a.steps[tid]] == [
                type(s.op) for s in b.steps[tid]
            ]
