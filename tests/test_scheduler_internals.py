"""Focused tests of TS-class dispatcher dynamics inside the scheduler."""

import pytest

from repro import Program, SimConfig, simulate_program
from repro.core.result import SegmentKind
from repro.program import ops as op
from repro.solaris import costs as costs_mod
from repro.solaris.dispatch import DispatchEntry, DispatchTable, TS_LEVELS
from repro.solaris.lwp import LwpState
from repro.core.simulator import Simulator

FREE = costs_mod.free()


def spawn(n, body):
    def main(ctx):
        tids = []
        for _ in range(n):
            tids.append((yield op.ThrCreate(body)))
        for t in tids:
            yield op.ThrJoin(t)

    return main


class TestQuantumDynamics:
    def test_quantum_expiries_counted(self):
        def w(ctx):
            yield op.Compute(50_000)

        cfg = SimConfig(
            cpus=1, costs=FREE, dispatch=DispatchTable.fixed_quantum(10_000)
        )
        sim = Simulator(cfg)
        sim.run_program(Program("p", spawn(2, w)))
        expiries = sum(l.quantum_expiries for l in sim.scheduler.lwps)
        # 100 ms of demand in 10 ms slices with a contender: many expiries
        assert expiries >= 8

    def test_priority_demoted_on_expiry_with_classic_table(self):
        # a CPU hog sinks through the table (29 -> 19 -> 9 -> 0)
        def hog(ctx):
            yield op.Compute(700_000)  # several classic quanta

        cfg = SimConfig(cpus=1, costs=FREE)
        sim = Simulator(cfg)
        sim.run_program(Program("p", spawn(2, hog)))
        # after the run the pool LWPs have been demoted below the initial level
        demoted = [
            l
            for l in sim.scheduler.lwps
            if l.quantum_expiries > 0 and l.kernel_priority < 29
        ]
        assert demoted

    def test_no_expiries_without_time_slicing(self):
        def w(ctx):
            yield op.Compute(500_000)

        cfg = SimConfig(cpus=1, costs=FREE, time_slicing=False)
        sim = Simulator(cfg)
        sim.run_program(Program("p", spawn(2, w)))
        assert sum(l.quantum_expiries for l in sim.scheduler.lwps) == 0

    def test_expiry_without_contender_keeps_running(self):
        # a lone thread is never preempted, only re-armed
        def w(ctx):
            yield op.Compute(50_000)

        cfg = SimConfig(
            cpus=1, costs=FREE, dispatch=DispatchTable.fixed_quantum(10_000)
        )
        res = simulate_program(Program("p", spawn(1, w)), cfg)
        worker_segments = [
            s
            for tid, segs in res.segments.items()
            if int(tid) == 4
            for s in segs
            if s.kind is SegmentKind.RUNNING
        ]
        assert len(worker_segments) == 1  # one unbroken run


class TestWakeBoost:
    def test_woken_thread_preempts_cpu_hog(self):
        # classic TS: returning from sleep boosts the LWP above a hog
        # that has burned quanta, so the sleeper gets the CPU promptly
        def hog(ctx):
            yield op.Compute(900_000)

        def sleeper(ctx):
            yield op.SemaWait("go")
            yield op.Compute(1_000)
            ctx.shared["woke_at"] = True

        def main(ctx):
            a = yield op.ThrCreate(hog)
            b = yield op.ThrCreate(sleeper)
            yield op.Compute(100)
            yield op.SemaPost("go")
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)

        cfg = SimConfig(cpus=1, costs=FREE)
        res = simulate_program(Program("p", main), cfg)
        sleeper_end = next(
            s.end_us for t, s in res.summaries.items() if s.func_name == "sleeper"
        )
        hog_end = next(
            s.end_us for t, s in res.summaries.items() if s.func_name == "hog"
        )
        assert sleeper_end < hog_end  # boosted past the hog


class TestStarvationBoost:
    def test_starved_lwp_eventually_lifted(self):
        # one CPU, no time slicing... starvation boost only matters with
        # priority gaps; construct one: a high-priority hog and a starved
        # low-priority thread that must wait past maxwait (1 s) and then
        # get lifted into contention
        table = DispatchTable.classic()

        def hog(ctx):
            yield op.Compute(3_000_000)  # 3 s

        def meek(ctx):
            yield op.Compute(1_000)

        def main(ctx):
            a = yield op.ThrCreate(hog, priority=10)
            b = yield op.ThrCreate(meek, priority=1)
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)

        cfg = SimConfig(cpus=1, lwps=2, costs=FREE, dispatch=table)
        res = simulate_program(Program("p", main), cfg)
        assert res.makespan_us >= 3_000_000


class TestLwpStates:
    def test_pool_lwps_park_idle(self):
        def w(ctx):
            yield op.Compute(1_000)

        cfg = SimConfig(cpus=2, lwps=4, costs=FREE)
        sim = Simulator(cfg)
        sim.run_program(Program("p", spawn(2, w)))
        assert all(
            l.state in (LwpState.IDLE,) for l in sim.scheduler.lwps if not l.dedicated
        )

    def test_dedicated_lwp_removed_at_exit(self):
        def w(ctx):
            yield op.Compute(1_000)

        def main(ctx):
            t = yield op.ThrCreate(w, bound=True)
            yield op.ThrJoin(t)

        sim = Simulator(SimConfig(cpus=2, lwps=1, costs=FREE))
        sim.run_program(Program("p", main))
        assert all(not l.dedicated for l in sim.scheduler.lwps)


class TestDispatchTableCustom:
    def test_custom_table_is_used(self):
        # a table whose quantum is tiny forces visible round-robin
        entries = [
            DispatchEntry(
                quantum_us=1_000,
                tqexp=level,
                slpret=level,
                maxwait_us=10**9,
                lwait=level,
            )
            for level in range(TS_LEVELS)
        ]
        table = DispatchTable.custom(entries)

        def w(ctx):
            yield op.Compute(10_000)

        cfg = SimConfig(cpus=1, costs=FREE, dispatch=table)
        sim = Simulator(cfg)
        sim.run_program(Program("p", spawn(2, w)))
        assert sum(l.quantum_expiries for l in sim.scheduler.lwps) >= 15


class TestLwpSwitchCost:
    def test_default_off_is_paper_faithful(self):
        # §6: the paper "does not consider the overhead for LWP context
        # switches on a multiprocessor"
        from repro.solaris.costs import CostModel

        assert CostModel().lwp_switch_us == 0

    def test_kernel_switch_cost_charged_when_enabled(self):
        from repro.solaris.costs import CostModel

        def w(ctx):
            yield op.Compute(30_000)

        # 2 LWPs ping-pong on 1 CPU under a small quantum
        base_cfg = SimConfig(
            cpus=1, lwps=2, dispatch=DispatchTable.fixed_quantum(5_000)
        )
        costly = SimConfig(
            cpus=1,
            lwps=2,
            dispatch=DispatchTable.fixed_quantum(5_000),
            costs=CostModel(lwp_switch_us=500),
        )
        fast = simulate_program(Program("p", spawn(2, w)), base_cfg)
        slow = simulate_program(Program("p", spawn(2, w)), costly)
        assert slow.makespan_us > fast.makespan_us + 2_000

    def test_no_charge_without_actual_switches(self):
        from repro.solaris.costs import CostModel

        def w(ctx):
            yield op.Compute(10_000)

        cfg = SimConfig(
            cpus=1, lwps=1, time_slicing=False, costs=CostModel(lwp_switch_us=500)
        )
        res = simulate_program(Program("p", spawn(1, w)), cfg)
        # one LWP only: a user-level thread switch happens, but the CPU
        # never changes LWP, so no kernel switch cost accrues beyond the
        # usual op costs
        base = simulate_program(
            Program("p", spawn(1, w)),
            SimConfig(cpus=1, lwps=1, time_slicing=False),
        )
        assert res.makespan_us == base.makespan_us
