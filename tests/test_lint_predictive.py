"""Differential tests for the predictive-lint stack.

Four layers: the happens-before severity tiers on synthetic logs (the
Eraser false positive is gone, the mutex hand-off downgrade works, true
races stay errors), witness synthesis + replay (every HB-confirmed
hazard replays to its claimed outcome, fast and legacy replay engines
agree bit-for-bit), the ``--whatif`` grid (manifestation tagging,
ResultCache reuse, metrics), and the user surfaces (CLI baseline and
salvage flows, the HTTP ``/lint`` endpoint on both front ends).
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro import record_program
from repro.analysis.lint import (
    Severity,
    find_witness,
    replay_witness,
    run_lint,
    whatif_lint,
)
from repro.analysis.lint.predictive import lint_probe_context, probe_trace
from repro.cli import main as cli_main
from repro.jobs import (
    JobEngine,
    LintJob,
    ResultCache,
    SimJob,
    SweepManifest,
    TraceRef,
)
from repro.jobs.model import JobOutcome
from repro.jobs.service import PredictionService, make_server
from repro.jobs.service_async import BackgroundServer
from repro.recorder import logfile
from repro.recorder.salvage import salvage_loads
from repro.workloads.prodcons import make_clean, make_racy

# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------

_HEADER = "# vppb-log 1\n# program: synthetic\n# probe-overhead-us: 1\n"


def _log(*records: str) -> str:
    return _HEADER + "\n".join(records) + "\n"


def _spawn(t_us: int, target: int) -> list:
    return [
        f"0.{t_us:06d} T1 call thr_create",
        f"0.{t_us + 1:06d} T1 ret thr_create target=T{target} status=ok",
    ]


# Two threads each spend ~500us writing var:x with no lock.  At one CPU
# the bodies serialise; at two they overlap in wall-clock — the minimal
# "manifests only on a multiprocessor" fixture (the paper's premise).
_OVERLAP_RACE = _log(
    *_spawn(10, 2),
    *_spawn(12, 3),
    "0.000100 T2 call shared_write obj=var:x src=a.c|5|w",
    "0.000101 T2 ret shared_write obj=var:x status=ok src=a.c|5|w",
    "0.000600 T2 call shared_write obj=var:x src=a.c|6|w",
    "0.000601 T2 ret shared_write obj=var:x status=ok src=a.c|6|w",
    "0.000150 T3 call shared_write obj=var:x src=a.c|9|w",
    "0.000151 T3 ret shared_write obj=var:x status=ok src=a.c|9|w",
    "0.000650 T3 call shared_write obj=var:x src=a.c|10|w",
    "0.000651 T3 ret shared_write obj=var:x status=ok src=a.c|10|w",
)


@pytest.fixture(scope="module")
def racy_trace():
    return record_program(make_racy()).trace


@pytest.fixture(scope="module")
def racy_report(racy_trace):
    return run_lint(racy_trace)


@pytest.fixture()
def inline_engine(tmp_path):
    engine = JobEngine(mode="inline", cache=ResultCache(str(tmp_path / "cache")))
    with engine:
        yield engine


# ---------------------------------------------------------------------------
# happens-before severity tiers
# ---------------------------------------------------------------------------


class TestHappensBeforeTiers:
    def test_forkjoin_ordered_access_is_suppressed(self):
        # T2 writes, main joins it, then spawns T3 which writes: the
        # lockset gates (no common lock) but fork/join orders the pair —
        # the classic Eraser false positive must yield NO finding.
        text = _log(
            *_spawn(10, 2),
            "0.000020 T2 call shared_write obj=var:x src=a.c|5|w",
            "0.000021 T2 ret shared_write obj=var:x status=ok src=a.c|5|w",
            "0.000030 T1 call thr_join target=T2",
            "0.000031 T1 ret thr_join target=T2 status=ok",
            *_spawn(40, 3),
            "0.000050 T3 call shared_write obj=var:x src=a.c|9|w",
            "0.000051 T3 ret shared_write obj=var:x status=ok src=a.c|9|w",
        )
        report = run_lint(logfile.loads(text))
        assert not report.by_rule("VPPB-R001")

    def test_mutex_handoff_downgrades_to_warning_without_witness(self):
        # the writes are unlocked, but T2's unlock of m happens before
        # T3's lock of m: this run's hand-off ordered them.  Fragile,
        # not proven concurrent — warning, and no witness schedule.
        text = _log(
            *_spawn(10, 2),
            *_spawn(12, 3),
            "0.000020 T2 call shared_write obj=var:x src=a.c|5|w",
            "0.000021 T2 ret shared_write obj=var:x status=ok src=a.c|5|w",
            "0.000022 T2 call mutex_lock obj=mutex:m",
            "0.000023 T2 ret mutex_lock obj=mutex:m status=ok",
            "0.000024 T2 call mutex_unlock obj=mutex:m",
            "0.000025 T2 ret mutex_unlock obj=mutex:m status=ok",
            "0.000030 T3 call mutex_lock obj=mutex:m",
            "0.000031 T3 ret mutex_lock obj=mutex:m status=ok",
            "0.000032 T3 call mutex_unlock obj=mutex:m",
            "0.000033 T3 ret mutex_unlock obj=mutex:m status=ok",
            "0.000040 T3 call shared_write obj=var:x src=a.c|9|w",
            "0.000041 T3 ret shared_write obj=var:x status=ok src=a.c|9|w",
        )
        report = run_lint(logfile.loads(text))
        races = report.by_rule("VPPB-R001")
        assert len(races) == 1
        assert races[0].severity is Severity.WARNING
        assert races[0].witness is None

    def test_concurrent_race_is_error_with_witness(self):
        report = run_lint(logfile.loads(_OVERLAP_RACE))
        races = report.by_rule("VPPB-R001")
        assert len(races) == 1
        f = races[0]
        assert f.severity is Severity.ERROR
        assert f.witness is not None
        assert f.witness["kind"] == "race"
        assert len(f.witness["digest"]) == 64
        assert f.witness["digest"][:12] in f.witness["replay"]

    def test_all_seeded_hazards_are_errors_with_witnesses(self, racy_report):
        errors = [f for f in racy_report if f.severity is Severity.ERROR]
        assert {f.rule_id for f in errors} == {"VPPB-R001", "VPPB-R002"}
        for f in errors:
            assert f.witness is not None, f.rule_id

    def test_clean_fixture_has_no_findings(self):
        trace = record_program(make_clean()).trace
        assert len(run_lint(trace)) == 0


# ---------------------------------------------------------------------------
# witness replay
# ---------------------------------------------------------------------------


class TestWitnessReplay:
    def test_race_witness_exhibits_the_inversion(self, racy_trace, racy_report):
        f = racy_report.by_rule("VPPB-R001")[0]
        witness = find_witness(racy_report, f.witness["digest"][:12])
        assert witness is not None and witness.kind == "race"
        replay = replay_witness(racy_trace, witness)
        assert replay.exhibited, replay.detail

    def test_deadlock_witness_exhibits_the_deadlock(
        self, racy_trace, racy_report
    ):
        f = racy_report.by_rule("VPPB-R002")[0]
        witness = find_witness(racy_report, f.witness["digest"][:12])
        assert witness is not None and witness.kind == "deadlock"
        assert witness.cpus >= 2
        replay = replay_witness(racy_trace, witness)
        assert replay.exhibited, replay.detail
        assert replay.status.value == "deadlock"

    def test_unknown_digest_resolves_to_none(self, racy_report):
        assert find_witness(racy_report, "ffffffffffff") is None

    def test_fast_and_legacy_replay_agree(self, monkeypatch):
        # the witness verdict and the probe payload must not depend on
        # which replay interpreter ran
        trace = logfile.loads(_OVERLAP_RACE)
        report = run_lint(trace)
        digest = report.by_rule("VPPB-R001")[0].witness["digest"]
        witness = find_witness(report, digest)
        manifest = SweepManifest.from_dict({"trace": "x.log", "cpus": [1, 2]})
        cells = list(manifest.configs(trace))
        outcomes = {}
        for engine_mode in ("fast", "legacy"):
            monkeypatch.setenv("VPPB_REPLAY", engine_mode)
            replay = replay_witness(trace, witness)
            probes = [probe_trace(trace, c.config) for c in cells]
            outcomes[engine_mode] = (
                replay.exhibited,
                replay.status,
                replay.detail,
                probes,
            )
        assert outcomes["fast"] == outcomes["legacy"]


# ---------------------------------------------------------------------------
# the --whatif grid
# ---------------------------------------------------------------------------


class TestWhatifGrid:
    def test_deadlock_manifests_only_on_multiprocessor(
        self, racy_trace, racy_report, inline_engine
    ):
        manifest = SweepManifest.from_dict({"trace": "x.log", "cpus": [1, 2, 4]})
        res = whatif_lint(
            racy_trace, manifest, report=racy_report, engine=inline_engine
        )
        r002 = res.report.by_rule("VPPB-R002")[0]
        assert r002.manifests == ("2cpu/unbound", "4cpu/unbound")
        assert "VPPB-R002" in {f.rule_id for f in res.predicted_only}
        by_label = {c.label: c for c in res.cells}
        assert by_label["1cpu/unbound"].replay_status == "complete"
        assert by_label["2cpu/unbound"].replay_status == "deadlock"

    def test_race_manifests_only_on_multiprocessor(self, inline_engine):
        trace = logfile.loads(_OVERLAP_RACE)
        manifest = SweepManifest.from_dict({"trace": "x.log", "cpus": [1, 2]})
        res = whatif_lint(trace, manifest, engine=inline_engine)
        r001 = res.report.by_rule("VPPB-R001")[0]
        assert r001.manifests == ("2cpu/unbound",)
        assert [f.rule_id for f in res.predicted_only] == ["VPPB-R001"]

    def test_grid_rerun_hits_the_result_cache(
        self, racy_trace, racy_report, inline_engine
    ):
        manifest = SweepManifest.from_dict({"trace": "x.log", "cpus": [1, 2]})
        cold = whatif_lint(
            racy_trace, manifest, report=racy_report, engine=inline_engine
        )
        assert all(not c.from_cache for c in cold.cells)
        warm = whatif_lint(
            racy_trace, manifest, report=racy_report, engine=inline_engine
        )
        assert all(c.from_cache for c in warm.cells)
        # probes ran once per cell, and the metric counted them
        assert inline_engine.metrics.snapshot()["lint_probes"] == 2
        # identical verdicts either way
        assert [c.replay_status for c in cold.cells] == [
            c.replay_status for c in warm.cells
        ]

    def test_unprobed_rules_stay_untagged(self, racy_trace, inline_engine):
        manifest = SweepManifest.from_dict({"trace": "x.log", "cpus": [1]})
        res = whatif_lint(racy_trace, manifest, engine=inline_engine)
        for f in res.report:
            if f.rule_id not in ("VPPB-R001", "VPPB-R002"):
                assert f.manifests is None

    def test_to_dict_carries_grid_and_report(self, racy_trace, inline_engine):
        manifest = SweepManifest.from_dict({"trace": "x.log", "cpus": [1]})
        res = whatif_lint(racy_trace, manifest, engine=inline_engine)
        data = res.to_dict()
        assert [c["label"] for c in data["grid"]] == ["1cpu/unbound"]
        assert data["report"]["findings"]


# ---------------------------------------------------------------------------
# lint jobs: fingerprints and cached payloads
# ---------------------------------------------------------------------------


class TestLintJobs:
    def test_lint_and_sim_fingerprints_differ(self, racy_trace, tmp_path):
        path = tmp_path / "racy.log"
        logfile.dump(racy_trace, path)
        ref = TraceRef.from_path(path)
        manifest = SweepManifest.from_dict({"trace": "x.log", "cpus": [2]})
        config = list(manifest.configs(racy_trace))[0].config
        lint_job = LintJob(trace=ref, config=config)
        sim_job = SimJob(trace=ref, config=config)
        assert lint_job.kind == "lint" and sim_job.kind == "sim"
        assert lint_job.fingerprint != sim_job.fingerprint

    def test_probe_payload_round_trips_through_disk_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        outcome = JobOutcome(
            fingerprint="f" * 64,
            status="complete",
            makespan_us=1,
            payload={"kind": "lint", "manifested": {"a" * 64: True}},
        )
        cache.put(outcome)
        back = cache.get("f" * 64)
        assert back is not None
        assert back.payload == outcome.payload


# ---------------------------------------------------------------------------
# salvage + baseline + fingerprint stability (CLI)
# ---------------------------------------------------------------------------


class TestSalvageAndBaseline:
    def test_salvaged_trace_gains_incomplete_input_note(self, racy_trace):
        text = logfile.dumps(racy_trace)
        lines = text.splitlines(True)
        damaged = "".join(lines[:-10]) + "this line is not a record\n"
        result = salvage_loads(damaged)
        report = run_lint(result.trace, salvage=result.report)
        notes = report.by_rule("VPPB-R010")
        assert len(notes) == 1
        assert notes[0].severity is Severity.NOTE
        # pristine input: no note
        assert not run_lint(
            salvage_loads(text).trace, salvage=salvage_loads(text).report
        ).by_rule("VPPB-R010")

    def test_cli_lints_damaged_log_and_strict_parse_refuses(
        self, racy_trace, tmp_path, capsys
    ):
        damaged = tmp_path / "damaged.log"
        damaged.write_text(
            logfile.dumps(racy_trace) + "garbage that is not a record\n"
        )
        rc = cli_main(["lint", str(damaged)])
        captured = capsys.readouterr()
        assert rc == 1  # planted errors still found
        assert "salvaged input" in captured.err
        assert "VPPB-R010" in captured.out
        assert cli_main(["lint", str(damaged), "--strict-parse"]) == 2

    def test_cli_baseline_suppresses_known_findings(
        self, racy_trace, tmp_path, capsys
    ):
        log = tmp_path / "racy.log"
        logfile.dump(racy_trace, log)
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                ["lint", str(log), "--format", "json", "--output", str(baseline)]
            )
            == 1
        )
        capsys.readouterr()
        # every finding is in the baseline: exit 0
        assert cli_main(["lint", str(log), "--baseline", str(baseline)]) == 0
        captured = capsys.readouterr()
        assert "suppressed" in captured.err

    def test_fingerprints_stable_across_rerecording(self, racy_report):
        again = run_lint(record_program(make_racy()).trace)
        assert {f.fingerprint() for f in racy_report} == {
            f.fingerprint() for f in again
        }

    def test_sarif_carries_partial_fingerprints(self, racy_report):
        from repro.analysis.lint import to_sarif

        results = to_sarif(racy_report)["runs"][0]["results"]
        assert results
        for result in results:
            fp = result["partialFingerprints"]["vppbFingerprint/v1"]
            assert len(fp) == 64


# ---------------------------------------------------------------------------
# the /lint service endpoint (both front ends)
# ---------------------------------------------------------------------------


def _request(port, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=body.encode() if isinstance(body, str) else body,
        )
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


class TestServiceLint:
    @pytest.fixture()
    def service(self):
        engine = JobEngine(mode="inline")
        svc = PredictionService(engine)
        try:
            yield svc
        finally:
            engine.close()

    def test_legacy_server_lints_with_whatif(self, service, racy_trace):
        log_text = logfile.dumps(racy_trace)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _request(
                server.server_port,
                "POST",
                "/lint",
                json.dumps({"log": log_text, "whatif": {"cpus": [1, 2]}}),
            )
            assert status == 200
            assert {f["rule_id"] for f in body["findings"]} >= {
                "VPPB-R001",
                "VPPB-R002",
            }
            assert [c["label"] for c in body["grid"]] == [
                "1cpu/unbound",
                "2cpu/unbound",
            ]
            by_rule = {f["rule_id"]: f for f in body["findings"]}
            assert by_rule["VPPB-R002"]["manifests"] == ["2cpu/unbound"]
            status, metrics = _request(server.server_port, "GET", "/metrics")
            assert metrics["service"]["lint_requests"] == 1
            assert metrics["lint_probes"] == 2
        finally:
            server.shutdown()
            server.server_close()

    def test_async_server_lints_and_rejects_bad_log(self, service, racy_trace):
        log_text = logfile.dumps(racy_trace)
        with BackgroundServer(service) as bg:
            status, body = _request(
                bg.port, "POST", "/lint", json.dumps({"log": log_text})
            )
            assert status == 200
            assert any(
                f["rule_id"] == "VPPB-R001" and f["witness"]
                for f in body["findings"]
            )
            status, body = _request(
                bg.port, "POST", "/lint", json.dumps({"log": "garbage"})
            )
            assert status == 400 and "malformed log" in body["error"]
