"""Unit tests for event records and the Trace container."""

import pytest

from repro.core.errors import TraceError
from repro.core.events import (
    BLOCKING_PRIMITIVES,
    TRY_PRIMITIVES,
    EventRecord,
    Phase,
    Primitive,
    SourceLocation,
    Status,
)
from repro.core.ids import MAIN_THREAD_ID, SyncObjectId, ThreadId, thread_name
from repro.core.trace import Trace, TraceMeta


def rec(t, tid, phase, prim, **kw):
    return EventRecord(
        time_us=t, tid=ThreadId(tid), phase=phase, primitive=prim, **kw
    )


def make_simple_records():
    """main creates T4, T4 locks/unlocks a mutex and exits, main joins."""
    m = SyncObjectId("mutex", "m")
    return [
        rec(0, 1, Phase.CALL, Primitive.START_COLLECT),
        rec(10, 1, Phase.CALL, Primitive.THR_CREATE),
        rec(110, 1, Phase.RET, Primitive.THR_CREATE, target=ThreadId(4), status=Status.OK),
        rec(120, 1, Phase.CALL, Primitive.THR_JOIN, target=ThreadId(4)),
        rec(130, 4, Phase.CALL, Primitive.THREAD_START),
        rec(200, 4, Phase.CALL, Primitive.MUTEX_LOCK, obj=m),
        rec(202, 4, Phase.RET, Primitive.MUTEX_LOCK, obj=m, status=Status.OK),
        rec(300, 4, Phase.CALL, Primitive.MUTEX_UNLOCK, obj=m),
        rec(302, 4, Phase.RET, Primitive.MUTEX_UNLOCK, obj=m, status=Status.OK),
        rec(400, 4, Phase.CALL, Primitive.THR_EXIT),
        rec(420, 1, Phase.RET, Primitive.THR_JOIN, target=ThreadId(4), status=Status.OK),
        rec(430, 1, Phase.CALL, Primitive.THR_EXIT),
    ]


class TestEventRecord:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            rec(-1, 1, Phase.CALL, Primitive.THR_EXIT)

    def test_predicates(self):
        r = rec(0, 1, Phase.CALL, Primitive.START_COLLECT)
        assert r.is_call and not r.is_ret and r.is_marker

    def test_thread_start_is_marker(self):
        assert rec(0, 4, Phase.CALL, Primitive.THREAD_START).is_marker

    def test_shifted(self):
        r = rec(100, 1, Phase.CALL, Primitive.THR_EXIT)
        assert r.shifted(50).time_us == 150
        assert r.time_us == 100  # original untouched

    def test_brief_mentions_thread_and_primitive(self):
        r = rec(5, 4, Phase.CALL, Primitive.MUTEX_LOCK, obj=SyncObjectId("mutex", "m"))
        text = r.brief()
        assert "T4" in text and "mutex_lock" in text and "mutex:m" in text

    def test_blocking_and_try_sets_disjoint(self):
        assert not (BLOCKING_PRIMITIVES & TRY_PRIMITIVES)

    def test_source_location_str(self):
        s = SourceLocation("a.c", 12, "main")
        assert "a.c:12" in str(s) and "main" in str(s)


class TestIds:
    def test_thread_name(self):
        assert thread_name(4) == "T4"

    def test_main_thread_is_one(self):
        assert int(MAIN_THREAD_ID) == 1

    def test_sync_object_hashable_and_distinct(self):
        a = SyncObjectId("mutex", "m")
        b = SyncObjectId("sema", "m")
        assert a != b
        assert len({a, b}) == 2


class TestTrace:
    def test_sorted_by_time(self):
        records = make_simple_records()
        shuffled = records[::-1]
        trace = Trace(shuffled)
        times = [r.time_us for r in trace]
        assert times == sorted(times)

    def test_thread_ids_in_first_seen_order(self):
        trace = Trace(make_simple_records())
        assert [int(t) for t in trace.thread_ids()] == [1, 4]

    def test_per_thread_sorting(self):
        # the Simulator's fig. 4 stage
        trace = Trace(make_simple_records())
        lists = trace.per_thread()
        assert set(int(t) for t in lists) == {1, 4}
        assert all(r.tid == tid for tid, lst in lists.items() for r in lst)

    def test_events_for(self):
        trace = Trace(make_simple_records())
        assert len(trace.events_for(ThreadId(4))) == 6

    def test_duration(self):
        trace = Trace(make_simple_records())
        assert trace.duration_us == 430

    def test_function_of_main(self):
        trace = Trace(make_simple_records())
        assert trace.function_of(MAIN_THREAD_ID) == "main"

    def test_function_of_child_from_meta(self):
        meta = TraceMeta(thread_functions={4: "worker"})
        trace = Trace(make_simple_records(), meta)
        assert trace.function_of(ThreadId(4)) == "worker"

    def test_stats(self):
        trace = Trace(make_simple_records())
        stats = trace.stats(serialized_bytes=1000)
        assert stats.n_events == 12
        assert stats.n_threads == 2
        assert stats.duration_us == 430
        assert stats.serialized_bytes == 1000
        assert stats.events_per_second == pytest.approx(12 / 430e-6)

    def test_empty_trace_ok(self):
        assert len(Trace([])) == 0


class TestTraceValidation:
    def test_per_thread_time_monotone(self):
        records = [
            rec(100, 1, Phase.CALL, Primitive.MUTEX_LOCK),
            rec(50, 1, Phase.RET, Primitive.MUTEX_LOCK),
        ]
        # sorting fixes global order, but then CALL/RET pairing fails
        with pytest.raises(TraceError):
            Trace(records)

    def test_nested_calls_rejected(self):
        records = [
            rec(0, 1, Phase.CALL, Primitive.MUTEX_LOCK),
            rec(1, 1, Phase.CALL, Primitive.SEMA_WAIT),
        ]
        with pytest.raises(TraceError):
            Trace(records)

    def test_ret_without_call_rejected(self):
        with pytest.raises(TraceError):
            Trace([rec(0, 1, Phase.RET, Primitive.MUTEX_LOCK)])

    def test_mismatched_ret_rejected(self):
        records = [
            rec(0, 1, Phase.CALL, Primitive.MUTEX_LOCK),
            rec(1, 1, Phase.RET, Primitive.MUTEX_UNLOCK),
        ]
        with pytest.raises(TraceError):
            Trace(records)

    def test_exit_inside_open_call_rejected(self):
        records = [
            rec(0, 1, Phase.CALL, Primitive.MUTEX_LOCK),
            rec(1, 1, Phase.CALL, Primitive.THR_EXIT),
        ]
        with pytest.raises(TraceError):
            Trace(records)

    def test_unknown_thread_rejected(self):
        # T9 has events but nobody created it
        records = [rec(0, 9, Phase.CALL, Primitive.THR_EXIT)]
        with pytest.raises(TraceError):
            Trace(records)

    def test_create_ret_without_target_rejected(self):
        records = [
            rec(0, 1, Phase.CALL, Primitive.THR_CREATE),
            rec(1, 1, Phase.RET, Primitive.THR_CREATE, status=Status.OK),
        ]
        with pytest.raises(TraceError):
            Trace(records)

    def test_validation_can_be_disabled(self):
        records = [rec(0, 9, Phase.CALL, Primitive.THR_EXIT)]
        trace = Trace(records, validate=False)
        assert len(trace) == 1

    def test_valid_trace_passes(self):
        Trace(make_simple_records())  # does not raise


class TestTryOutcomes:
    def test_try_outcomes_indexed_per_thread(self):
        m = SyncObjectId("mutex", "m")
        records = [
            rec(0, 1, Phase.CALL, Primitive.MUTEX_TRYLOCK, obj=m),
            rec(1, 1, Phase.RET, Primitive.MUTEX_TRYLOCK, obj=m, status=Status.OK),
            rec(2, 1, Phase.CALL, Primitive.MUTEX_TRYLOCK, obj=m),
            rec(3, 1, Phase.RET, Primitive.MUTEX_TRYLOCK, obj=m, status=Status.BUSY),
            rec(4, 1, Phase.CALL, Primitive.THR_EXIT),
        ]
        trace = Trace(records)
        outcomes = trace.try_outcomes()
        assert outcomes[(ThreadId(1), 0)] is Status.OK
        assert outcomes[(ThreadId(1), 1)] is Status.BUSY
