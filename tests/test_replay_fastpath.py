"""Differential parity suite for the compiled-plan replay fast path.

The opcode interpreter (``replay_engine="fast"``) must produce
**bit-identical** :class:`SimulationResult`\\ s to the legacy ``Step``
walker (``replay_engine="legacy"``) — same placed events, segments,
summaries, makespan, engine event count, and the same
:class:`Incompleteness` diagnosis when a run degrades.  Every test here
replays one plan through both engines and compares the results with
``==``.

One sharp edge the helpers guard against: ``SimulationResult.__eq__``
compares ``config``, and every separately-constructed :class:`SimConfig`
owns its own :class:`DispatchTable` (identity equality).  Both engines
must therefore share **one** config object per compared pair.
"""

from __future__ import annotations

import pytest

from repro import SimConfig, record_program
from repro.core.config import ThreadPolicy
from repro.core.engine import Watchdog
from repro.core.errors import SimulationError
from repro.core.predictor import ReplayPlan, compile_trace
from repro.core.result import RunStatus
from repro.core.simulator import Simulator
from repro.faultinject import drop_wakeups, skew_clock, stall_threads
from repro.recorder import logfile
from repro.workloads import get_workload

from tests.conftest import (
    make_barrier_program,
    make_fig2_program,
    make_mutex_program,
    make_prodcons_program,
)
from tests.test_watchdog import DEADLOCK_LOG


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def run_pair(plan: ReplayPlan, config: SimConfig, **sim_kw):
    """Replay *plan* under both engines with the SAME config object."""
    legacy = Simulator(config, **sim_kw).run_replay(plan, replay_engine="legacy")
    fast_sim = Simulator(config, **sim_kw)
    fast = fast_sim.run_replay(plan, replay_engine="fast")
    # the fast interpreter must actually have engaged, or the test
    # silently compares legacy against itself
    assert fast_sim._fast, "fast path fell back to legacy"
    return legacy, fast


def assert_parity(plan: ReplayPlan, config: SimConfig, **sim_kw) -> None:
    legacy, fast = run_pair(plan, config, **sim_kw)
    assert legacy == fast


def plan_for(program) -> ReplayPlan:
    return compile_trace(record_program(program).trace)


# ---------------------------------------------------------------------------
# fixtures: plans for a spread of workload shapes
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def prodcons_plan():
    return plan_for(make_prodcons_program())


@pytest.fixture(scope="module")
def barrier_plan():
    return plan_for(make_barrier_program())


@pytest.fixture(scope="module")
def mutex_plan():
    return plan_for(make_mutex_program())


@pytest.fixture(scope="module")
def fig2_plan():
    return plan_for(make_fig2_program())


# ---------------------------------------------------------------------------
# fixture workloads x machine grid
# ---------------------------------------------------------------------------


class TestFixtureParity:
    @pytest.mark.parametrize("cpus", [1, 2, 4])
    def test_prodcons(self, prodcons_plan, cpus):
        assert_parity(prodcons_plan, SimConfig(cpus=cpus))

    @pytest.mark.parametrize("cpus", [1, 2, 4])
    def test_barrier(self, barrier_plan, cpus):
        assert_parity(barrier_plan, SimConfig(cpus=cpus))

    @pytest.mark.parametrize("cpus", [1, 3])
    def test_mutex_hammer(self, mutex_plan, cpus):
        assert_parity(mutex_plan, SimConfig(cpus=cpus))

    def test_fig2(self, fig2_plan):
        assert_parity(fig2_plan, SimConfig(cpus=2))

    @pytest.mark.parametrize("name,nthreads,scale", [
        ("prodcons", 4, 0.05),
        ("fft", 4, 0.05),
        ("lu", 2, 0.02),
        ("radix", 4, 0.05),
        ("water", 2, 0.02),
        ("ocean", 2, 0.02),
    ])
    def test_splash_models(self, name, nthreads, scale):
        wl = get_workload(name)
        plan = compile_trace(record_program(wl.make_program(nthreads, scale)).trace)
        for cpus in (1, 4):
            assert_parity(plan, SimConfig(cpus=cpus))


class TestConfigGridParity:
    """Bindings, pinning, comm-delay, pool limits, FIFO scheduling."""

    @pytest.mark.parametrize("cpus", [1, 2])
    @pytest.mark.parametrize("comm_delay_us", [0, 40])
    def test_comm_delay_grid(self, prodcons_plan, cpus, comm_delay_us):
        assert_parity(
            prodcons_plan, SimConfig(cpus=cpus, comm_delay_us=comm_delay_us)
        )

    def test_bound_thread(self, prodcons_plan):
        cfg = SimConfig(cpus=2, thread_policies={4: ThreadPolicy(bound=True)})
        assert_parity(prodcons_plan, cfg)

    def test_pinned_thread(self, barrier_plan):
        cfg = SimConfig(cpus=2, thread_policies={4: ThreadPolicy(cpu=1)})
        assert_parity(barrier_plan, cfg)

    def test_rt_thread(self, barrier_plan):
        cfg = SimConfig(cpus=2, thread_policies={5: ThreadPolicy(rt_priority=10)})
        assert_parity(barrier_plan, cfg)

    def test_small_lwp_pool(self, prodcons_plan):
        assert_parity(prodcons_plan, SimConfig(cpus=2, lwps=1))

    def test_no_time_slicing(self, mutex_plan):
        assert_parity(mutex_plan, SimConfig(cpus=2, time_slicing=False))


class TestSchedulerBackendParity:
    """Each pluggable kernel backend keeps the fast path bit-identical
    to the legacy walker — the compiled interpreter dispatches through
    the same backend-bound mechanism hooks, so policy must never split
    the engines."""

    @pytest.mark.parametrize("scheduler", ["solaris", "clutch", "cfs"])
    @pytest.mark.parametrize("cpus", [1, 2, 4])
    def test_backend_grid(self, prodcons_plan, scheduler, cpus):
        assert_parity(prodcons_plan, SimConfig(cpus=cpus, scheduler=scheduler))

    @pytest.mark.parametrize("scheduler", ["clutch", "cfs"])
    def test_backend_with_rt_thread(self, barrier_plan, scheduler):
        cfg = SimConfig(
            cpus=2,
            scheduler=scheduler,
            thread_policies={5: ThreadPolicy(rt_priority=10)},
        )
        assert_parity(barrier_plan, cfg)

    @pytest.mark.parametrize("scheduler", ["clutch", "cfs"])
    def test_backend_small_pool_and_delay(self, prodcons_plan, scheduler):
        assert_parity(
            prodcons_plan,
            SimConfig(cpus=2, lwps=2, comm_delay_us=40, scheduler=scheduler),
        )


# ---------------------------------------------------------------------------
# perturbed / degraded traces
# ---------------------------------------------------------------------------


class TestPerturbedParity:
    def test_clock_skew(self, prodcons_plan):
        skewed = skew_clock(prodcons_plan, seed=7, max_skew=0.2)
        assert skewed.fast_replayable()
        assert_parity(skewed, SimConfig(cpus=2))

    def test_stalled_threads(self, barrier_plan):
        stalled = stall_threads(barrier_plan, seed=3, stall_us=20_000)
        assert stalled.fast_replayable()
        assert_parity(stalled, SimConfig(cpus=2))

    def test_dropped_wakeups_degrade_identically(self):
        """A trace missing wake-ups deadlocks (or worse) — both engines
        must diagnose the same Incompleteness at the same point."""
        trace = record_program(make_prodcons_program()).trace
        damaged = drop_wakeups(trace, seed=1, fraction=1.0).trace
        plan = compile_trace(damaged)
        cfg = SimConfig(cpus=2)
        legacy, fast = run_pair(plan, cfg, strict=False)
        assert legacy == fast
        assert legacy.incompleteness == fast.incompleteness

    def test_deadlock_diagnosis_identical(self):
        plan = compile_trace(logfile.loads(DEADLOCK_LOG))
        cfg = SimConfig(cpus=2)
        legacy, fast = run_pair(plan, cfg, strict=False)
        assert legacy == fast
        assert legacy.status is RunStatus.DEADLOCK
        assert legacy.incompleteness.cycle == fast.incompleteness.cycle


class TestWatchdogParity:
    """Budget trips must land on exactly the same engine event."""

    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.9])
    def test_event_budget_trips_identically(self, prodcons_plan, fraction):
        full = Simulator(SimConfig(cpus=2)).run_replay(prodcons_plan)
        max_events = int(full.engine_events * fraction)
        cfg = SimConfig(cpus=2)
        legacy, fast = run_pair(
            prodcons_plan, cfg,
            watchdog=Watchdog(max_events=max_events), strict=False,
        )
        assert legacy == fast
        assert legacy.status is RunStatus.BUDGET
        assert legacy.engine_events == fast.engine_events

    def test_simulated_time_budget_trips_identically(self, barrier_plan):
        cfg = SimConfig(cpus=2)
        legacy, fast = run_pair(
            barrier_plan, cfg,
            watchdog=Watchdog(max_time_us=5_000), strict=False,
        )
        assert legacy == fast
        assert legacy.status is RunStatus.BUDGET


# ---------------------------------------------------------------------------
# engine selection and fallback
# ---------------------------------------------------------------------------


class TestEngineSelection:
    def test_fast_is_the_default(self, fig2_plan, monkeypatch):
        monkeypatch.delenv("VPPB_REPLAY", raising=False)
        sim = Simulator(SimConfig(cpus=2))
        sim.run_replay(fig2_plan)
        assert sim._fast

    def test_env_selects_legacy(self, fig2_plan, monkeypatch):
        monkeypatch.setenv("VPPB_REPLAY", "legacy")
        sim = Simulator(SimConfig(cpus=2))
        sim.run_replay(fig2_plan)
        assert not sim._fast

    def test_argument_overrides_env(self, fig2_plan, monkeypatch):
        monkeypatch.setenv("VPPB_REPLAY", "legacy")
        sim = Simulator(SimConfig(cpus=2))
        sim.run_replay(fig2_plan, replay_engine="fast")
        assert sim._fast

    def test_unknown_engine_rejected(self, fig2_plan):
        sim = Simulator(SimConfig(cpus=2))
        with pytest.raises(SimulationError, match="unknown replay engine"):
            sim.run_replay(fig2_plan, replay_engine="turbo")

    def test_mutated_plan_falls_back(self, fig2_plan):
        """In-place step mutation invalidates the lowering; the fast
        request silently degrades to the (correct) object walker."""
        plan = compile_trace(record_program(make_fig2_program()).trace)
        steps = plan.steps[1]
        steps.append(steps[-1])
        assert not plan.fast_replayable()
        sim = Simulator(SimConfig(cpus=1))
        sim.run_replay(plan, replay_engine="fast")  # must not raise
        assert not sim._fast

    def test_event_count_matches_total_steps(self, prodcons_plan):
        assert prodcons_plan.event_count == prodcons_plan.total_steps()
        assert prodcons_plan.event_count > 0
