"""Service resilience: breaker, backoff, admission, deadlines, shutdown.

Three layers under test:

* the :mod:`repro.jobs.resilience` primitives in isolation (fake
  clocks, seeded RNGs — no sleeping, no sockets);
* the engine/cache integration (breaker-open outcomes, corrupt-entry
  quarantine, streaming salvage parity);
* the asyncio front end over a real socket: shedding, body caps,
  deadline envelopes, graceful drain, and a chaos case that kills real
  pool workers mid-request via the faultinject crash sentinel.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro import SimConfig, record_program
from repro.jobs.cache import ResultCache
from repro.jobs.client import ClientError, ServiceClient
from repro.jobs.engine import JobEngine
from repro.jobs.model import JobOutcome, SimJob, TraceRef
from repro.jobs.resilience import (
    AdmissionGate,
    CircuitBreaker,
    Deadline,
    backoff_delays,
    retry_call,
)
from repro.jobs.service import (
    DeadlineExceeded,
    PredictionService,
    ServiceError,
    default_max_body_bytes,
)
from repro.jobs.service_async import BackgroundServer
from repro.jobs.worker import CRASH_SENTINEL
from repro.recorder import logfile
from repro.recorder.salvage import SalvageLimitError, SalvageStream, salvage_loads
from tests.conftest import make_prodcons_program


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture(scope="module")
def trace():
    return record_program(make_prodcons_program()).trace


@pytest.fixture(scope="module")
def log_text(trace):
    return logfile.dumps(trace)


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=3, cooldown_s=5.0, clock=clock)
        b.record_failure()
        b.record_failure()
        b.record_success()  # success resets the streak
        b.record_failure()
        b.record_failure()
        assert b.state == "closed" and b.allow()
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        assert b.trips == 1

    def test_cooldown_then_half_open_probe(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        b.record_failure()
        assert b.reject_for() == pytest.approx(5.0)
        clock.advance(4.9)
        assert not b.allow()
        clock.advance(0.2)
        assert b.state == "half-open"
        assert b.allow()  # the single probe slot
        assert not b.allow()  # second caller must wait for the probe
        b.record_success()
        assert b.state == "closed"
        assert b.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        b.record_failure()
        clock.advance(5.1)
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        assert b.trips == 2
        assert not b.allow()

    def test_snapshot_is_json_safe(self):
        b = CircuitBreaker(failure_threshold=2, cooldown_s=1.0)
        snap = b.snapshot()
        json.dumps(snap)
        assert snap["state"] == "closed"
        assert snap["failure_threshold"] == 2


class TestBackoff:
    def test_deterministic_with_seeded_rng(self):
        import random

        a = list(backoff_delays(5, base_s=0.1, cap_s=2.0, rng=random.Random(7)))
        b = list(backoff_delays(5, base_s=0.1, cap_s=2.0, rng=random.Random(7)))
        assert a == b
        assert len(a) == 4  # attempts - 1 sleeps

    def test_delays_bounded_by_doubling_cap(self):
        import random

        delays = list(backoff_delays(8, base_s=0.5, cap_s=3.0, rng=random.Random(1)))
        for n, d in enumerate(delays):
            assert 0.0 <= d <= min(3.0, 0.5 * (2 ** n))

    def test_retry_call_retries_then_succeeds(self):
        calls = []
        sleeps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        result = retry_call(
            flaky, attempts=4, base_s=0.01, sleep=sleeps.append,
        )
        assert result == "done"
        assert len(calls) == 3
        assert len(sleeps) == 2

    def test_retry_call_exhaustion_raises_last_error(self):
        def always():
            raise ValueError("nope")

        with pytest.raises(ValueError, match="nope"):
            retry_call(always, attempts=3, base_s=0.0, sleep=lambda _: None)

    def test_retry_call_respects_retry_on(self):
        def boom():
            raise KeyError("fatal")

        calls = []
        with pytest.raises(KeyError):
            retry_call(
                boom,
                attempts=5,
                retry_on=(OSError,),
                sleep=calls.append,
            )
        assert calls == []  # non-retryable: no sleeps, one attempt


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        d = Deadline(2.0, clock=clock)
        assert d.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert d.remaining() == pytest.approx(0.5)
        assert not d.expired
        clock.advance(1.0)
        assert d.expired
        assert d.remaining() == 0.0

    def test_unbounded(self):
        d = Deadline.after(None)
        assert d.remaining() is None
        assert not d.expired


class TestAdmissionGate:
    def test_sheds_past_watermark(self):
        gate = AdmissionGate(2, retry_after_s=3.0)
        assert gate.try_enter() and gate.try_enter()
        assert not gate.try_enter()
        assert gate.shed == 1 and gate.admitted == 2
        gate.leave()
        assert gate.try_enter()
        assert gate.headroom == 0
        snap = gate.snapshot()
        assert snap == {
            "capacity": 2, "in_flight": 2, "admitted": 3, "shed": 1,
        }


# ----------------------------------------------------------------------
# cache quarantine + streaming salvage
# ----------------------------------------------------------------------


class TestCacheQuarantine:
    def _outcome(self, fp: str) -> JobOutcome:
        return JobOutcome(fingerprint=fp, status="complete", makespan_us=10)

    def test_corrupt_entry_quarantined_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = "ab" * 32
        cache.put(self._outcome(fp))
        path = tmp_path / fp[:2] / f"{fp}.json"
        path.write_text("{not json", encoding="utf-8")
        fresh = ResultCache(tmp_path)  # separate LRU: forces the disk read
        assert fresh.get(fp) is None
        assert fresh.corrupt_quarantined == 1
        assert not path.exists()
        assert (tmp_path / "corrupt" / path.name).exists()
        assert fresh.stats()["corrupt_quarantined"] == 1

    def test_fingerprint_mismatch_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp_a, fp_b = "aa" * 32, "bb" * 32
        cache.put(self._outcome(fp_a))
        src = tmp_path / fp_a[:2] / f"{fp_a}.json"
        dest = tmp_path / fp_b[:2] / f"{fp_b}.json"
        dest.parent.mkdir(parents=True, exist_ok=True)
        src.rename(dest)
        fresh = ResultCache(tmp_path)
        assert fresh.get(fp_b) is None
        assert fresh.corrupt_quarantined == 1

    def test_flush_rewrites_entries_the_disk_lost(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = "cd" * 32
        cache.put(self._outcome(fp))
        path = tmp_path / fp[:2] / f"{fp}.json"
        path.unlink()
        assert cache.flush() == 1
        assert path.exists()
        assert cache.flush() == 0  # idempotent once disk is complete


class TestSalvageStream:
    def test_chunked_feed_matches_one_shot(self, log_text):
        whole = salvage_loads(log_text)
        stream = SalvageStream(source="chunked")
        data = log_text.encode("utf-8")
        for i in range(0, len(data), 37):  # awkward chunk size on purpose
            stream.feed(data[i : i + 37])
        result = stream.finish()
        assert result.trace.fingerprint() == whole.trace.fingerprint()
        assert result.report.records_kept == whole.report.records_kept
        assert result.report.clean == whole.report.clean

    def test_damaged_log_still_salvages_incrementally(self, log_text):
        from repro.faultinject import corrupt

        bad = corrupt(log_text, "truncate", seed=3)
        whole = salvage_loads(bad)
        stream = SalvageStream()
        stream.feed(bad.encode("utf-8"))
        result = stream.finish()
        assert result.report.records_kept == whole.report.records_kept

    def test_byte_cap_raises_mid_stream(self, log_text):
        stream = SalvageStream(max_bytes=100)
        with pytest.raises(SalvageLimitError) as err:
            stream.feed(log_text.encode("utf-8"))
        assert err.value.limit == 100
        assert err.value.seen > 100

    def test_split_multibyte_utf8_across_chunks(self):
        stream = SalvageStream(validate=False)
        text = "#vppb-log v1\n# café ☃\n"
        data = text.encode("utf-8")
        for i in range(len(data)):  # one byte at a time
            stream.feed(data[i : i + 1])
        result = stream.finish()
        assert result.report.total_lines == 2

    @pytest.mark.parametrize("sep", ["\r", "\r\n", "\x85", "\u2028"])
    def test_alternative_line_separators_match_newline(self, sep, log_text):
        """CR-only, CRLF and unicode-separated logs salvage identically
        to the plain-\\n version (str.splitlines parity)."""
        base = salvage_loads(log_text)
        result = salvage_loads(log_text.replace("\n", sep))
        assert result.trace.fingerprint() == base.trace.fingerprint()
        assert result.report.records_kept == base.report.records_kept

    def test_crlf_split_across_chunk_boundary(self, log_text):
        base = salvage_loads(log_text)
        data = log_text.replace("\n", "\r\n").encode("utf-8")
        stream = SalvageStream()
        for i in range(0, len(data), 7):  # guarantees split \r|\n pairs
            stream.feed(data[i : i + 7])
        result = stream.finish()
        assert result.trace.fingerprint() == base.trace.fingerprint()
        assert result.report.records_kept == base.report.records_kept


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------


class TestEngineBreaker:
    def test_open_breaker_rejects_without_submitting(self, trace):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0, clock=clock)
        breaker.record_failure()
        engine = JobEngine(mode="process", workers=1, breaker=breaker)
        job = SimJob.for_trace(trace, SimConfig(cpus=2), label="cell")
        outcomes = engine.run([job], use_cache=False)
        engine.close()
        assert outcomes[0].status == JobOutcome.BREAKER_OPEN
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 0
        assert "breaker" in outcomes[0].error
        assert engine.metrics.jobs_rejected_breaker == 1
        assert engine.metrics.jobs_submitted == 0

    def test_breaker_disabled_with_false(self):
        engine = JobEngine(mode="inline", breaker=False)
        assert engine.breaker is None
        engine.close()

    def test_crash_storm_trips_breaker(self, trace):
        engine = JobEngine(
            mode="process",
            workers=1,
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=60.0),
        )
        crash = SimJob(
            trace=TraceRef(fingerprint="c" * 64, text=CRASH_SENTINEL),
            config=SimConfig(cpus=2),
            label="crash",
        )
        outcomes = engine.run([crash], use_cache=False)
        engine.close()
        # one job, two crashing attempts -> threshold reached
        assert outcomes[0].status == JobOutcome.CRASHED
        assert engine.breaker.state == "open"
        assert engine.snapshot()["breaker"]["state"] == "open"


# ----------------------------------------------------------------------
# service core (no sockets)
# ----------------------------------------------------------------------


class TestServiceCore:
    def test_breaker_open_maps_to_503_with_retry_after(self, log_text):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0, clock=clock)
        breaker.record_failure()
        engine = JobEngine(mode="inline", breaker=breaker)
        service = PredictionService(engine)
        with pytest.raises(ServiceError) as err:
            service.predict({"log": log_text})
        engine.close()
        assert err.value.status == 503
        assert err.value.retry_after_s == pytest.approx(30.0)
        assert err.value.body()["breaker"]["state"] == "open"

    def test_breaker_refused_cells_are_503_even_after_probe_closes(
        self, log_text
    ):
        """Half-open breaker + multi-cell grid: the probe succeeds (and
        closes the breaker) while the other cells come back
        BREAKER_OPEN.  That refusal is transient, so it must surface as
        a retryable 503, never a 422 client error."""
        engine = JobEngine(mode="inline")  # breaker closed: probe succeeded
        service = PredictionService(engine)

        def fake_makespans(ref, configs, labels=None, budget=None):
            fp = "f" * 64
            return [
                JobOutcome(fingerprint=fp, status="complete",
                           makespan_us=1000, label=labels[0]),
                JobOutcome(fingerprint=fp, status=JobOutcome.BREAKER_OPEN,
                           error="circuit breaker open", label=labels[1]),
                JobOutcome(fingerprint=fp, status=JobOutcome.BREAKER_OPEN,
                           error="circuit breaker open", label=labels[2]),
            ]

        engine.makespans = fake_makespans
        with pytest.raises(ServiceError) as err:
            service.predict({"log": log_text, "cpus": [2, 4]}, deadline_s=5.0)
        engine.close()
        assert err.value.status == 503
        assert err.value.retry_after_s is not None

    def test_deadline_partial_becomes_504_envelope(self, trace, log_text):
        engine = JobEngine(mode="inline")
        service = PredictionService(engine)

        def fake_makespans(ref, configs, labels=None, budget=None):
            assert budget[1] == pytest.approx(0.5)
            fp = "f" * 64
            return [
                JobOutcome(fingerprint=fp, status="complete",
                           makespan_us=1000, label=labels[0]),
                JobOutcome(fingerprint=fp, status="complete",
                           makespan_us=400, label=labels[1]),
                JobOutcome(fingerprint=fp, status="budget-exhausted",
                           makespan_us=250, engine_events=77,
                           reason="wall budget exhausted", label=labels[2]),
            ]

        engine.makespans = fake_makespans
        with pytest.raises(DeadlineExceeded) as err:
            service.predict({"log": log_text, "cpus": [2, 4]}, deadline_s=0.5)
        engine.close()
        partial = err.value.partial
        assert partial["deadline_s"] == 0.5
        assert [p["cpus"] for p in partial["predictions"]] == [2]
        assert partial["predictions"][0]["speedup"] == pytest.approx(2.5)
        assert partial["incomplete"][0]["status"] == "budget-exhausted"
        assert partial["incomplete"][0]["engine_events"] == 77
        assert service.deadline_timeouts == 1

    def test_deadline_complete_inside_budget_is_normal_200(self, log_text):
        engine = JobEngine(mode="inline")
        service = PredictionService(engine)
        payload = service.predict({"log": log_text, "cpus": [2]}, deadline_s=60.0)
        engine.close()
        assert len(payload["predictions"]) == 1
        assert payload["predictions"][0]["speedup"] > 1.0

    def test_default_max_body_bytes_env(self, monkeypatch):
        monkeypatch.setenv("VPPB_MAX_BODY_BYTES", "1234")
        assert default_max_body_bytes() == 1234
        monkeypatch.setenv("VPPB_MAX_BODY_BYTES", "bogus")
        assert default_max_body_bytes() == 64 * 1024 * 1024
        monkeypatch.delenv("VPPB_MAX_BODY_BYTES")
        assert default_max_body_bytes() == 64 * 1024 * 1024


# ----------------------------------------------------------------------
# the asyncio front end, over a real socket
# ----------------------------------------------------------------------


def _request(port, method, path, body=None, headers=None, timeout=15.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else {}, dict(
            response.getheaders()
        )
    finally:
        conn.close()


class TestAsyncService:
    @pytest.fixture()
    def inline_service(self):
        engine = JobEngine(mode="inline")
        service = PredictionService(engine, max_body_bytes=512 * 1024)
        yield service
        engine.close()

    def test_upload_predict_roundtrip_and_health(self, inline_service, log_text):
        with BackgroundServer(inline_service, max_inflight=4) as bg:
            status, body, _ = _request(bg.port, "GET", "/healthz/live")
            assert (status, body["status"]) == (200, "ok")
            status, body, _ = _request(bg.port, "GET", "/healthz/ready")
            assert (status, body["status"]) == (200, "ready")
            status, up, _ = _request(bg.port, "POST", "/traces", body=log_text)
            assert status == 200 and up["salvage"]["clean"]
            status, pred, _ = _request(
                bg.port, "POST", "/predict",
                body=json.dumps({"trace": up["trace"], "cpus": [2]}),
            )
            assert status == 200
            assert pred["predictions"][0]["speedup"] > 1.0
            status, metrics, _ = _request(bg.port, "GET", "/metrics")
            assert metrics["service"]["streamed_uploads"] == 1
            assert metrics["async"]["admission"]["capacity"] == 4

    def test_damaged_upload_salvages_with_repair_counts(
        self, inline_service, log_text
    ):
        from repro.faultinject import corrupt

        bad = corrupt(log_text, "truncate", seed=5)
        with BackgroundServer(inline_service) as bg:
            status, up, _ = _request(bg.port, "POST", "/traces", body=bad)
            assert status == 200
            assert not up["salvage"]["clean"]
            assert up["salvage"]["records_kept"] > 0

    def test_oversize_body_is_413_both_framings(self, inline_service):
        with BackgroundServer(inline_service) as bg:
            # Content-Length framing: rejected before reading the body
            status, body, _ = _request(
                bg.port, "POST", "/traces",
                headers={"Content-Length": str(600 * 1024)},
            )
            assert status == 413 and "cap" in body
            # chunked framing: rejected mid-stream
            conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=15)
            conn.putrequest("POST", "/traces")
            conn.putheader("Transfer-Encoding", "chunked")
            conn.endheaders()
            blob = b"#" * 65536
            for _ in range(12):  # 768 KiB > the 512 KiB cap
                try:
                    conn.send(b"%x\r\n%s\r\n" % (len(blob), blob))
                except (BrokenPipeError, ConnectionResetError):
                    break  # server already slammed the door: fine
            try:
                response = conn.getresponse()
                assert response.status == 413
            except (http.client.HTTPException, ConnectionError):
                pass  # ditto — never a hung connection
            finally:
                conn.close()
            status, metrics, _ = _request(bg.port, "GET", "/metrics")
            assert metrics["service"]["bodies_rejected"] >= 2

    def test_shed_429_with_retry_after_under_saturation(
        self, inline_service, log_text
    ):
        release = threading.Event()
        real_predict = inline_service.predict

        def slow_predict(request, *, deadline_s=None):
            release.wait(10.0)
            return real_predict(request, deadline_s=deadline_s)

        inline_service.predict = slow_predict
        body = json.dumps({"log": log_text, "cpus": [2]})
        results = []

        def fire():
            results.append(_request(bg.port, "POST", "/predict", body=body))

        with BackgroundServer(inline_service, max_inflight=2) as bg:
            threads = [threading.Thread(target=fire) for _ in range(6)]
            for t in threads:
                t.start()
            deadline = time.time() + 5.0
            while time.time() < deadline:
                _, metrics, _ = _request(bg.port, "GET", "/metrics")
                if metrics["service"]["requests_shed"] >= 4:
                    break
                time.sleep(0.05)
            release.set()
            for t in threads:
                t.join(timeout=15.0)
            statuses = sorted(s for s, _, _ in results)
            assert statuses == [200, 200, 429, 429, 429, 429]
            shed = [
                (b, h) for s, b, h in results if s == 429
            ]
            for body_json, headers in shed:
                assert "Retry-After" in headers
                assert "capacity" in body_json["error"]
            # after the burst the server still admits work
            status, ready, _ = _request(bg.port, "GET", "/healthz/ready")
            assert status == 200 and ready["status"] == "ready"

    def test_error_with_unread_body_closes_keepalive_connection(
        self, inline_service, log_text
    ):
        """An error sent before the request body was read (404 here)
        must close the connection: leftover body bytes would otherwise
        be parsed as the next request line, desyncing the stream."""
        with BackgroundServer(inline_service) as bg:
            conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=15)
            try:
                body = json.dumps({"log": log_text}).encode("utf-8")
                conn.request("POST", "/nope", body=body)
                response = conn.getresponse()
                assert response.status == 404
                assert response.getheader("Connection") == "close"
                response.read()
            finally:
                conn.close()
            # a fully-read body keeps the connection reusable: a second
            # request on the same socket must not see a desynced stream
            conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=15)
            try:
                conn.request(
                    "POST", "/predict",
                    body=json.dumps({"log": log_text, "cpus": [2]}),
                )
                first = conn.getresponse()
                assert first.status == 200
                assert first.getheader("Connection") == "keep-alive"
                first.read()
                conn.request("GET", "/metrics")
                second = conn.getresponse()
                assert second.status == 200
                json.loads(second.read())
            finally:
                conn.close()

    def test_shed_429_with_unread_body_closes_connection(
        self, inline_service, log_text
    ):
        release = threading.Event()
        real_predict = inline_service.predict

        def slow_predict(request, *, deadline_s=None):
            release.wait(10.0)
            return real_predict(request, deadline_s=deadline_s)

        inline_service.predict = slow_predict
        body = json.dumps({"log": log_text, "cpus": [2]})
        with BackgroundServer(inline_service, max_inflight=1) as bg:
            t = threading.Thread(
                target=_request,
                args=(bg.port, "POST", "/predict"),
                kwargs={"body": body},
            )
            t.start()
            deadline = time.time() + 5.0
            while time.time() < deadline:  # wait for the slot to fill
                _, m, _ = _request(bg.port, "GET", "/metrics")
                if m["async"]["admission"]["in_flight"] >= 1:
                    break
                time.sleep(0.05)
            conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=15)
            try:
                conn.request("POST", "/predict", body=body)
                response = conn.getresponse()
                # shed before the body was read -> must not stay open
                assert response.status == 429
                assert response.getheader("Connection") == "close"
                response.read()
            finally:
                conn.close()
            release.set()
            t.join(timeout=15.0)

    def test_hard_timeout_holds_slot_until_thread_ends(
        self, inline_service, log_text
    ):
        """After a hard 504 the simulation thread is still running; its
        admission slot stays held (new work sheds as 429) until the
        thread really finishes, so wedged requests can never exhaust
        the executor."""
        release = threading.Event()

        def wedged(request, *, deadline_s=None):
            release.wait(10.0)
            return {}

        inline_service.predict = wedged
        body = json.dumps({"log": log_text, "deadline_s": 0.1})
        with BackgroundServer(inline_service, max_inflight=1) as bg:
            status, _, _ = _request(bg.port, "POST", "/predict", body=body)
            assert status == 504
            # the wedged thread still owns the only slot
            status, _, _ = _request(bg.port, "POST", "/predict", body=body)
            assert status == 429
            _, m, _ = _request(bg.port, "GET", "/metrics")
            assert m["async"]["abandoned_workers"] == 1
            assert m["async"]["admission"]["in_flight"] == 1
            release.set()  # the thread ends; the slot frees
            deadline = time.time() + 5.0
            while time.time() < deadline:
                _, m, _ = _request(bg.port, "GET", "/metrics")
                if m["async"]["admission"]["in_flight"] == 0:
                    break
                time.sleep(0.05)
            assert m["async"]["admission"]["in_flight"] == 0
            assert m["async"]["abandoned_workers"] == 0

    def test_hard_timeout_maps_to_504(self, inline_service, log_text):
        def wedged(request, *, deadline_s=None):
            time.sleep(5.0)
            return {}

        inline_service.predict = wedged
        with BackgroundServer(inline_service) as bg:
            status, body, headers = _request(
                bg.port, "POST", "/predict",
                body=json.dumps({"log": log_text, "deadline_s": 0.2}),
            )
            assert status == 504
            assert "deadline" in body["error"]
            assert "Retry-After" in headers
            _, metrics, _ = _request(bg.port, "GET", "/metrics")
            assert metrics["async"]["hard_timeouts"] == 1

    def test_watchdog_partial_maps_to_504_with_envelope(
        self, inline_service, log_text
    ):
        real_predict = inline_service.predict

        def partial_predict(request, *, deadline_s=None):
            raise DeadlineExceeded(
                "deadline exceeded",
                partial={"predictions": [], "incomplete": [{"label": "2cpu"}]},
            )

        inline_service.predict = partial_predict
        with BackgroundServer(inline_service) as bg:
            status, body, _ = _request(
                bg.port, "POST", "/predict", body=json.dumps({"log": log_text}),
            )
            assert status == 504
            assert body["partial"]["incomplete"][0]["label"] == "2cpu"
        inline_service.predict = real_predict

    def test_internal_error_is_json_never_traceback(self, inline_service):
        def boom(request, *, deadline_s=None):
            raise RuntimeError("kaboom")

        inline_service.predict = boom
        with BackgroundServer(inline_service) as bg:
            status, body, _ = _request(
                bg.port, "POST", "/predict", body=b"{}",
            )
            assert status == 500
            assert body["error"].startswith("internal error: RuntimeError")
            assert "Traceback" not in json.dumps(body)

    def test_graceful_shutdown_drains_inflight(self, inline_service, log_text):
        release = threading.Event()
        real_predict = inline_service.predict

        def slow_predict(request, *, deadline_s=None):
            release.wait(10.0)
            return real_predict(request, deadline_s=deadline_s)

        inline_service.predict = slow_predict
        bg = BackgroundServer(inline_service, drain_timeout_s=10.0)
        bg.__enter__()
        result = {}

        def fire():
            result["response"] = _request(
                bg.port, "POST", "/predict",
                body=json.dumps({"log": log_text, "cpus": [2]}),
            )

        t = threading.Thread(target=fire)
        t.start()
        deadline = time.time() + 5.0
        while time.time() < deadline:  # wait until the request is in flight
            _, metrics, _ = _request(bg.port, "GET", "/metrics")
            if metrics["async"]["admission"]["in_flight"] >= 1:
                break
            time.sleep(0.05)
        threading.Timer(0.3, release.set).start()
        report = bg.stop()  # blocks: drain must outlast the in-flight request
        t.join(timeout=15.0)
        status, _, _ = result["response"]
        assert status == 200
        assert report["drained"] is True
        assert report["abandoned_inflight"] == 0

    def test_shutdown_flushes_cache(self, tmp_path, log_text):
        engine = JobEngine(mode="inline", cache=ResultCache(tmp_path))
        service = PredictionService(engine)
        with BackgroundServer(service) as bg:
            status, _, _ = _request(
                bg.port, "POST", "/predict",
                body=json.dumps({"log": log_text, "cpus": [2]}),
            )
            assert status == 200
            # simulate the disk losing an entry while we run
            lost = [
                p for p in tmp_path.rglob("*.json")
                if p.parent.name != "corrupt"
            ]
            assert lost
            lost[0].unlink()
        report = bg.stop()
        engine.close()
        assert report["cache_entries_flushed"] == 1

    def test_chaos_worker_crashes_trip_breaker_then_recover(self, log_text):
        """Kill real pool workers mid-request; the server answers every
        request with a well-formed status and recovers once faults stop."""
        engine = JobEngine(
            mode="process",
            workers=2,
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=0.5),
        )
        service = PredictionService(engine)
        trace = logfile.loads(log_text)
        real_resolve = service._resolve_trace

        def chaos_resolve(request):
            if request.get("log") == "CRASH":
                return (
                    TraceRef(fingerprint="c" * 64, text=CRASH_SENTINEL),
                    trace,
                )
            return real_resolve(request)

        service._resolve_trace = chaos_resolve
        try:
            with BackgroundServer(service, max_inflight=4) as bg:
                # requests that murder their workers -> 422/503, never 500
                crash_body = json.dumps({"log": "CRASH", "cpus": [2]})
                statuses = []
                for _ in range(3):
                    status, body, _ = _request(
                        bg.port, "POST", "/predict", body=crash_body, timeout=60
                    )
                    statuses.append(status)
                    assert status in (422, 503), body
                    assert "error" in body
                assert 503 in statuses  # the breaker tripped mid-storm
                # while open, readiness flips and Retry-After is advertised
                status, ready, headers = _request(
                    bg.port, "GET", "/healthz/ready"
                )
                if status == 503:
                    assert "circuit breaker open" in ready["reasons"]
                # faults stop; after the cooldown the probe heals the service
                good_body = json.dumps({"log": log_text, "cpus": [2]})
                recovered = False
                deadline = time.time() + 20.0
                while time.time() < deadline:
                    status, body, _ = _request(
                        bg.port, "POST", "/predict", body=good_body, timeout=60
                    )
                    assert status in (200, 422, 503), body
                    if status == 200:
                        recovered = True
                        break
                    time.sleep(0.3)
                assert recovered, "service never recovered after faults stopped"
                _, metrics, _ = _request(bg.port, "GET", "/metrics")
                assert metrics["worker_crashes"] >= 2
                assert metrics["breaker"]["trips"] >= 1
        finally:
            engine.close()


# ----------------------------------------------------------------------
# the client
# ----------------------------------------------------------------------


class TestServiceClient:
    def test_retries_429_honouring_retry_after_then_gives_up(
        self, log_text
    ):
        engine = JobEngine(mode="inline")
        service = PredictionService(engine)
        release = threading.Event()
        real_predict = service.predict

        def slow_predict(request, *, deadline_s=None):
            release.wait(10.0)
            return real_predict(request, deadline_s=deadline_s)

        service.predict = slow_predict
        sleeps = []
        try:
            with BackgroundServer(
                service, max_inflight=1, retry_after_s=2.0
            ) as bg:
                # occupy the only slot
                t = threading.Thread(
                    target=_request,
                    args=(bg.port, "POST", "/predict"),
                    kwargs={"body": json.dumps({"log": log_text})},
                )
                t.start()
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    _, m, _ = _request(bg.port, "GET", "/metrics")
                    if m["async"]["admission"]["in_flight"] >= 1:
                        break
                    time.sleep(0.05)
                client = ServiceClient(
                    port=bg.port, attempts=3, sleep=sleeps.append
                )
                with pytest.raises(ClientError) as err:
                    client.predict(log=log_text, cpus=[2])
                assert err.value.status == 429
                assert err.value.attempts == 3
                assert client.retries == 2
                # Retry-After (2s) dominates the jittered backoff
                assert all(s >= 2.0 for s in sleeps)
                release.set()
                t.join(timeout=15.0)
        finally:
            engine.close()

    def test_upload_and_predict_roundtrip(self, tmp_path, log_text):
        engine = JobEngine(mode="inline")
        service = PredictionService(engine)
        log_path = tmp_path / "prodcons.log"
        log_path.write_text(log_text, encoding="utf-8")
        try:
            with BackgroundServer(service) as bg:
                client = ServiceClient(port=bg.port)
                up = client.upload_trace(log_path, stream=True)
                assert up["salvage"]["clean"]
                payload = client.predict(trace=up["trace"], cpus=[2, 4])
                assert [p["cpus"] for p in payload["predictions"]] == [2, 4]
                assert client.alive()
                assert client.ready()["status"] == "ready"
        finally:
            engine.close()

    def test_connection_refused_retries_then_raises(self):
        sleeps = []
        client = ServiceClient(
            port=1, attempts=3, sleep=sleeps.append, timeout_s=1.0
        )
        with pytest.raises(ClientError, match="cannot reach"):
            client.metrics()
        assert len(sleeps) == 2

    def test_plain_generator_upload_gets_single_attempt(self):
        """A one-shot generator cannot be replayed: retrying it would
        silently send an empty chunked body, so the client must fail
        after the first attempt instead."""
        sleeps = []
        client = ServiceClient(
            port=1, attempts=4, sleep=sleeps.append, timeout_s=1.0
        )

        def chunk_gen():
            yield b"# vppb-log v1\n"

        with pytest.raises(ClientError) as err:
            client.request("POST", "/traces", chunks=chunk_gen())
        assert err.value.attempts == 1
        assert client.retries == 0
        assert sleeps == []

    def test_4xx_is_not_retried(self, log_text):
        engine = JobEngine(mode="inline")
        service = PredictionService(engine)
        sleeps = []
        try:
            with BackgroundServer(service) as bg:
                client = ServiceClient(port=bg.port, sleep=sleeps.append)
                with pytest.raises(ClientError) as err:
                    client.predict(trace="0" * 64)
                assert err.value.status == 404
                assert sleeps == []
        finally:
            engine.close()
