"""Tests for the before/after comparison and the Chrome trace export."""

import json

import pytest

from repro import SimConfig, predict, record_program
from repro.analysis import compare_results, format_comparison
from repro.core.ids import SyncObjectId
from repro.visualizer import save_chrome_trace, to_chrome_trace
from repro.workloads.prodcons import make_naive, make_tuned
from tests.conftest import make_fig2_program


@pytest.fixture(scope="module")
def before_after():
    """The §5 pair: naive and tuned producer-consumer on 8 CPUs."""
    before = predict(record_program(make_naive(scale=0.05)).trace, SimConfig(cpus=8))
    after = predict(record_program(make_tuned(scale=0.05)).trace, SimConfig(cpus=8))
    return before, after


class TestCompare:
    def test_tuning_improves_makespan(self, before_after):
        before, after = before_after
        report = compare_results(before, after)
        assert report.improvement > 0.5  # the fix is dramatic
        assert report.speedup_of_change > 2.0

    def test_buffer_mutex_is_the_biggest_win(self, before_after):
        report = compare_results(*before_after)
        win = report.biggest_win()
        assert win is not None
        assert win.obj == SyncObjectId("mutex", "buffer")
        assert win.after_blocked_us == 0  # the object is gone entirely

    def test_utilisation_rises(self, before_after):
        report = compare_results(*before_after)
        assert report.after_utilisation > report.before_utilisation

    def test_identical_runs_report_no_change(self):
        res = predict(record_program(make_fig2_program(1_000)).trace, SimConfig(cpus=2))
        report = compare_results(res, res)
        assert report.improvement == 0.0
        assert report.biggest_win() is None
        assert report.biggest_regression() is None

    def test_different_machines_rejected(self, before_after):
        before, _ = before_after
        other = predict(
            record_program(make_fig2_program(1_000)).trace, SimConfig(cpus=2)
        )
        with pytest.raises(ValueError):
            compare_results(before, other)

    def test_format_mentions_the_change(self, before_after):
        report = compare_results(*before_after)
        text = format_comparison(report)
        assert "makespan" in text and "mutex:buffer" in text
        assert "utilisation" in text


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def result(self):
        return predict(record_program(make_fig2_program(10_000)).trace, SimConfig(cpus=2))

    def test_valid_json_with_expected_phases(self, result):
        doc = json.loads(to_chrome_trace(result))
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "C"} <= phases

    def test_thread_names_exported(self, result):
        doc = json.loads(to_chrome_trace(result))
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "T1 main" in names and "T4 thread" in names

    def test_running_segments_cover_cpu_time(self, result):
        doc = json.loads(to_chrome_trace(result))
        total_dur = sum(
            e["dur"]
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "running"
        )
        assert total_dur == result.total_cpu_time_us()

    def test_parallelism_counters_present(self, result):
        doc = json.loads(to_chrome_trace(result))
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert all({"running", "runnable"} <= set(c["args"]) for c in counters)

    def test_library_calls_carry_args(self, result):
        doc = json.loads(to_chrome_trace(result))
        joins = [
            e
            for e in doc["traceEvents"]
            if e.get("cat") == "thread-library" and e["name"] == "thr_join"
        ]
        assert joins and all("target" in e["args"] for e in joins)

    def test_save_to_disk(self, result, tmp_path):
        path = save_chrome_trace(result, tmp_path / "t.json", program="demo")
        doc = json.loads(path.read_text())
        assert doc["otherData"]["program"] == "demo"

    def test_timestamps_within_run(self, result):
        doc = json.loads(to_chrome_trace(result))
        for e in doc["traceEvents"]:
            if "ts" in e:
                assert 0 <= e["ts"] <= result.makespan_us


class TestHtmlReport:
    @pytest.fixture(scope="class")
    def result(self):
        return predict(
            record_program(make_fig2_program(10_000)).trace, SimConfig(cpus=2)
        )

    def test_standalone_html(self, result):
        from repro.visualizer.html_report import render_html_report

        text = render_html_report(result, title="demo run")
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text  # the fig. 5 view embedded
        assert "demo run" in text
        assert "Per-thread time decomposition" in text
        assert "thr_create" in text  # the event table

    def test_save_html(self, result, tmp_path):
        from repro.visualizer.html_report import save_html_report

        path = save_html_report(result, tmp_path / "r.html")
        assert path.stat().st_size > 3_000

    def test_sources_escaped(self, result):
        from repro.visualizer.html_report import render_html_report

        text = render_html_report(result, title="<script>alert(1)</script>")
        assert "<script>alert(1)</script>" not in text
        assert "&lt;script&gt;" in text

    def test_event_table_truncates(self):
        from repro.visualizer import html_report
        from tests.conftest import make_mutex_program

        res = predict(
            record_program(make_mutex_program(nthreads=3, iters=4)).trace,
            SimConfig(cpus=2),
        )
        old = html_report._MAX_EVENT_ROWS
        html_report._MAX_EVENT_ROWS = 5
        try:
            text = html_report.render_html_report(res)
            assert "showing the first 5" in text
        finally:
            html_report._MAX_EVENT_ROWS = old
