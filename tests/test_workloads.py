"""Tests for the SPLASH-2 workload models and the §5 case study."""

import pytest

from repro import record_program, measure_speedup, predict_speedup
from repro.core.events import Primitive
from repro.program.uniexec import unmonitored_run
from repro.workloads import PAPER_TABLE1, all_workloads, get_workload
from repro.workloads.prodcons import make_naive, make_tuned

SCALE = 0.05  # miniature instances for unit testing


class TestRegistry:
    def test_all_five_kernels_plus_case_study_registered(self):
        names = {w.name for w in all_workloads()}
        assert {"ocean", "water", "fft", "radix", "lu", "prodcons"} <= names

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("barnes")  # excluded by §4 (spins on a variable)

    def test_paper_table_complete(self):
        for name in ("ocean", "water", "fft", "radix", "lu"):
            row = PAPER_TABLE1[name]
            assert set(row.real) == {2, 4, 8}
            assert set(row.predicted) == {2, 4, 8}

    def test_bad_factory_args_rejected(self):
        w = get_workload("radix")
        with pytest.raises(ValueError):
            w.make_program(0)
        with pytest.raises(ValueError):
            w.make_program(4, scale=-1)


@pytest.mark.parametrize("name", ["ocean", "water", "fft", "radix", "lu"])
class TestKernelPrograms:
    def test_runs_and_records(self, name):
        program = get_workload(name).make_program(4, SCALE)
        run = record_program(program)
        assert run.n_events > 50
        assert run.monitored_makespan_us > 0

    def test_one_thread_per_processor(self, name):
        program = get_workload(name).make_program(4, SCALE)
        run = record_program(program)
        tids = set(int(t) for t in run.trace.thread_ids())
        assert len(tids) == 5  # main + 4 workers

    def test_deterministic(self, name):
        w = get_workload(name)
        a = unmonitored_run(w.make_program(2, SCALE))
        b = unmonitored_run(w.make_program(2, SCALE))
        assert a.makespan_us == b.makespan_us

    def test_speedup_curve_shape(self, name):
        """The ordering of Table 1 survives miniaturisation: more CPUs
        never slow the kernels down, and each kernel is sub-linear."""
        w = get_workload(name)
        seq = w.make_program(1, SCALE)
        base = record_program(seq, overhead_us=0).monitored_makespan_us
        speeds = []
        for cpus in (2, 4):
            prog = w.make_program(cpus, SCALE)
            run = record_program(prog)
            speeds.append(predict_speedup(run.trace, cpus, baseline_us=base).speedup)
        assert speeds[0] <= speeds[1] * 1.02
        assert speeds[0] <= 2.05 and speeds[1] <= 4.05


class TestShapeRanking:
    def test_fft_is_the_worst_scaler_radix_the_best(self):
        """Table 1's ranking at 4 CPUs: radix/water > ocean > lu > fft."""
        predicted = {}
        for name in ("fft", "radix", "lu"):
            w = get_workload(name)
            seq = w.make_program(1, SCALE)
            base = record_program(seq, overhead_us=0).monitored_makespan_us
            run = record_program(w.make_program(4, SCALE))
            predicted[name] = predict_speedup(run.trace, 4, baseline_us=base).speedup
        assert predicted["fft"] < predicted["lu"] < predicted["radix"]

    def test_fft_saturates(self):
        w = get_workload("fft")
        seq = w.make_program(1, SCALE)
        base = record_program(seq, overhead_us=0).monitored_makespan_us
        run8 = record_program(w.make_program(8, SCALE))
        s8 = predict_speedup(run8.trace, 8, baseline_us=base).speedup
        assert 2.0 < s8 < 3.3  # the paper's 2.62 band


class TestProdCons:
    def test_naive_is_serialised(self):
        prog = make_naive(scale=0.1)
        run = record_program(prog)
        pred = predict_speedup(run.trace, 8)
        assert pred.speedup < 1.4  # "only 2.2% faster on 8 CPUs"

    def test_tuned_scales(self):
        prog = make_tuned(scale=0.1)
        run = record_program(prog)
        pred = predict_speedup(run.trace, 8)
        assert pred.speedup > 5.5  # the paper reaches 7.75

    def test_tuning_story_end_to_end(self):
        # the §5 narrative: tuned real speed-up close to predicted
        prog = make_tuned(scale=0.1)
        run = record_program(prog)
        pred = predict_speedup(run.trace, 8)
        real = measure_speedup(prog, 8, runs=3)
        assert abs(real.speedup - pred.speedup) / real.speedup < 0.06

    def test_population(self):
        prog = make_naive(scale=0.1)
        run = record_program(prog)
        creates = [
            r
            for r in run.trace
            if r.primitive is Primitive.THR_CREATE and r.is_ret
        ]
        assert len(creates) == 15 + 8  # 150*0.1 producers + round(75*0.1)

    def test_all_items_consumed(self):
        # producer items == consumer fetches: the program terminates
        prog = make_naive(scale=0.05)
        res = unmonitored_run(prog)
        assert res.makespan_us > 0


class TestSynthetic:
    def test_random_program_runs(self):
        from repro.workloads.synthetic import random_program

        prog = random_program(seed=1, nthreads=3, steps=6)
        res = unmonitored_run(prog)
        assert res.makespan_us > 0

    def test_random_program_deterministic(self):
        from repro.workloads.synthetic import random_program

        a = unmonitored_run(random_program(seed=2))
        b = unmonitored_run(random_program(seed=2))
        assert a.makespan_us == b.makespan_us

    def test_event_rate_program_scales_events(self):
        from repro.workloads.synthetic import event_rate_program

        small = record_program(event_rate_program(sync_ops=40))
        large = record_program(event_rate_program(sync_ops=400))
        assert large.n_events > 5 * small.n_events
