"""Cross-backend parity harness + scheduler-axis plumbing tests.

Covers the :mod:`repro.sched.stress_parity` invariant harness, the
Solaris bit-identity regression under both replay engines and the
``VPPB_REPLAY`` switch, and the scheduler axis through manifests,
batch reports and engine metrics.
"""

import json

import pytest

from repro import SimConfig, record_program
from repro.core.errors import AnalysisError
from repro.core.predictor import compile_trace
from repro.core.simulator import Simulator
from repro.jobs import JobEngine
from repro.jobs.manifest import SweepManifest, run_manifest
from repro.recorder import logfile
from repro.sched import available_backends
from repro.sched.stress_parity import run_stress
from repro.workloads import get_workload

from tests.conftest import make_prodcons_program

BACKENDS = available_backends()


@pytest.fixture(scope="module")
def prodcons_plan():
    return compile_trace(record_program(make_prodcons_program()).trace)


class TestStressHarness:
    def test_all_backends_hold_the_invariants(self):
        report = run_stress(scale=0.15, cpu_counts=(2,))
        assert report.ok, report.describe()
        assert report.cells == 5

    def test_backend_subset_and_describe(self):
        report = run_stress(
            scale=0.15, cpu_counts=(2,), backends=["solaris", "cfs"]
        )
        assert report.ok
        assert "0 violation(s)" in report.describe()


class TestSolarisBitIdentity:
    """The default backend is the extracted policy: its predictions are
    the pre-refactor scheduler's, under both replay engines."""

    def test_explicit_solaris_equals_default(self, prodcons_plan):
        config = SimConfig(cpus=4)
        explicit = SimConfig(cpus=4, scheduler="solaris")
        default_res = Simulator(config).run_replay(prodcons_plan)
        explicit_res = Simulator(explicit).run_replay(prodcons_plan)
        assert default_res.makespan_us == explicit_res.makespan_us
        assert default_res.events == explicit_res.events

    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_env_legacy_matches_fast(self, prodcons_plan, scheduler, monkeypatch):
        config = SimConfig(cpus=2, scheduler=scheduler)
        monkeypatch.setenv("VPPB_REPLAY", "legacy")
        legacy = Simulator(config).run_replay(prodcons_plan)
        monkeypatch.setenv("VPPB_REPLAY", "fast")
        fast = Simulator(config).run_replay(prodcons_plan)
        assert legacy == fast


class TestManifestSchedulerAxis:
    def _manifest(self, tmp_path, **extra):
        trace = record_program(
            get_workload("prodcons").make_program(4, 0.15)
        ).trace
        log = tmp_path / "pc.log"
        log.write_text(logfile.dumps(trace), encoding="utf-8")
        data = {"trace": str(log), "cpus": [2], **extra}
        return SweepManifest.from_dict(data)

    def test_default_axis_is_solaris_with_stable_labels(self, tmp_path):
        manifest = self._manifest(tmp_path)
        assert manifest.schedulers == ("solaris",)
        trace = logfile.load(manifest.trace_path)
        cells = manifest.configs(trace)
        assert [c.label for c in cells] == ["2cpu/unbound"]

    def test_unknown_scheduler_rejected(self, tmp_path):
        with pytest.raises(AnalysisError, match="unknown scheduler"):
            self._manifest(tmp_path, schedulers=["vms"])

    def test_grid_crosses_schedulers(self, tmp_path):
        manifest = self._manifest(tmp_path, schedulers=list(BACKENDS))
        assert manifest.grid_size() == len(BACKENDS)
        trace = logfile.load(manifest.trace_path)
        cells = manifest.configs(trace)
        labels = [c.label for c in cells]
        # default backend keeps the bare label; others get a suffix
        assert "2cpu/unbound" in labels
        assert "2cpu/unbound/cfs" in labels
        assert "2cpu/unbound/clutch" in labels
        assert {c.config.scheduler for c in cells} == set(BACKENDS)

    def test_batch_report_nests_and_footers(self, tmp_path):
        manifest = self._manifest(tmp_path, schedulers=list(BACKENDS))
        engine = JobEngine(mode="inline")
        try:
            report = run_manifest(manifest, engine)
        finally:
            engine.close()
        assert all(s.outcome.ok for s in report.scenarios)
        assert report.schedulers() == list(manifest.schedulers)

        doc = json.loads(report.to_json())
        assert set(doc["by_scheduler"]) == set(BACKENDS)
        for sched, rows in doc["by_scheduler"].items():
            assert rows and all(r["scheduler"] == sched for r in rows)

        table = report.format_table()
        assert "sched" in table.splitlines()[1]  # backend column
        assert "per scheduler:" in table
        for sched in BACKENDS:
            assert f"{sched}:" in table

        per = report.metrics["schedulers"]
        assert set(per) == set(BACKENDS)
        # the shared baseline is a solaris job; each backend ran its cell
        assert per["solaris"]["jobs"] == 2
        for sched in BACKENDS:
            if sched != "solaris":
                assert per[sched]["jobs"] == 1

    def test_single_backend_report_keeps_plain_table(self, tmp_path):
        manifest = self._manifest(tmp_path)
        engine = JobEngine(mode="inline")
        try:
            report = run_manifest(manifest, engine)
        finally:
            engine.close()
        header = report.format_table().splitlines()[1]
        assert "sched" not in header
        assert "per scheduler:" not in report.format_table()


class TestEngineSchedulerMetrics:
    def test_predict_speedups_accounts_per_backend(self, prodcons_plan):
        trace = record_program(make_prodcons_program()).trace
        engine = JobEngine(mode="inline")
        try:
            for sched in BACKENDS:
                engine.predict_speedups(
                    trace, [2], base_config=SimConfig().with_scheduler(sched)
                )
            snap = engine.snapshot()
        finally:
            engine.close()
        per = snap["schedulers"]
        assert set(per) == set(BACKENDS)
        # baseline (solaris-pinned) + solaris cell; one cell per other
        assert per["solaris"]["jobs"] >= 2
        for sched in BACKENDS:
            if sched != "solaris":
                assert per[sched]["jobs"] == 1

    def test_cross_backend_results_not_cache_collided(self):
        trace = record_program(
            get_workload("prodcons").make_program(4, 0.15)
        ).trace
        engine = JobEngine(mode="inline")
        try:
            makespans = {}
            for sched in BACKENDS:
                preds = engine.predict_speedups(
                    trace, [2], base_config=SimConfig().with_scheduler(sched)
                )
                makespans[sched] = preds[0].makespan_us
            # re-asking must serve the backend's own cached cell
            for sched in BACKENDS:
                preds = engine.predict_speedups(
                    trace, [2], base_config=SimConfig().with_scheduler(sched)
                )
                assert preds[0].makespan_us == makespans[sched]
        finally:
            engine.close()
        # distinct kernels genuinely predict differently on this trace
        assert len(set(makespans.values())) > 1
