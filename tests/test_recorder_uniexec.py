"""Tests for the Recorder and the monitored uni-processor execution."""

import pytest

from repro import Program, Recorder
from repro.core.errors import MonitorabilityError, RecorderError
from repro.core.events import EventRecord, Phase, Primitive, Status
from repro.core.ids import MAIN_THREAD_ID, ThreadId
from repro.program import ops as op
from repro.program.uniexec import (
    record_program,
    uniprocessor_config,
    unmonitored_run,
)
from tests.conftest import make_fig2_program, make_barrier_program


class TestRecorderObject:
    def test_records_accumulate(self):
        r = Recorder("demo")
        r.record(EventRecord(0, MAIN_THREAD_ID, Phase.CALL, Primitive.START_COLLECT))
        assert len(r) == 1

    def test_trace_finalises_once(self):
        r = Recorder("demo")
        r.record(EventRecord(0, MAIN_THREAD_ID, Phase.CALL, Primitive.START_COLLECT))
        t1 = r.trace()
        assert r.trace() is t1

    def test_recording_after_finalise_rejected(self):
        r = Recorder("demo")
        r.trace()
        with pytest.raises(RecorderError):
            r.record(
                EventRecord(0, MAIN_THREAD_ID, Phase.CALL, Primitive.START_COLLECT)
            )

    def test_negative_overhead_rejected(self):
        with pytest.raises(RecorderError):
            Recorder("demo", overhead_us=-1)

    def test_thread_functions_in_meta(self):
        r = Recorder("demo")
        r.note_thread_function(4, "worker")
        assert r.trace().meta.thread_functions == {4: "worker"}


class TestUniprocessorConfig:
    def test_one_cpu_one_lwp(self):
        cfg = uniprocessor_config()
        assert cfg.cpus == 1 and cfg.lwps == 1


class TestMonitoredRun:
    def test_fig2_log_structure(self):
        run = record_program(make_fig2_program())
        prims = [r.primitive for r in run.trace]
        # starts with the collection marker, like the paper's fig. 2 log
        assert prims[0] is Primitive.START_COLLECT
        assert prims.count(Primitive.THR_CREATE) == 4  # 2 calls + 2 rets
        assert prims.count(Primitive.THR_EXIT) == 3  # T4, T5, main
        assert prims[-1] is Primitive.END_COLLECT

    def test_children_get_solaris_ids(self):
        run = record_program(make_fig2_program())
        tids = sorted(set(int(r.tid) for r in run.trace))
        assert tids == [1, 4, 5]

    def test_thread_start_markers_present(self):
        run = record_program(make_fig2_program())
        starts = [r for r in run.trace if r.primitive is Primitive.THREAD_START]
        assert sorted(int(r.tid) for r in starts) == [4, 5]

    def test_create_records_carry_child_and_boundness(self):
        run = record_program(make_fig2_program())
        rets = [
            r
            for r in run.trace
            if r.primitive is Primitive.THR_CREATE and r.is_ret
        ]
        assert [int(r.target) for r in rets] == [4, 5]
        assert all(r.arg == 0 for r in rets)  # unbound

    def test_source_locations_recorded(self):
        # the Recorder's %i7 analogue: each call knows its source line
        run = record_program(make_fig2_program())
        calls = [
            r
            for r in run.trace
            if r.is_call and r.primitive is Primitive.THR_CREATE
        ]
        assert all(r.source is not None for r in calls)
        assert all(r.source.file.endswith("conftest.py") for r in calls)

    def test_function_names_resolved(self):
        run = record_program(make_fig2_program())
        assert run.trace.meta.thread_functions == {4: "thread", 5: "thread"}

    def test_monitoring_prolongs_execution(self):
        # §4: "the monitored uni-processor execution takes somewhat longer
        # than an ordinary uni-processor execution"
        program = make_barrier_program()
        monitored = record_program(program, overhead_us=15)
        plain = unmonitored_run(program)
        assert monitored.monitored_makespan_us > plain.makespan_us

    def test_zero_overhead_recording_matches_plain_run(self):
        program = make_barrier_program()
        monitored = record_program(program, overhead_us=0)
        plain = unmonitored_run(program)
        assert monitored.monitored_makespan_us == plain.makespan_us

    def test_overhead_charged_per_record(self):
        program = make_fig2_program()
        r0 = record_program(program, overhead_us=0)
        r10 = record_program(program, overhead_us=10)
        # every record costs 10us somewhere in the monitored timeline
        delta = r10.monitored_makespan_us - r0.monitored_makespan_us
        assert delta > 0
        assert delta <= 10 * len(r10.trace)

    def test_trace_validates(self):
        run = record_program(make_barrier_program())
        # Trace construction validates; also spot-check pairing counts
        calls = sum(1 for r in run.trace if r.is_call and not r.is_marker)
        rets = sum(1 for r in run.trace if r.is_ret)
        exits = sum(
            1 for r in run.trace if r.primitive is Primitive.THR_EXIT
        )
        assert calls == rets + exits


class TestMonitorability:
    def test_spin_loop_detected_as_unmonitorable(self):
        # §6: a thread spinning on a variable livelocks the single LWP
        # (the Barnes/Radiosity failure mode).  Our DSL's analogue is a
        # thread that yields zero-length computes forever waiting for a
        # flag only another thread can set.
        def spinner(ctx):
            while not ctx.shared.get("flag"):
                yield op.Compute(1)  # spin; never calls the library

        def setter(ctx):
            yield op.Compute(100)
            ctx.shared["flag"] = True

        def main(ctx):
            a = yield op.ThrCreate(spinner)
            b = yield op.ThrCreate(setter)
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)

        with pytest.raises(MonitorabilityError):
            record_program(Program("spin", main), max_events=50_000)
