"""Unit tests for the cost model and the TS dispatch table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import Primitive
from repro.core.timebase import US_PER_MS
from repro.solaris import costs as costs_mod
from repro.solaris.costs import BOUND_CREATE_FACTOR, BOUND_SYNC_FACTOR, CostModel
from repro.solaris.dispatch import TS_LEVELS, DispatchEntry, DispatchTable


class TestCostModel:
    def test_paper_create_factor(self):
        # §3.2: creating a bound thread takes 6.7x longer
        cm = CostModel()
        unbound = cm.op_cost(Primitive.THR_CREATE, bound=False)
        bound = cm.op_cost(Primitive.THR_CREATE, bound=True)
        assert bound == round(unbound * 6.7)
        assert BOUND_CREATE_FACTOR == 6.7

    @pytest.mark.parametrize(
        "prim",
        [
            Primitive.SEMA_WAIT,
            Primitive.SEMA_POST,
            Primitive.MUTEX_LOCK,
            Primitive.MUTEX_UNLOCK,
            Primitive.COND_WAIT,
            Primitive.COND_BROADCAST,
            Primitive.RW_RDLOCK,
            Primitive.RW_UNLOCK,
        ],
    )
    def test_paper_sync_factor_applies_to_all_sync_objects(self, prim):
        # §3.2: the 5.9x semaphore value "is used in the simulator for
        # mutexes, conditions, and read/write locks, as well"
        cm = CostModel()
        assert cm.op_cost(prim, bound=True) == round(cm.op_cost(prim) * 5.9)
        assert BOUND_SYNC_FACTOR == 5.9

    def test_non_sync_primitives_unaffected_by_binding(self):
        cm = CostModel()
        assert cm.op_cost(Primitive.THR_JOIN, bound=True) == cm.op_cost(
            Primitive.THR_JOIN
        )
        assert cm.op_cost(Primitive.THR_YIELD, bound=True) == cm.op_cost(
            Primitive.THR_YIELD
        )

    def test_unknown_primitive_costs_nothing(self):
        cm = CostModel(base_costs={})
        assert cm.op_cost(Primitive.MUTEX_LOCK) == 0

    def test_scaled(self):
        cm = CostModel().scaled(2.0)
        assert cm.op_cost(Primitive.MUTEX_LOCK) == 2 * CostModel().op_cost(
            Primitive.MUTEX_LOCK
        )
        assert cm.thread_switch_us == 2 * CostModel().thread_switch_us

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel().scaled(-1)

    def test_free_model_all_zero(self):
        cm = costs_mod.free()
        for prim in Primitive:
            assert cm.op_cost(prim) == 0
            assert cm.op_cost(prim, bound=True) == 0

    @given(st.sampled_from(list(Primitive)), st.booleans())
    def test_costs_never_negative(self, prim, bound):
        assert CostModel().op_cost(prim, bound=bound) >= 0


class TestDispatchTable:
    def test_classic_has_60_levels(self):
        table = DispatchTable.classic()
        for level in range(TS_LEVELS):
            assert table.quantum_us(level) > 0

    def test_classic_quantum_shape(self):
        # 200 ms at the bottom, 20 ms at the top — lower priority gets
        # longer slices, the classic Solaris TS shape
        table = DispatchTable.classic()
        assert table.quantum_us(0) == 200 * US_PER_MS
        assert table.quantum_us(59) == 20 * US_PER_MS

    def test_quantum_monotone_nonincreasing(self):
        table = DispatchTable.classic()
        quanta = [table.quantum_us(lv) for lv in range(TS_LEVELS)]
        assert all(a >= b for a, b in zip(quanta, quanta[1:]))

    def test_expiry_demotes(self):
        table = DispatchTable.classic()
        assert table.after_quantum_expiry(29) == 19
        assert table.after_quantum_expiry(5) == 0  # floored

    def test_sleep_boosts(self):
        table = DispatchTable.classic()
        assert table.after_sleep(29) == 39
        assert table.after_sleep(59) == 59  # capped

    def test_starvation_boosts(self):
        table = DispatchTable.classic()
        assert table.after_starvation(10) == 20

    def test_levels_clamped(self):
        table = DispatchTable.classic()
        assert table.quantum_us(-5) == table.quantum_us(0)
        assert table.quantum_us(999) == table.quantum_us(59)

    def test_initial_level_mid_table(self):
        assert 0 <= DispatchTable.initial_level() < TS_LEVELS

    def test_fixed_quantum_table(self):
        table = DispatchTable.fixed_quantum(10_000)
        for level in (0, 29, 59):
            assert table.quantum_us(level) == 10_000
            assert table.after_quantum_expiry(level) == level
            assert table.after_sleep(level) == level

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            DispatchTable([])

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            DispatchEntry(quantum_us=0, tqexp=0, slpret=0, maxwait_us=0, lwait=0)
        with pytest.raises(ValueError):
            DispatchEntry(quantum_us=1, tqexp=99, slpret=0, maxwait_us=0, lwait=0)
