"""Tests for the trace→replay compiler and the prediction pipeline."""

import pytest

from repro import SimConfig, compile_trace, predict, predict_speedup, sweep_speedup
from repro.core.errors import TraceError
from repro.core.events import EventRecord, Phase, Primitive, Status
from repro.core.ids import SyncObjectId, ThreadId
from repro.core.trace import Trace
from repro.program import ops as op
from repro.program.uniexec import record_program, uniprocessor_config
from tests.conftest import (
    make_barrier_program,
    make_fig2_program,
    make_mutex_program,
    make_prodcons_program,
)


class TestCompileBasics:
    def test_plan_covers_all_threads(self):
        run = record_program(make_fig2_program())
        plan = compile_trace(run.trace)
        assert set(plan.steps) == {1, 4, 5}

    def test_meta_carries_function_names(self):
        run = record_program(make_fig2_program())
        plan = compile_trace(run.trace)
        assert plan.meta[4].func_name == "thread"
        assert plan.meta[1].func_name == "main"

    def test_every_thread_ends_with_exit(self):
        run = record_program(make_barrier_program())
        plan = compile_trace(run.trace)
        for tid, steps in plan.steps.items():
            assert isinstance(steps[-1].op, op.ThrExit), f"T{tid}"

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            compile_trace(Trace([]))

    def test_trace_without_main_rejected(self):
        records = [
            EventRecord(0, ThreadId(1), Phase.CALL, Primitive.THR_CREATE),
            EventRecord(
                1,
                ThreadId(1),
                Phase.RET,
                Primitive.THR_CREATE,
                target=ThreadId(4),
                status=Status.OK,
            ),
            EventRecord(2, ThreadId(4), Phase.CALL, Primitive.THR_EXIT),
        ]
        # strip main's records after building: simulate a foreign log
        trace = Trace([r for r in records if int(r.tid) != 1], validate=False)
        with pytest.raises(TraceError):
            compile_trace(trace)

    def test_call_without_ret_rejected(self):
        records = [
            EventRecord(0, ThreadId(1), Phase.CALL, Primitive.MUTEX_LOCK,
                        obj=SyncObjectId("mutex", "m")),
        ]
        with pytest.raises(TraceError):
            compile_trace(Trace(records, validate=False))


class TestReplayRules:
    """§3.2 replay rules, checked on the compiled op streams."""

    def _steps_ops(self, program, tid):
        run = record_program(program)
        plan = compile_trace(run.trace)
        return [s.op for s in plan.steps[tid]]

    def test_successful_trylock_becomes_lock(self):
        def main(ctx):
            ok = yield op.MutexTrylock("m")
            assert ok
            yield op.MutexUnlock("m")

        from repro import Program

        ops = self._steps_ops(Program("t", main), 1)
        kinds = [type(o).__name__ for o in ops]
        assert "MutexLock" in kinds and "MutexTrylock" not in kinds

    def test_failed_trylock_becomes_noop(self):
        from repro import Program

        def holder(ctx):
            yield op.MutexLock("m")
            yield op.SemaWait("z")  # blocks while holding m
            yield op.MutexUnlock("m")

        def tryer(ctx):
            ok = yield op.MutexTrylock("m")
            assert not ok  # the holder is parked on the semaphore with m
            yield op.SemaPost("z")

        def main(ctx):
            a = yield op.ThrCreate(holder)
            b = yield op.ThrCreate(tryer)
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)

        run = record_program(Program("t", main))
        plan = compile_trace(run.trace)
        tryer_tid = [t for t, m in plan.meta.items() if m.func_name == "tryer"][0]
        ops = [s.op for s in plan.steps[tryer_tid]]
        noops = [o for o in ops if isinstance(o, op.Noop)]
        assert len(noops) == 1
        assert noops[0].noop_primitive is Primitive.MUTEX_TRYLOCK

    def test_timed_out_wait_becomes_forced_delay(self):
        from repro import Program

        def main(ctx):
            yield op.MutexLock("m")
            yield op.CondTimedWait("c", "m", timeout_us=500)
            yield op.MutexUnlock("m")

        ops = self._steps_ops(Program("t", main), 1)
        tw = [o for o in ops if isinstance(o, op.CondTimedWait)]
        assert len(tw) == 1
        assert tw[0].forced_timeout and tw[0].timeout_us == 500

    def test_signalled_timedwait_becomes_plain_wait(self):
        from repro import Program

        def waiter(ctx):
            yield op.MutexLock("m")
            yield op.SemaPost("ready")
            yield op.CondTimedWait("c", "m", timeout_us=1_000_000)
            yield op.MutexUnlock("m")

        def main(ctx):
            t = yield op.ThrCreate(waiter)
            yield op.SemaWait("ready")  # ensures the waiter is waiting
            yield op.CondSignal("c")
            yield op.ThrJoin(t)

        run = record_program(Program("t", main))
        plan = compile_trace(run.trace)
        wtid = [t for t, m in plan.meta.items() if m.func_name == "waiter"][0]
        ops = [s.op for s in plan.steps[wtid]]
        assert any(isinstance(o, op.CondWait) for o in ops)
        assert not any(isinstance(o, op.CondTimedWait) for o in ops)

    def test_broadcast_carries_released_count(self):
        run = record_program(make_barrier_program(nthreads=4, iters=1))
        plan = compile_trace(run.trace)
        broadcasts = [
            s.op
            for steps in plan.steps.values()
            for s in steps
            if isinstance(s.op, op.CondBroadcast)
        ]
        assert broadcasts, "barrier produced no broadcast"
        # last arrival releases the other three
        assert all(b.expected_waiters == 3 for b in broadcasts)

    def test_cond_wait_keeps_its_mutex(self):
        run = record_program(make_barrier_program(nthreads=2, iters=1))
        plan = compile_trace(run.trace)
        waits = [
            s.op
            for steps in plan.steps.values()
            for s in steps
            if isinstance(s.op, op.CondWait)
        ]
        assert waits
        assert all(w.mutex for w in waits)

    def test_create_carries_replay_tid(self):
        run = record_program(make_fig2_program())
        plan = compile_trace(run.trace)
        creates = [s.op for s in plan.steps[1] if isinstance(s.op, op.ThrCreate)]
        assert [c.replay_tid for c in creates] == [4, 5]

    def test_sources_survive_compilation(self):
        run = record_program(make_fig2_program())
        plan = compile_trace(run.trace)
        creates = [s.op for s in plan.steps[1] if isinstance(s.op, op.ThrCreate)]
        assert all(c.source is not None for c in creates)


class TestBurstAttribution:
    def test_compute_time_recovered(self):
        # fig2 worker: Compute(100_000) between thread_start and thr_exit
        run = record_program(make_fig2_program(work_us=100_000), overhead_us=0)
        plan = compile_trace(run.trace)
        exit_step = plan.steps[4][-1]
        assert isinstance(exit_step.op, op.ThrExit)
        # the burst carries the worker's compute (minus nothing: costs are
        # charged separately in replay)
        assert exit_step.work_us == pytest.approx(100_000, abs=200)

    def test_blocked_time_not_misattributed(self):
        # main blocks in thr_join for ~100ms; its next burst must not
        # contain that time
        run = record_program(make_fig2_program(work_us=100_000), overhead_us=0)
        plan = compile_trace(run.trace)
        main_steps = plan.steps[1]
        total_main_work = sum(s.work_us for s in main_steps)
        assert total_main_work < 2_000  # creations etc., never 100ms


class TestPredictionPipeline:
    def test_uniprocessor_replay_reproduces_monitored_run(self):
        # replaying the log on the monitored machine model must land on
        # the monitored makespan (it is the same deterministic execution)
        run = record_program(make_barrier_program(), overhead_us=0)
        res = predict(run.trace, uniprocessor_config())
        assert res.makespan_us == pytest.approx(run.monitored_makespan_us, rel=0.01)

    def test_prediction_deterministic(self):
        run = record_program(make_mutex_program())
        a = predict(run.trace, SimConfig(cpus=4))
        b = predict(run.trace, SimConfig(cpus=4))
        assert a.makespan_us == b.makespan_us
        assert len(a.events) == len(b.events)

    def test_plan_reusable_across_simulations(self):
        run = record_program(make_mutex_program())
        plan = compile_trace(run.trace)
        r1 = predict(run.trace, SimConfig(cpus=2), plan=plan)
        r2 = predict(run.trace, SimConfig(cpus=2), plan=plan)
        assert r1.makespan_us == r2.makespan_us

    def test_speedup_monotone_in_cpus_for_parallel_program(self):
        run = record_program(make_barrier_program(nthreads=4, iters=2))
        preds = sweep_speedup(run.trace, [1, 2, 4])
        assert preds[0].speedup == pytest.approx(1.0, abs=0.02)
        assert preds[0].speedup <= preds[1].speedup <= preds[2].speedup

    def test_speedup_never_meaningfully_exceeds_cpu_count(self):
        # a hair over N is possible (the on-demand-LWP machine avoids the
        # user-level context switches the 1-LWP baseline pays), but real
        # super-linear speed-up is impossible in this model
        run = record_program(make_barrier_program(nthreads=4, iters=2))
        for pred in sweep_speedup(run.trace, [1, 2, 4, 8]):
            assert pred.speedup <= pred.cpus * 1.01

    def test_roundtrip_through_logfile_preserves_prediction(self):
        from repro.recorder import logfile

        run = record_program(make_mutex_program())
        reparsed = logfile.loads(logfile.dumps(run.trace))
        a = predict(run.trace, SimConfig(cpus=4))
        b = predict(reparsed, SimConfig(cpus=4))
        assert a.makespan_us == b.makespan_us

    def test_predicted_events_have_placements(self):
        run = record_program(make_fig2_program())
        res = predict(run.trace, SimConfig(cpus=2))
        assert all(e.end_us >= e.start_us for e in res.events)
        assert any(e.primitive is Primitive.THR_CREATE for e in res.events)
