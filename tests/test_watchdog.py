"""Watchdog budgets and graceful degradation to partial results.

A replay that deadlocks, diverges, or blows a budget must either raise
a precise error (strict mode, the default) or come back as a *partial*
:class:`SimulationResult` flagged ``incomplete`` with the blocking
cycle / divergence point attached (``strict=False``).
"""

import pytest

from repro import SimConfig, record_program
from repro.core.engine import Watchdog
from repro.core.errors import (
    BudgetExceededError,
    DeadlockError,
    LivelockError,
    ReplayDivergenceError,
)
from repro.core.predictor import predict
from repro.core.result import Incompleteness, RunStatus
from repro.recorder import logfile

from tests.conftest import make_prodcons_program

# Two workers take mutexes a and b in opposite orders.  The recorded
# uni-processor run serialized them; a 2-CPU replay runs them
# concurrently and deadlocks half-way (each holds one lock and wants
# the other), with main blocked joining T4.
DEADLOCK_LOG = """\
# vppb-log 1
# program: deadlocker
0.000000 T1 call start_collect
0.000010 T1 call thr_create
0.000020 T1 ret thr_create target=T4 status=ok
0.000030 T1 call thr_create
0.000040 T1 ret thr_create target=T5 status=ok
0.000050 T1 call thr_join target=T4
0.000060 T4 call thread_start
0.000160 T4 call mutex_lock obj=mutex:a
0.000162 T4 ret mutex_lock obj=mutex:a status=ok
0.000662 T4 call mutex_lock obj=mutex:b
0.000664 T4 ret mutex_lock obj=mutex:b status=ok
0.000666 T4 call mutex_unlock obj=mutex:b
0.000668 T4 ret mutex_unlock obj=mutex:b status=ok
0.000670 T4 call mutex_unlock obj=mutex:a
0.000672 T4 ret mutex_unlock obj=mutex:a status=ok
0.000674 T4 call thr_exit
0.000680 T5 call thread_start
0.000780 T5 call mutex_lock obj=mutex:b
0.000782 T5 ret mutex_lock obj=mutex:b status=ok
0.001282 T5 call mutex_lock obj=mutex:a
0.001284 T5 ret mutex_lock obj=mutex:a status=ok
0.001286 T5 call mutex_unlock obj=mutex:a
0.001288 T5 ret mutex_unlock obj=mutex:a status=ok
0.001290 T5 call mutex_unlock obj=mutex:b
0.001292 T5 ret mutex_unlock obj=mutex:b status=ok
0.001294 T5 call thr_exit
0.001300 T1 ret thr_join target=T4 status=ok
0.001310 T1 call thr_join target=T5
0.001320 T1 ret thr_join target=T5 status=ok
0.001330 T1 call thr_exit
0.001340 T1 call end_collect
"""

# T4 unlocks a mutex it never acquired: replay diverges from anything a
# real execution could do.
DIVERGENT_LOG = """\
# vppb-log 1
# program: diverger
0.000000 T1 call start_collect
0.000010 T1 call thr_create
0.000020 T1 ret thr_create target=T4 status=ok
0.000030 T4 call thread_start
0.000040 T4 call mutex_unlock obj=mutex:m
0.000050 T4 ret mutex_unlock obj=mutex:m status=ok
0.000060 T4 call thr_exit
0.000070 T1 call thr_join target=T4
0.000080 T1 ret thr_join target=T4 status=ok
0.000090 T1 call thr_exit
0.000100 T1 call end_collect
"""


@pytest.fixture(scope="module")
def deadlock_trace():
    return logfile.loads(DEADLOCK_LOG)


@pytest.fixture(scope="module")
def divergent_trace():
    return logfile.loads(DIVERGENT_LOG)


@pytest.fixture(scope="module")
def healthy_trace():
    return record_program(make_prodcons_program()).trace


class TestWatchdogConfig:
    def test_check_every_must_be_positive(self):
        with pytest.raises(ValueError):
            Watchdog(check_every=0)

    def test_defaults_are_unbounded(self):
        w = Watchdog()
        assert w.max_events is None
        assert w.max_time_us is None
        assert w.max_wall_s is None


class TestStrictMode:
    def test_deadlock_raises(self, deadlock_trace):
        with pytest.raises(DeadlockError):
            predict(deadlock_trace, SimConfig(cpus=2))

    def test_divergence_raises_with_tid(self, divergent_trace):
        with pytest.raises(ReplayDivergenceError) as exc_info:
            predict(divergent_trace, SimConfig(cpus=2))
        assert exc_info.value.tid == 4

    def test_event_budget_raises(self, healthy_trace):
        with pytest.raises(BudgetExceededError) as exc_info:
            predict(
                healthy_trace, SimConfig(cpus=2),
                watchdog=Watchdog(max_events=50),
            )
        assert exc_info.value.budget == "events"

    def test_engine_livelock_guard_still_raises(self, healthy_trace):
        with pytest.raises(LivelockError):
            predict(healthy_trace, SimConfig(cpus=2), max_events=50)


class TestGracefulDegradation:
    def test_deadlock_returns_partial_with_cycle(self, deadlock_trace):
        result = predict(deadlock_trace, SimConfig(cpus=2), strict=False)
        assert result.incomplete
        inc = result.incompleteness
        assert inc.status is RunStatus.DEADLOCK
        assert set(inc.cycle) == {4, 5}  # T4 and T5 wait on each other
        assert set(inc.blocked) >= {4, 5}
        assert "cycle" in inc.describe()
        # the partial result still carries everything simulated so far
        assert result.makespan_us > 0
        assert result.status is RunStatus.DEADLOCK

    def test_divergence_returns_partial_with_point(self, divergent_trace):
        result = predict(divergent_trace, SimConfig(cpus=2), strict=False)
        assert result.incomplete
        inc = result.incompleteness
        assert inc.status is RunStatus.DIVERGED
        assert inc.divergence_tid == 4
        assert inc.divergence_us is not None
        assert "T4" in inc.describe()

    def test_event_budget_returns_partial(self, healthy_trace):
        result = predict(
            healthy_trace, SimConfig(cpus=2),
            watchdog=Watchdog(max_events=50), strict=False,
        )
        assert result.incomplete
        assert result.incompleteness.status is RunStatus.BUDGET
        assert "event budget" in result.incompleteness.reason

    def test_wall_clock_budget_returns_partial(self, healthy_trace):
        result = predict(
            healthy_trace, SimConfig(cpus=2),
            watchdog=Watchdog(max_wall_s=0.0, check_every=1), strict=False,
        )
        assert result.incomplete
        assert result.incompleteness.status is RunStatus.BUDGET
        assert "wall" in result.incompleteness.reason

    def test_livelock_guard_returns_partial(self, healthy_trace):
        result = predict(
            healthy_trace, SimConfig(cpus=2), max_events=50, strict=False
        )
        assert result.incomplete
        assert result.incompleteness.status is RunStatus.LIVELOCK

    def test_healthy_replay_is_complete(self, healthy_trace):
        result = predict(healthy_trace, SimConfig(cpus=2), strict=False)
        assert not result.incomplete
        assert result.incompleteness is None
        assert result.status is RunStatus.COMPLETE

    def test_partial_result_is_inspectable(self, deadlock_trace):
        """The whole result API keeps working on a partial result."""
        result = predict(deadlock_trace, SimConfig(cpus=2), strict=False)
        assert any(result.segments.values())  # threads ran before blocking
        assert result.total_cpu_time_us() > 0
        assert result.makespan_us >= 0


class TestIncompleteness:
    def test_describe_complete(self):
        inc = Incompleteness(status=RunStatus.COMPLETE, reason="all good")
        assert "all good" in inc.describe()

    def test_describe_renders_cycle_and_blocked(self):
        inc = Incompleteness(
            status=RunStatus.DEADLOCK,
            reason="threads blocked at drain",
            blocked=(4, 5),
            cycle=(4, 5),
        )
        text = inc.describe()
        assert "T4 -> T5 -> T4" in text
        assert "blocked" in text

    def test_status_values_are_stable(self):
        # these strings are part of the CLI/report surface
        assert RunStatus.COMPLETE.value == "complete"
        assert RunStatus.DEADLOCK.value == "deadlock"
        assert RunStatus.LIVELOCK.value == "livelock"
        assert RunStatus.BUDGET.value == "budget-exhausted"
        assert RunStatus.DIVERGED.value == "diverged"
