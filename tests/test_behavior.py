"""Unit tests for thread behaviours (Step, LiveBehavior, ReplayBehavior)."""

import pytest

from repro.core.errors import ProgramError
from repro.program import ops as op
from repro.program.behavior import LiveBehavior, ReplayBehavior, Step


class TestStep:
    def test_negative_work_rejected(self):
        with pytest.raises(ProgramError):
            Step(-1, op.ThrExit())

    def test_compute_op_rejected(self):
        with pytest.raises(ProgramError):
            Step(10, op.Compute(5))


class TestLiveBehavior:
    def test_folds_consecutive_computes(self):
        def body():
            yield op.Compute(100)
            yield op.Compute(200)
            yield op.MutexLock("m")

        b = LiveBehavior(body())
        step = b.next_step(None)
        assert step.work_us == 300
        assert isinstance(step.op, op.MutexLock)

    def test_end_of_body_returns_none(self):
        def body():
            yield op.MutexLock("m")

        b = LiveBehavior(body())
        assert b.next_step(None) is not None
        assert b.next_step(None) is None

    def test_trailing_compute_attached_to_exit(self):
        def body():
            yield op.SemaPost("s")
            yield op.Compute(500)

        b = LiveBehavior(body())
        b.next_step(None)
        last = b.next_step(None)
        assert last.work_us == 500
        assert isinstance(last.op, op.ThrExit)

    def test_next_step_after_end_rejected(self):
        def body():
            yield op.SemaPost("s")

        b = LiveBehavior(body())
        b.next_step(None)
        assert b.next_step(None) is None
        with pytest.raises(ProgramError):
            b.next_step(None)

    def test_result_delivered_to_generator(self):
        got = []

        def body():
            got.append((yield op.MutexTrylock("m")))

        b = LiveBehavior(body())
        b.next_step(None)
        b.next_step(True)
        assert got == [True]

    def test_non_op_yield_rejected(self):
        def body():
            yield "not an op"

        b = LiveBehavior(body())
        with pytest.raises(ProgramError):
            b.next_step(None)

    def test_source_captured_from_frame(self):
        def body():
            yield op.MutexLock("m")  # <- this line

        b = LiveBehavior(body())
        step = b.next_step(None)
        assert step.op.source is not None
        assert step.op.source.function == "body"
        assert step.op.source.file.endswith("test_behavior.py")

    def test_explicit_source_not_overwritten(self):
        from repro.core.events import SourceLocation

        marked = SourceLocation("hand.c", 7, "fn")

        def body():
            yield op.MutexLock("m", source=marked)

        b = LiveBehavior(body())
        assert b.next_step(None).op.source is marked

    def test_perturb_applies_to_compute_only(self):
        def body():
            yield op.Compute(1000)
            yield op.SemaPost("s")

        b = LiveBehavior(body(), perturb=lambda us: us * 2)
        step = b.next_step(None)
        assert step.work_us == 2000

    def test_spin_loop_yields_resched_points(self):
        # a polling loop gets chopped into bounded steps ending in an
        # internal scheduling point, so simulated time advances between
        # polls (and the engine's guards catch a true 1-LWP livelock)
        def body():
            while True:
                yield op.Compute(1)

        b = LiveBehavior(body())
        step = b.next_step(None)
        assert isinstance(step.op, op.Resched)
        assert step.work_us == LiveBehavior.MAX_COMPUTE_FOLD
        again = b.next_step(None)
        assert isinstance(again.op, op.Resched)


class TestReplayBehavior:
    def test_replays_in_order(self):
        steps = [Step(1, op.MutexLock("m")), Step(2, op.MutexUnlock("m"))]
        b = ReplayBehavior(steps)
        assert b.next_step(None).work_us == 1
        assert b.next_step(None).work_us == 2
        assert b.next_step(None) is None

    def test_ignores_results(self):
        b = ReplayBehavior([Step(1, op.ThrExit())])
        assert b.next_step("whatever").work_us == 1

    def test_remaining_and_len(self):
        b = ReplayBehavior([Step(1, op.ThrExit())])
        assert len(b) == 1 and b.remaining == 1
        b.next_step(None)
        assert b.remaining == 0

    def test_copy_isolated_from_source_list(self):
        steps = [Step(1, op.ThrExit())]
        b = ReplayBehavior(steps)
        steps.clear()
        assert b.next_step(None) is not None
