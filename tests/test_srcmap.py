"""Tests for the two-phase source mapping (§3.1 %i7 capture + translation).

Round-trip edge cases: sites whose file no longer exists on disk, line
zero, duplicated code-object identities, and the (code, line) cache the
post-run translation relies on.
"""

from __future__ import annotations

import sys

from repro.core.events import SourceLocation
from repro.recorder.srcmap import AddressMap, RawCallSite, capture_call_site


def _code_for(filename: str, func: str = "f", lineno: int = 1):
    """A real code object claiming to come from *filename*."""
    src = "\n" * (lineno - 1) + f"def {func}():\n    pass\n"
    namespace: dict = {}
    exec(compile(src, filename, "exec"), namespace)
    return namespace[func].__code__


class TestCapture:
    def test_captures_this_test_frame(self):
        site = capture_call_site(depth=1)
        assert site is not None
        assert site.code.co_filename == __file__
        assert site.code.co_name == "test_captures_this_test_frame"
        assert site.lineno > 0

    def test_too_deep_returns_none(self):
        assert capture_call_site(depth=10_000) is None


class TestResolve:
    def test_round_trip(self):
        site = capture_call_site(depth=1)
        loc = AddressMap().resolve(site)
        assert isinstance(loc, SourceLocation)
        assert loc.file == __file__
        assert loc.line == site.lineno
        assert loc.function == "test_round_trip"

    def test_none_resolves_to_none(self):
        assert AddressMap().resolve(None) is None

    def test_missing_file_still_resolves(self):
        # translation is symbolic (like the paper's debugger pass over a
        # stripped binary's tables) — the file need not exist on disk
        code = _code_for("/nonexistent/deleted_module.py", "ghost", lineno=12)
        loc = AddressMap().resolve(RawCallSite(code=code, lineno=12))
        assert loc.file == "/nonexistent/deleted_module.py"
        assert loc.line == 12
        assert loc.function == "ghost"

    def test_line_zero(self):
        # a probe fired from C code reports line 0; keep it, don't crash
        code = _code_for("synthetic.py")
        loc = AddressMap().resolve(RawCallSite(code=code, lineno=0))
        assert loc.line == 0
        assert loc.file == "synthetic.py"


class TestCache:
    def test_same_site_translates_once_and_is_shared(self):
        amap = AddressMap()
        site = capture_call_site(depth=1)
        first = amap.resolve(site)
        second = amap.resolve(RawCallSite(code=site.code, lineno=site.lineno))
        assert first is second  # cache hit: identical object
        assert len(amap) == 1

    def test_duplicated_code_ids_with_different_lines_stay_distinct(self):
        # two probe sites in the same function share id(code) — the cache
        # key must include the line or they would alias
        amap = AddressMap()
        code = _code_for("dup.py", "worker", lineno=5)
        a = amap.resolve(RawCallSite(code=code, lineno=5))
        b = amap.resolve(RawCallSite(code=code, lineno=9))
        assert len(amap) == 2
        assert (a.file, a.function) == (b.file, b.function)
        assert a.line == 5 and b.line == 9

    def test_distinct_live_code_objects_never_alias(self):
        # id() is only unique among *live* objects; holding both code
        # objects must give two cache entries even at the same line
        amap = AddressMap()
        code_a = _code_for("left.py", "f", lineno=3)
        code_b = _code_for("right.py", "f", lineno=3)
        loc_a = amap.resolve(RawCallSite(code=code_a, lineno=3))
        loc_b = amap.resolve(RawCallSite(code=code_b, lineno=3))
        assert len(amap) == 2
        assert loc_a.file == "left.py" and loc_b.file == "right.py"

    def test_interned_small_lineno_not_conflated_across_maps(self):
        # independent maps must not share state
        code = _code_for("solo.py")
        a = AddressMap()
        b = AddressMap()
        a.resolve(RawCallSite(code=code, lineno=1))
        assert len(a) == 1 and len(b) == 0
