"""Shared fixtures and program builders for the test suite."""

from __future__ import annotations

import pytest

from repro import Program, SimConfig
from repro.program import ops as op
from repro.program.program import barrier
from repro.solaris import costs as costs_mod


# ---------------------------------------------------------------------------
# canonical little programs
# ---------------------------------------------------------------------------


def make_fig2_program(work_us: int = 100_000) -> Program:
    """The paper's fig. 2 example: main creates thr_a and thr_b, joins both."""

    def thread(ctx):
        yield op.Compute(work_us)

    def main(ctx):
        thr_a = yield op.ThrCreate(thread, name="thread")
        thr_b = yield op.ThrCreate(thread, name="thread")
        yield op.ThrJoin(thr_a)
        yield op.ThrJoin(thr_b)

    return Program("fig2", main)


def make_barrier_program(
    nthreads: int = 4, iters: int = 3, work_us: int = 10_000
) -> Program:
    """Barrier-phase program (the SPLASH-2 skeleton)."""

    def worker(ctx):
        for _ in range(iters):
            yield op.Compute(work_us)
            yield from barrier(ctx, "ph", nthreads)

    def main(ctx):
        tids = []
        for _ in range(nthreads):
            tids.append((yield op.ThrCreate(worker)))
        for tid in tids:
            yield op.ThrJoin(tid)

    return Program("barrier", main)


def make_mutex_program(nthreads: int = 3, iters: int = 4) -> Program:
    """Threads hammering one mutex (serialisation bottleneck)."""

    def worker(ctx):
        for _ in range(iters):
            yield op.Compute(1_000)
            yield op.MutexLock("m")
            ctx.shared["count"] = ctx.shared.get("count", 0) + 1
            yield op.Compute(100)
            yield op.MutexUnlock("m")

    def main(ctx):
        tids = []
        for _ in range(nthreads):
            tids.append((yield op.ThrCreate(worker)))
        for tid in tids:
            yield op.ThrJoin(tid)

    return Program("mutex", main)


def make_prodcons_program(
    producers: int = 2, consumers: int = 2, items_per_producer: int = 4
) -> Program:
    """Semaphore-mediated producer/consumer."""
    total = producers * items_per_producer
    per_consumer, extra = divmod(total, consumers)

    def producer(ctx):
        for _ in range(items_per_producer):
            yield op.Compute(2_000)
            yield op.MutexLock("buf")
            yield op.Compute(50)
            yield op.MutexUnlock("buf")
            yield op.SemaPost("items")

    def consumer(ctx):
        n = per_consumer + (1 if ctx.args and ctx.args[0] else 0)
        for _ in range(n):
            yield op.SemaWait("items")
            yield op.MutexLock("buf")
            yield op.Compute(50)
            yield op.MutexUnlock("buf")
            yield op.Compute(2_000)

    def main(ctx):
        tids = []
        for _ in range(producers):
            tids.append((yield op.ThrCreate(producer)))
        for i in range(consumers):
            tids.append((yield op.ThrCreate(consumer, args=(i < extra,))))
        for tid in tids:
            yield op.ThrJoin(tid)

    return Program("prodcons", main)


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def fig2_program() -> Program:
    return make_fig2_program()


@pytest.fixture
def barrier_program() -> Program:
    return make_barrier_program()


@pytest.fixture
def free_costs():
    """Zero-cost model for exact-time assertions."""
    return costs_mod.free()


@pytest.fixture
def free_config(free_costs) -> SimConfig:
    return SimConfig(cpus=1, lwps=1, costs=free_costs)
