"""Tests of replay-specific simulator paths (§3.2/§6 rules in action)."""

import pytest

from repro import Program, SimConfig, compile_trace, predict, record_program
from repro.core.events import Primitive, Status
from repro.core.ids import MAIN_THREAD_ID
from repro.core.simulator import ReplayPlan, ReplayThreadMeta, Simulator
from repro.program import ops as op
from repro.program.behavior import Step
from repro.solaris import costs as costs_mod

FREE = costs_mod.free()


def run_plan(steps_by_tid, meta=None, *, cpus=2, costs=FREE):
    plan = ReplayPlan(
        steps={tid: list(steps) for tid, steps in steps_by_tid.items()},
        meta=meta or {},
    )
    sim = Simulator(SimConfig(cpus=cpus, costs=costs))
    return sim.run_replay(plan)


class TestHandAuthoredPlans:
    def test_minimal_plan(self):
        res = run_plan({1: [Step(100, op.ThrExit())]})
        assert res.makespan_us == 100

    def test_plan_without_main_rejected(self):
        from repro.core.errors import SimulationError

        with pytest.raises(SimulationError):
            run_plan({4: [Step(0, op.ThrExit())]})

    def test_create_spawns_replay_thread(self):
        res = run_plan(
            {
                1: [
                    Step(0, op.ThrCreate(replay_tid=4)),
                    Step(0, op.ThrJoin(4)),
                    Step(0, op.ThrExit()),
                ],
                4: [Step(500, op.ThrExit())],
            }
        )
        assert res.makespan_us == 500
        assert set(int(t) for t in res.summaries) == {1, 4}

    def test_create_unknown_tid_rejected(self):
        from repro.core.errors import SimulationError

        with pytest.raises(SimulationError):
            run_plan({1: [Step(0, op.ThrCreate(replay_tid=9)), Step(0, op.ThrExit())]})

    def test_forced_timeout_is_pure_delay(self):
        # §3.2: a timed-out cond_timedwait replays as a delay — nothing
        # touches the condition variable, the thread just sleeps
        res = run_plan(
            {
                1: [
                    Step(
                        0,
                        op.CondTimedWait(
                            "c", "m", timeout_us=750, forced_timeout=True
                        ),
                    ),
                    Step(0, op.ThrExit()),
                ]
            }
        )
        assert res.makespan_us == 750
        ev = [e for e in res.events if e.primitive is Primitive.COND_TIMEDWAIT][0]
        assert ev.status is Status.TIMEOUT

    def test_noop_records_event_without_semantics(self):
        from repro.core.ids import SyncObjectId

        res = run_plan(
            {
                1: [
                    Step(
                        10,
                        op.Noop(
                            noop_primitive=Primitive.MUTEX_TRYLOCK,
                            noop_obj=SyncObjectId("mutex", "m"),
                            busy=True,
                        ),
                    ),
                    Step(0, op.MutexLock("m")),  # must not block: noop left m free
                    Step(0, op.MutexUnlock("m")),
                    Step(0, op.ThrExit()),
                ]
            }
        )
        trylock = [e for e in res.events if e.primitive is Primitive.MUTEX_TRYLOCK]
        assert trylock and trylock[0].status is Status.BUSY

    def test_barrier_broadcast_quota(self):
        # the §6 heuristic: broadcaster waits for its quota of waiters
        res = run_plan(
            {
                1: [
                    Step(0, op.ThrCreate(replay_tid=4)),
                    Step(0, op.ThrCreate(replay_tid=5)),
                    Step(0, op.ThrJoin(4)),
                    Step(0, op.ThrJoin(5)),
                    Step(0, op.ThrExit()),
                ],
                # the broadcaster arrives *first* in this schedule
                4: [
                    Step(0, op.MutexLock("bm")),
                    Step(0, op.CondBroadcast("bc", expected_waiters=1)),
                    Step(0, op.MutexUnlock("bm")),
                    Step(0, op.ThrExit()),
                ],
                5: [
                    Step(1_000, op.MutexLock("bm")),
                    Step(0, op.CondWait("bc", "bm")),
                    Step(0, op.MutexUnlock("bm")),
                    Step(0, op.ThrExit()),
                ],
            },
            cpus=2,
        )
        # both complete: the broadcaster waited for the late waiter
        assert res.makespan_us >= 1_000

    def test_replay_meta_binds_threads(self):
        # thread flagged bound in the log gets its dedicated LWP (and the
        # x6.7 creation cost with real cost models)
        meta = {4: ReplayThreadMeta(tid=4, func_name="w", bound=True)}
        res = run_plan(
            {
                1: [
                    Step(0, op.ThrCreate(replay_tid=4, bound=True)),
                    Step(0, op.ThrJoin(4)),
                    Step(0, op.ThrExit()),
                ],
                4: [Step(100, op.ThrExit())],
            },
            meta=meta,
        )
        assert res.summaries[[t for t in res.summaries if int(t) == 4][0]].func_name == "w"

    def test_wildcard_join_may_reap_any_thread(self):
        # §6: the wildcard "may not be the one that exited in the log"
        res = run_plan(
            {
                1: [
                    Step(0, op.ThrCreate(replay_tid=4)),
                    Step(0, op.ThrCreate(replay_tid=5)),
                    Step(0, op.ThrJoin(None)),
                    Step(0, op.ThrJoin(None)),
                    Step(0, op.ThrExit()),
                ],
                4: [Step(300, op.ThrExit())],
                5: [Step(100, op.ThrExit())],
            },
            cpus=4,
        )
        joins = [e for e in res.events if e.primitive is Primitive.THR_JOIN]
        # the faster thread (T5) is reaped first
        assert int(joins[0].target) == 5


class TestBoundThreadsEndToEnd:
    def test_bound_flag_survives_record_and_replay(self):
        def w(ctx):
            yield op.Compute(1_000)

        def main(ctx):
            t = yield op.ThrCreate(w, bound=True)
            yield op.ThrJoin(t)

        run = record_program(Program("b", main))
        plan = compile_trace(run.trace)
        assert plan.meta[4].bound is True
        creates = [s.op for s in plan.steps[1] if isinstance(s.op, op.ThrCreate)]
        assert creates[0].bound is True

    def test_bound_replay_costs_more_than_unbound(self):
        def w(ctx):
            for _ in range(5):
                yield op.Compute(100)
                yield op.SemaPost("s")

        def make(bound):
            def main(ctx):
                t = yield op.ThrCreate(w, bound=bound)
                yield op.ThrJoin(t)

            return Program("b", main)

        bound_run = record_program(make(True))
        unbound_run = record_program(make(False))
        bound_res = predict(bound_run.trace, SimConfig(cpus=1))
        unbound_res = predict(unbound_run.trace, SimConfig(cpus=1))
        # x6.7 create and x5.9 sema costs show up in the replay too
        assert bound_res.makespan_us > unbound_res.makespan_us
