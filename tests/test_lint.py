"""Tests for the static trace-lint engine (races, lock order, hygiene).

Three layers: rule-level checks on hand-written synthetic logs (each rule
gets a minimal trace that must fire it and a near-miss that must not),
end-to-end checks on the recorded prodcons fixtures (planted bugs found,
clean variant silent), and serialisation checks (SARIF 2.1.0 shape,
JSON, text, CLI exit codes).
"""

from __future__ import annotations

import json

import pytest

from repro import record_program
from repro.analysis.lint import (
    Severity,
    all_rules,
    render_json,
    render_text,
    rule_by_id,
    run_lint,
    sarif_json,
    sweep,
    to_sarif,
)
from repro.cli import main as cli_main
from repro.core.errors import AnalysisError
from repro.faultinject.corrupt import corrupt
from repro.program import ops as op
from repro.program.program import Program
from repro.recorder import logfile
from repro.workloads.prodcons import make_clean, make_racy

# ---------------------------------------------------------------------------
# synthetic-log helpers
# ---------------------------------------------------------------------------

_HEADER = "# vppb-log 1\n# program: synthetic\n# probe-overhead-us: 1\n"


def _log(*records: str) -> str:
    return _HEADER + "\n".join(records) + "\n"


def _lint_text(text: str, **kw):
    return run_lint(logfile.loads(text), **kw)


def _spawn(t_us: int, target: int) -> list:
    """A thr_create call/ret pair issued by main (T1)."""
    return [
        f"0.{t_us:06d} T1 call thr_create",
        f"0.{t_us + 1:06d} T1 ret thr_create target=T{target} status=ok",
    ]


# ---------------------------------------------------------------------------
# rule-level: each rule on a minimal synthetic trace
# ---------------------------------------------------------------------------


class TestLocksetRace:
    def test_unprotected_write_write_race_fires(self):
        text = _log(
            *_spawn(10, 2),
            *_spawn(12, 3),
            "0.000020 T2 call shared_write obj=var:x src=a.c|5|w",
            "0.000021 T2 ret shared_write obj=var:x status=ok src=a.c|5|w",
            "0.000030 T3 call shared_write obj=var:x src=a.c|9|w",
            "0.000031 T3 ret shared_write obj=var:x status=ok src=a.c|9|w",
        )
        report = _lint_text(text)
        races = report.by_rule("VPPB-R001")
        assert len(races) == 1
        f = races[0]
        assert f.severity is Severity.ERROR
        assert str(f.obj) == "var:x"
        assert f.tid == 3 and f.source.line == 9
        assert f.related and f.related[0].tid == 2

    def test_consistent_lock_is_silent(self):
        text = _log(
            *_spawn(10, 2),
            *_spawn(12, 3),
            "0.000020 T2 call mutex_lock obj=mutex:m",
            "0.000021 T2 ret mutex_lock obj=mutex:m status=ok",
            "0.000022 T2 call shared_write obj=var:x",
            "0.000023 T2 ret shared_write obj=var:x status=ok",
            "0.000024 T2 call mutex_unlock obj=mutex:m",
            "0.000025 T2 ret mutex_unlock obj=mutex:m status=ok",
            "0.000030 T3 call mutex_lock obj=mutex:m",
            "0.000031 T3 ret mutex_lock obj=mutex:m status=ok",
            "0.000032 T3 call shared_write obj=var:x",
            "0.000033 T3 ret shared_write obj=var:x status=ok",
            "0.000034 T3 call mutex_unlock obj=mutex:m",
            "0.000035 T3 ret mutex_unlock obj=mutex:m status=ok",
        )
        assert not _lint_text(text).by_rule("VPPB-R001")

    def test_single_thread_is_exempt(self):
        # the virgin->exclusive initialisation window never reports
        text = _log(
            "0.000010 T1 call shared_write obj=var:x",
            "0.000011 T1 ret shared_write obj=var:x status=ok",
            "0.000012 T1 call shared_write obj=var:x",
            "0.000013 T1 ret shared_write obj=var:x status=ok",
        )
        assert not _lint_text(text).by_rule("VPPB-R001")

    def test_init_then_readonly_publish_is_benign(self):
        # Eraser's read transition: writes by the initialiser followed by
        # unlocked reads elsewhere stay in SHARED — no report
        text = _log(
            *_spawn(10, 2),
            "0.000020 T1 call shared_write obj=var:x",
            "0.000021 T1 ret shared_write obj=var:x status=ok",
            "0.000030 T2 call shared_read obj=var:x",
            "0.000031 T2 ret shared_read obj=var:x status=ok",
            "0.000032 T2 call shared_read obj=var:x",
            "0.000033 T2 ret shared_read obj=var:x status=ok",
        )
        assert not _lint_text(text).by_rule("VPPB-R001")

    def test_semaphore_counts_as_protection(self):
        # the binary-semaphore-as-mutex pattern must not be flagged
        text = _log(
            *_spawn(10, 2),
            "0.000020 T2 call sema_wait obj=sema:s",
            "0.000021 T2 ret sema_wait obj=sema:s status=ok",
            "0.000022 T2 call shared_write obj=var:x",
            "0.000023 T2 ret shared_write obj=var:x status=ok",
            "0.000024 T2 call sema_post obj=sema:s",
            "0.000025 T2 ret sema_post obj=sema:s status=ok",
            "0.000030 T1 call sema_wait obj=sema:s",
            "0.000031 T1 ret sema_wait obj=sema:s status=ok",
            "0.000032 T1 call shared_write obj=var:x",
            "0.000033 T1 ret shared_write obj=var:x status=ok",
            "0.000034 T1 call sema_post obj=sema:s",
            "0.000035 T1 ret sema_post obj=sema:s status=ok",
        )
        assert not _lint_text(text).by_rule("VPPB-R001")


class TestLockOrder:
    def _abba(self) -> str:
        return _log(
            *_spawn(10, 2),
            *_spawn(12, 3),
            "0.000020 T2 call mutex_lock obj=mutex:a src=a.c|3|p",
            "0.000021 T2 ret mutex_lock obj=mutex:a status=ok src=a.c|3|p",
            "0.000022 T2 call mutex_lock obj=mutex:b src=a.c|4|p",
            "0.000023 T2 ret mutex_lock obj=mutex:b status=ok src=a.c|4|p",
            "0.000024 T2 call mutex_unlock obj=mutex:b",
            "0.000025 T2 ret mutex_unlock obj=mutex:b status=ok",
            "0.000026 T2 call mutex_unlock obj=mutex:a",
            "0.000027 T2 ret mutex_unlock obj=mutex:a status=ok",
            "0.000030 T3 call mutex_lock obj=mutex:b src=a.c|8|q",
            "0.000031 T3 ret mutex_lock obj=mutex:b status=ok src=a.c|8|q",
            "0.000032 T3 call mutex_lock obj=mutex:a src=a.c|9|q",
            "0.000033 T3 ret mutex_lock obj=mutex:a status=ok src=a.c|9|q",
            "0.000034 T3 call mutex_unlock obj=mutex:a",
            "0.000035 T3 ret mutex_unlock obj=mutex:a status=ok",
            "0.000036 T3 call mutex_unlock obj=mutex:b",
            "0.000037 T3 ret mutex_unlock obj=mutex:b status=ok",
        )

    def test_abba_cycle_reported_once_with_both_witnesses(self):
        findings = _lint_text(self._abba()).by_rule("VPPB-R002")
        assert len(findings) == 1
        f = findings[0]
        assert f.severity is Severity.ERROR
        witness_tids = {site.tid for site in f.related}
        assert witness_tids == {2, 3}
        witness_lines = {site.source.line for site in f.related}
        assert witness_lines == {4, 9}  # the two inner acquisitions

    def test_consistent_nesting_is_silent(self):
        text = _log(
            *_spawn(10, 2),
            *_spawn(12, 3),
            "0.000020 T2 call mutex_lock obj=mutex:a",
            "0.000021 T2 ret mutex_lock obj=mutex:a status=ok",
            "0.000022 T2 call mutex_lock obj=mutex:b",
            "0.000023 T2 ret mutex_lock obj=mutex:b status=ok",
            "0.000024 T2 call mutex_unlock obj=mutex:b",
            "0.000025 T2 ret mutex_unlock obj=mutex:b status=ok",
            "0.000026 T2 call mutex_unlock obj=mutex:a",
            "0.000027 T2 ret mutex_unlock obj=mutex:a status=ok",
            "0.000030 T3 call mutex_lock obj=mutex:a",
            "0.000031 T3 ret mutex_lock obj=mutex:a status=ok",
            "0.000032 T3 call mutex_lock obj=mutex:b",
            "0.000033 T3 ret mutex_lock obj=mutex:b status=ok",
            "0.000034 T3 call mutex_unlock obj=mutex:b",
            "0.000035 T3 ret mutex_unlock obj=mutex:b status=ok",
            "0.000036 T3 call mutex_unlock obj=mutex:a",
            "0.000037 T3 ret mutex_unlock obj=mutex:a status=ok",
        )
        assert not _lint_text(text).by_rule("VPPB-R002")

    def test_cond_wait_breaks_the_hold(self):
        # waiting releases the mutex, so lock-b-during-wait is NOT nesting
        text = _log(
            *_spawn(10, 2),
            "0.000020 T2 call mutex_lock obj=mutex:a",
            "0.000021 T2 ret mutex_lock obj=mutex:a status=ok",
            "0.000022 T2 call cond_wait obj=cond:c obj2=mutex:a",
            "0.000030 T2 ret cond_wait obj=cond:c obj2=mutex:a status=ok",
            "0.000032 T2 call mutex_unlock obj=mutex:a",
            "0.000033 T2 ret mutex_unlock obj=mutex:a status=ok",
        )
        analysis = sweep(logfile.loads(text))
        assert not analysis.edges
        assert not analysis.hygiene


class TestCondRules:
    def test_wait_without_mutex(self):
        text = _log(
            *_spawn(10, 2),
            "0.000020 T2 call cond_wait obj=cond:c obj2=mutex:m src=a.c|7|w",
            "0.000021 T2 ret cond_wait obj=cond:c obj2=mutex:m status=ok",
        )
        findings = _lint_text(text).by_rule("VPPB-R003")
        assert len(findings) == 1
        assert findings[0].tid == 2
        assert findings[0].severity is Severity.ERROR
        assert findings[0].source.line == 7

    def test_signal_without_waiter(self):
        text = _log(
            "0.000010 T1 call cond_signal obj=cond:c",
            "0.000011 T1 ret cond_signal obj=cond:c status=ok",
        )
        findings = _lint_text(text).by_rule("VPPB-R004")
        assert len(findings) == 1
        assert str(findings[0].obj) == "cond:c"

    def test_signal_with_waiter_is_fine(self):
        text = _log(
            *_spawn(10, 2),
            "0.000020 T2 call mutex_lock obj=mutex:m",
            "0.000021 T2 ret mutex_lock obj=mutex:m status=ok",
            "0.000022 T2 call cond_wait obj=cond:c obj2=mutex:m",
            "0.000040 T2 ret cond_wait obj=cond:c obj2=mutex:m status=ok",
            "0.000042 T2 call mutex_unlock obj=mutex:m",
            "0.000043 T2 ret mutex_unlock obj=mutex:m status=ok",
            "0.000030 T1 call cond_signal obj=cond:c",
            "0.000031 T1 ret cond_signal obj=cond:c status=ok",
        )
        assert not _lint_text(text).by_rule("VPPB-R004")

    def test_timedwait_timeout_hotspot(self):
        records = list(_spawn(10, 2))
        t = 20
        for _ in range(3):
            records += [
                f"0.{t:06d} T2 call mutex_lock obj=mutex:m",
                f"0.{t + 1:06d} T2 ret mutex_lock obj=mutex:m status=ok",
                f"0.{t + 2:06d} T2 call cond_timedwait obj=cond:c obj2=mutex:m src=a.c|9|poll",
                f"0.{t + 8:06d} T2 ret cond_timedwait obj=cond:c obj2=mutex:m status=timeout src=a.c|9|poll",
                f"0.{t + 9:06d} T2 call mutex_unlock obj=mutex:m",
                f"0.{t + 10:06d} T2 ret mutex_unlock obj=mutex:m status=ok",
            ]
            t += 20
        findings = _lint_text(_log(*records)).by_rule("VPPB-R005")
        assert len(findings) == 1
        assert findings[0].source.line == 9
        assert "3 of 3" in findings[0].message


class TestHygieneRules:
    def test_unlock_without_lock(self):
        text = _log(
            *_spawn(10, 2),
            "0.000020 T2 call mutex_unlock obj=mutex:m src=a.c|4|w",
            "0.000021 T2 ret mutex_unlock obj=mutex:m status=ok",
        )
        findings = _lint_text(text).by_rule("VPPB-R006")
        assert len(findings) == 1
        assert findings[0].tid == 2
        assert findings[0].severity is Severity.ERROR

    def test_join_holding_lock(self):
        text = _log(
            *_spawn(10, 2),
            "0.000020 T2 call thr_exit",
            "0.000030 T1 call mutex_lock obj=mutex:m",
            "0.000031 T1 ret mutex_lock obj=mutex:m status=ok",
            "0.000032 T1 call thr_join target=T2 src=a.c|20|main",
            "0.000033 T1 ret thr_join target=T2 status=ok",
            "0.000034 T1 call mutex_unlock obj=mutex:m",
            "0.000035 T1 ret mutex_unlock obj=mutex:m status=ok",
        )
        findings = _lint_text(text).by_rule("VPPB-R007")
        assert len(findings) == 1
        assert findings[0].tid == 1
        assert "mutex:m" in findings[0].message

    def test_never_contended_lock(self):
        records = list(_spawn(10, 2))
        t = 20
        for _ in range(4):  # meets the min_acquisitions evidence bar
            records += [
                f"0.{t:06d} T2 call mutex_lock obj=mutex:mine",
                f"0.{t + 1:06d} T2 ret mutex_lock obj=mutex:mine status=ok",
                f"0.{t + 2:06d} T2 call mutex_unlock obj=mutex:mine",
                f"0.{t + 3:06d} T2 ret mutex_unlock obj=mutex:mine status=ok",
            ]
            t += 10
        findings = _lint_text(_log(*records)).by_rule("VPPB-R008")
        assert len(findings) == 1
        assert findings[0].severity is Severity.NOTE
        assert findings[0].tid == 2

    def test_pathological_hold(self):
        text = _log(
            *_spawn(10, 2),
            # T2 holds the shared mutex for ~90% of the monitored run
            "0.000020 T2 call mutex_lock obj=mutex:m src=a.c|3|hog",
            "0.000021 T2 ret mutex_lock obj=mutex:m status=ok src=a.c|3|hog",
            "0.900000 T2 call mutex_unlock obj=mutex:m",
            "0.900001 T2 ret mutex_unlock obj=mutex:m status=ok",
            "0.900010 T1 call mutex_lock obj=mutex:m",
            "0.900011 T1 ret mutex_lock obj=mutex:m status=ok",
            "0.900012 T1 call mutex_unlock obj=mutex:m",
            "0.900013 T1 ret mutex_unlock obj=mutex:m status=ok",
        )
        findings = _lint_text(text).by_rule("VPPB-R009")
        assert len(findings) == 1
        assert findings[0].tid == 2
        assert findings[0].source.line == 3


# ---------------------------------------------------------------------------
# engine: registry, selection, report mechanics
# ---------------------------------------------------------------------------


class TestEngine:
    def test_registry_has_the_catalog(self):
        ids = [r.id for r in all_rules()]
        assert ids == sorted(ids)
        assert {f"VPPB-R{n:03d}" for n in range(1, 10)} <= set(ids)
        for rule in all_rules():
            assert rule.title and rule.rationale

    def test_rule_by_id_accepts_short_spellings(self):
        assert rule_by_id("R001").id == "VPPB-R001"
        assert rule_by_id("r001").id == "VPPB-R001"
        assert rule_by_id("VPPB-R001").id == "VPPB-R001"

    def test_unknown_rule_id_raises_analysis_error(self):
        with pytest.raises(AnalysisError):
            rule_by_id("R999")
        with pytest.raises(AnalysisError):
            _lint_text(_log("0.000010 T1 call thr_exit"), select=["R999"])

    def test_select_and_ignore(self):
        text = _log(
            *_spawn(10, 2),
            "0.000020 T2 call mutex_unlock obj=mutex:m",
            "0.000021 T2 ret mutex_unlock obj=mutex:m status=ok",
        )
        only = _lint_text(text, select=["R006"])
        assert only.rules_run == ("VPPB-R006",)
        assert len(only) == 1
        ignored = _lint_text(text, ignore=["R006"])
        assert "VPPB-R006" not in ignored.rules_run
        assert not ignored.by_rule("VPPB-R006")

    def test_report_sorted_worst_first(self):
        trace = record_program(make_racy()).trace
        report = run_lint(trace)
        ranks = [f.severity.rank for f in report.findings]
        assert ranks == sorted(ranks, reverse=True)

    def test_severity_parse(self):
        assert Severity.parse("ERROR") is Severity.ERROR
        with pytest.raises(ValueError):
            Severity.parse("fatal")


# ---------------------------------------------------------------------------
# end-to-end: the prodcons fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def racy_trace():
    return record_program(make_racy()).trace


@pytest.fixture(scope="module")
def racy_report(racy_trace):
    return run_lint(racy_trace)


class TestProdconsFixtures:
    def test_planted_race_found(self, racy_trace, racy_report):
        races = racy_report.by_rule("VPPB-R001")
        assert races, "the planted data race was not found"
        f = races[0]
        assert str(f.obj) == "var:slot"
        assert f.tid in {int(t) for t in racy_trace.thread_ids()}
        assert f.source is not None and f.source.file.endswith("prodcons.py")

    def test_planted_abba_found_with_witnesses(self, racy_trace, racy_report):
        cycles = racy_report.by_rule("VPPB-R002")
        assert cycles, "the planted lock-order inversion was not found"
        f = cycles[0]
        names = {str(o) for o in (f.obj,)} | {
            w for site in f.related for w in ("mutex:head", "mutex:tail")
            if w in site.label
        }
        assert "mutex:head" in names and "mutex:tail" in names
        tids = {site.tid for site in f.related}
        assert len(tids) >= 2  # witnesses from both sides of the inversion
        for site in f.related:
            assert site.source is not None
            assert site.source.file.endswith("prodcons.py")

    def test_clean_variant_is_silent(self):
        trace = record_program(make_clean()).trace
        report = run_lint(trace)
        assert not report.at_least(Severity.ERROR), render_text(report)

    def test_bundled_clean_workloads_have_no_errors(self):
        # the §4 validation suite analogues must lint clean
        from repro.workloads import all_workloads, get_workload

        for name in ("fft", "lu", "prodcons", "prodcons-tuned"):
            try:
                workload = get_workload(name)
            except KeyError:
                continue
            trace = record_program(workload.make_program(4, 0.02)).trace
            report = run_lint(trace)
            assert not report.at_least(Severity.ERROR), (
                name + ": " + render_text(report)
            )

    def test_corrupted_log_gains_a_lock_order_finding(self, racy_trace):
        # the chaos-side fixture: inverting one window of a consistent log
        def worker(ctx):
            for _ in range(3):
                yield op.Compute(100)
                yield op.MutexLock("A")
                yield op.MutexLock("B")
                yield op.Compute(500)
                yield op.MutexUnlock("B")
                yield op.MutexUnlock("A")

        def main(ctx):
            tids = []
            for _ in range(3):
                tids.append((yield op.ThrCreate(worker, name="worker")))
            for tid in tids:
                yield op.ThrJoin(tid)

        text = logfile.dumps(record_program(Program("nested", main)).trace)
        assert not _lint_text(text).by_rule("VPPB-R002")
        damaged = corrupt(text, "invert-lock-order", seed=0)
        assert damaged != text
        report = _lint_text(damaged)  # must still parse strictly
        assert report.by_rule("VPPB-R002")


# ---------------------------------------------------------------------------
# serialisation: SARIF 2.1.0, JSON, text
# ---------------------------------------------------------------------------


class TestSerialisation:
    def test_sarif_shape(self, racy_report):
        log = to_sarif(racy_report)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "vppb-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert "VPPB-R001" in rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "note", "warning", "error",
            )
        assert run["results"], "racy fixture must produce results"
        for result in run["results"]:
            assert result["ruleId"].startswith("VPPB-R")
            assert result["level"] in ("note", "warning", "error")
            assert result["message"]["text"]
            assert result["ruleIndex"] == rule_ids.index(result["ruleId"])
        located = [r for r in run["results"] if "locations" in r]
        assert located
        phys = located[0]["locations"][0]["physicalLocation"]
        assert phys["artifactLocation"]["uri"].endswith("prodcons.py")
        assert phys["region"]["startLine"] >= 1

    def test_sarif_json_round_trips(self, racy_report):
        parsed = json.loads(sarif_json(racy_report))
        assert parsed["runs"][0]["properties"]["program"] == "prodcons-racy"

    def test_json_render(self, racy_report):
        data = json.loads(render_json(racy_report))
        assert data["program"] == "prodcons-racy"
        assert data["counts"].get("error", 0) >= 2
        assert all("rule_id" in f for f in data["findings"])

    def test_text_render(self, racy_report):
        text = render_text(racy_report)
        assert "VPPB-R001" in text and "VPPB-R002" in text
        assert "prodcons-racy:" in text.splitlines()[-1]
        bare = render_text(racy_report, explain=False)
        assert "why:" not in bare


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCli:
    @pytest.fixture(scope="class")
    def racy_log(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("lint") / "racy.log"
        logfile.dump(record_program(make_racy()).trace, path)
        return str(path)

    @pytest.fixture(scope="class")
    def clean_log(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("lint") / "clean.log"
        logfile.dump(record_program(make_clean()).trace, path)
        return str(path)

    def test_exit_one_on_errors(self, racy_log, capsys):
        assert cli_main(["lint", racy_log]) == 1
        out = capsys.readouterr().out
        assert "VPPB-R001" in out and "VPPB-R002" in out

    def test_exit_zero_on_clean(self, clean_log, capsys):
        assert cli_main(["lint", clean_log]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_fail_on_never(self, racy_log, capsys):
        assert cli_main(["lint", racy_log, "--fail-on", "never"]) == 0
        capsys.readouterr()

    def test_bad_fail_on_is_usage_error(self, racy_log, capsys):
        assert cli_main(["lint", racy_log, "--fail-on", "fatal"]) == 2
        capsys.readouterr()

    def test_unknown_rule_is_usage_error(self, racy_log, capsys):
        assert cli_main(["lint", racy_log, "--select", "R999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_log_is_usage_error(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "nope.log")]) == 2
        capsys.readouterr()

    def test_select_filters(self, racy_log, capsys):
        assert cli_main(["lint", racy_log, "--select", "R002"]) == 1
        out = capsys.readouterr().out
        assert "VPPB-R002" in out and "VPPB-R001" not in out

    def test_sarif_output_file(self, racy_log, tmp_path, capsys):
        out_path = tmp_path / "lint.sarif"
        code = cli_main(
            ["lint", racy_log, "--format", "sarif", "-o", str(out_path)]
        )
        capsys.readouterr()
        assert code == 1
        log = json.loads(out_path.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]

    def test_json_format_stdout(self, racy_log, capsys):
        assert cli_main(["lint", racy_log, "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["program"] == "prodcons-racy"
