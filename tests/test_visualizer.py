"""Tests for the Visualizer: graphs, zoom, compression, inspection,
rendering."""

import pytest

from repro import SimConfig, predict, record_program, simulate_program
from repro.core.errors import VisualizationError
from repro.core.events import Primitive
from repro.core.ids import SyncObjectId, ThreadId
from repro.core.result import SegmentKind
from repro.program import ops as op
from repro.program.program import Program
from repro.visualizer import (
    EventInspector,
    FlowGraph,
    ParallelismGraph,
    ZoomState,
    render_ascii,
    render_flow_ascii,
    render_parallelism_ascii,
    render_svg,
    save_svg,
    style_for,
)
from repro.visualizer.symbols import Shape
from tests.conftest import make_fig2_program, make_mutex_program


@pytest.fixture(scope="module")
def fig2_result():
    run = record_program(make_fig2_program(work_us=10_000))
    return predict(run.trace, SimConfig(cpus=2))


@pytest.fixture(scope="module")
def mutex_result():
    run = record_program(make_mutex_program(nthreads=3, iters=3))
    return predict(run.trace, SimConfig(cpus=4))


class TestParallelismGraph:
    def test_counts_match_machine(self, fig2_result):
        graph = ParallelismGraph.from_result(fig2_result)
        assert graph.max_running() <= 2  # 2 CPUs
        assert graph.max_running() == 2  # both workers overlap

    def test_step_function_query(self, fig2_result):
        graph = ParallelismGraph.from_result(fig2_result)
        mid = fig2_result.makespan_us // 2
        point = graph.at(mid)
        assert point.running + point.runnable >= 1

    def test_average_between_bounds(self, fig2_result):
        graph = ParallelismGraph.from_result(fig2_result)
        assert 0 < graph.average_running() <= 2

    def test_runnable_band_appears_when_threads_starve(self):
        # 3 workers on 1 CPU: two are runnable while one runs
        run = record_program(make_mutex_program(nthreads=3, iters=2))
        res = predict(run.trace, SimConfig(cpus=1))
        graph = ParallelismGraph.from_result(res)
        assert graph.average_runnable() > 0

    def test_window_crop(self, fig2_result):
        graph = ParallelismGraph.from_result(fig2_result)
        mid = fig2_result.makespan_us // 2
        sub = graph.window(mid, fig2_result.makespan_us)
        assert sub.points[0].time_us == mid
        assert sub.end_us == fig2_result.makespan_us

    def test_bad_window_rejected(self, fig2_result):
        graph = ParallelismGraph.from_result(fig2_result)
        with pytest.raises(VisualizationError):
            graph.window(100, 50)

    def test_bottleneck_intervals_cover_serial_parts(self, fig2_result):
        graph = ParallelismGraph.from_result(fig2_result)
        intervals = graph.bottleneck_intervals(max_running=1)
        # thread creation at the start is serial
        assert intervals and intervals[0][0] == 0

    def test_empty_result(self):
        # an empty main still pays its thr_exit cost, so at most one
        # thread ever runs
        res = simulate_program(Program("e", lambda ctx: iter(())), SimConfig())
        graph = ParallelismGraph.from_result(res)
        assert graph.max_running() <= 1
        assert graph.average_runnable() == 0


class TestFlowGraph:
    def test_rows_ordered_by_tid(self, fig2_result):
        flow = FlowGraph.from_result(fig2_result)
        assert flow.thread_ids() == sorted(flow.thread_ids())

    def test_row_labels(self, fig2_result):
        flow = FlowGraph.from_result(fig2_result)
        row = flow.row_for(ThreadId(4))
        assert row.label == "T4"
        assert row.func_name == "thread"

    def test_unknown_row_rejected(self, fig2_result):
        flow = FlowGraph.from_result(fig2_result)
        with pytest.raises(VisualizationError):
            flow.row_for(ThreadId(99))

    def test_segments_contiguous_per_row(self, fig2_result):
        flow = FlowGraph.from_result(fig2_result)
        for row in flow.rows:
            for a, b in zip(row.segments, row.segments[1:]):
                assert a.end_us <= b.start_us or a.end_us == b.start_us

    def test_window_crops_segments(self, fig2_result):
        flow = FlowGraph.from_result(fig2_result)
        mid = fig2_result.makespan_us // 2
        sub = flow.window(mid, fig2_result.makespan_us)
        for row in sub.rows:
            for seg in row.segments:
                assert seg.start_us >= mid

    def test_bad_window_rejected(self, fig2_result):
        flow = FlowGraph.from_result(fig2_result)
        with pytest.raises(VisualizationError):
            flow.window(10, 10)

    def test_automatic_compression_drops_finished_threads(self, fig2_result):
        flow = FlowGraph.from_result(fig2_result)
        # in the tail of the run only main is active (joins/exit)
        tail = flow.compressed(
            window_start_us=fig2_result.makespan_us - 10,
            window_end_us=fig2_result.makespan_us,
        )
        assert tail.thread_ids() == [1]

    def test_manual_thread_selection(self, fig2_result):
        flow = FlowGraph.from_result(fig2_result)
        chosen = flow.compressed(keep=[4, 5])
        assert chosen.thread_ids() == [4, 5]


class TestZoom:
    def test_zoom_in_keeps_left_edge(self):
        z = ZoomState(0, 3000)
        z.zoom_in(1.5)
        assert z.view_start_us == 0
        assert z.view_end_us == 2000

    def test_zoom_factor_3(self):
        z = ZoomState(0, 3000)
        z.zoom_in(3.0)
        assert z.span_us == 1000

    def test_arbitrary_magnification_by_steps(self):
        z = ZoomState(0, 3000)
        z.zoom_in(1.5)
        z.zoom_in(3.0)
        assert z.magnification == pytest.approx(4.5, rel=0.01)

    def test_only_paper_factors_allowed(self):
        z = ZoomState(0, 1000)
        with pytest.raises(VisualizationError):
            z.zoom_in(2.0)

    def test_zoom_out_clamped_to_full_range(self):
        z = ZoomState(0, 1000)
        z.zoom_out(3.0)
        assert (z.view_start_us, z.view_end_us) == (0, 1000)

    def test_min_span_one_microsecond(self):
        z = ZoomState(0, 2)
        for _ in range(10):
            z.zoom_in(3.0)
        assert z.span_us >= 1

    def test_select_interval(self):
        z = ZoomState(0, 1000)
        z.select_interval(200, 300)
        assert (z.view_start_us, z.view_end_us) == (200, 300)

    def test_select_outside_range_rejected(self):
        z = ZoomState(0, 1000)
        with pytest.raises(VisualizationError):
            z.select_interval(500, 2000)

    def test_scroll_to_center(self):
        z = ZoomState(0, 1000)
        z.select_interval(0, 100)
        z.scroll_to_center(500)
        assert z.view_start_us == 450 and z.view_end_us == 550

    def test_scroll_clamped_at_edges(self):
        z = ZoomState(0, 1000)
        z.select_interval(0, 100)
        z.scroll_to_center(990)
        assert z.view_end_us == 1000

    def test_reset(self):
        z = ZoomState(0, 1000)
        z.zoom_in(3.0)
        z.reset()
        assert z.span_us == 1000

    def test_empty_range_rejected(self):
        with pytest.raises(VisualizationError):
            ZoomState(5, 5)


class TestInspector:
    def test_popup_fields(self, fig2_result):
        insp = EventInspector(fig2_result)
        create_idx = next(
            ev.index
            for ev in fig2_result.events
            if ev.primitive is Primitive.THR_CREATE
        )
        info = insp.popup(create_idx)
        assert info.tid == 1
        assert info.func_name == "main"
        assert info.thread_work_us > 0
        assert info.source is not None
        text = info.describe()
        assert "thr_create" in text and "source:" in text

    def test_popup_bad_index(self, fig2_result):
        with pytest.raises(VisualizationError):
            EventInspector(fig2_result).popup(10_000)

    def test_next_prev_same_thread(self, fig2_result):
        insp = EventInspector(fig2_result)
        first_main = next(
            ev for ev in fig2_result.events if int(ev.tid) == 1
        )
        nxt = insp.next_event(first_main.index)
        assert nxt is not None and int(nxt.tid) == 1
        back = insp.prev_event(nxt.index)
        assert back.index == first_main.index

    def test_next_similar_follows_same_object(self, mutex_result):
        insp = EventInspector(mutex_result)
        m = SyncObjectId("mutex", "m")
        first = next(ev for ev in mutex_result.events if ev.obj == m)
        nxt = insp.next_similar(first.index)
        assert nxt is not None and nxt.obj == m

    def test_all_on_object_time_ordered(self, mutex_result):
        insp = EventInspector(mutex_result)
        ops = insp.all_on_object(SyncObjectId("mutex", "m"))
        assert len(ops) >= 2 * 3 * 3  # lock+unlock per iteration per thread
        times = [ev.start_us for ev in ops]
        assert times == sorted(times)

    def test_find_at_nearest(self, fig2_result):
        insp = EventInspector(fig2_result)
        ev = insp.find_at(ThreadId(4), 0)
        assert ev is not None and int(ev.tid) == 4

    def test_source_position_for_editor(self, fig2_result):
        insp = EventInspector(fig2_result)
        create_idx = next(
            ev.index
            for ev in fig2_result.events
            if ev.primitive is Primitive.THR_CREATE
        )
        path, line = insp.source_position(create_idx)
        assert path.endswith(".py") and line > 0


class TestSymbols:
    def test_semaphores_are_red_arrows(self):
        # §3.3: "all semaphores are shown in red, and the primitives
        # sema_post and sema_wait are represented as an upward and a
        # downward facing arrow"
        post = style_for(Primitive.SEMA_POST)
        wait = style_for(Primitive.SEMA_WAIT)
        assert post.shape is Shape.ARROW_UP
        assert wait.shape is Shape.ARROW_DOWN
        assert post.color == wait.color  # both red

    def test_every_primitive_has_a_style(self):
        for prim in Primitive:
            style = style_for(prim)
            assert style.char and style.color.startswith("#")

    def test_object_families_share_colour(self):
        assert (
            style_for(Primitive.MUTEX_LOCK).color
            == style_for(Primitive.MUTEX_UNLOCK).color
        )
        assert (
            style_for(Primitive.MUTEX_LOCK).color
            != style_for(Primitive.SEMA_WAIT).color
        )


class TestRenderers:
    def test_svg_well_formed(self, fig2_result):
        svg = render_svg(fig2_result, title="test")
        assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
        assert svg.count("<") == svg.count(">")

    def test_svg_contains_thread_labels(self, fig2_result):
        svg = render_svg(fig2_result)
        assert "T1 main" in svg and "T4 thread" in svg

    def test_svg_window(self, fig2_result):
        svg = render_svg(
            fig2_result, window_start_us=0, window_end_us=fig2_result.makespan_us // 2
        )
        assert "<svg" in svg

    def test_save_svg(self, fig2_result, tmp_path):
        path = save_svg(fig2_result, tmp_path / "out.svg")
        assert path.exists() and path.stat().st_size > 500

    def test_ascii_flow_contains_rows(self, fig2_result):
        text = render_flow_ascii(fig2_result, width=60)
        lines = text.splitlines()
        assert len(lines) == 3  # T1, T4, T5
        assert lines[0].startswith("T1 main")
        assert "=" in lines[1]  # worker runs

    def test_ascii_parallelism_peak_labelled(self, fig2_result):
        text = render_parallelism_ascii(fig2_result, width=60)
        assert "peak 2" in text

    def test_ascii_combined(self, fig2_result):
        text = render_ascii(fig2_result, width=60)
        assert "parallelism" in text and "T1 main" in text

    def test_blocked_time_has_no_line(self):
        # a thread blocked on a semaphore for the whole run shows a gap
        def waiter(ctx):
            yield op.SemaWait("s")

        def main(ctx):
            t = yield op.ThrCreate(waiter, name="waiter")
            yield op.Compute(100_000)
            yield op.SemaPost("s")
            yield op.ThrJoin(t)

        res = simulate_program(Program("block", main), SimConfig(cpus=2))
        text = render_flow_ascii(res, width=60)
        waiter_line = [l for l in text.splitlines() if "waiter" in l][0]
        bar = waiter_line.split("|")[1]
        assert bar.count(" ") > 40  # mostly blocked: mostly gap


class TestVectorisedSampling:
    def test_sample_matches_scalar_at(self, fig2_result):
        import numpy as np

        graph = ParallelismGraph.from_result(fig2_result)
        times = np.linspace(0, fig2_result.makespan_us, 200).astype(np.int64)
        running, runnable = graph.sample(times)
        for t, r, q in zip(times.tolist(), running.tolist(), runnable.tolist()):
            point = graph.at(t)
            assert (r, q) == (point.running, point.runnable)

    def test_sample_before_first_breakpoint_is_zero(self, fig2_result):
        import numpy as np

        graph = ParallelismGraph.from_result(fig2_result)
        running, runnable = graph.sample(np.array([-5], dtype=np.int64))
        assert running[0] == 0 and runnable[0] == 0
