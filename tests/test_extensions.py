"""Tests for the extension features: POSIX names, I/O modeling, the
excluded-workload failure modes, what-if sweeps and the stats view."""

import pytest

from repro import Program, SimConfig, predict, record_program
from repro.analysis import find_knee, lwp_sensitivity, speedup_curve
from repro.core.errors import MonitorabilityError
from repro.core.events import Phase, Primitive, Status
from repro.program import ops as op
from repro.program.mpexec import run_multiprocessor
from repro.program.uniexec import record_program as record
from repro.recorder import logfile
from repro.recorder.posix import (
    POSIX_NAMES,
    from_posix_name,
    primitive_for_name,
    to_posix_name,
)
from repro.visualizer import format_thread_stats, thread_stats
from repro.workloads.excluded import (
    make_spinner,
    make_task_stealer,
    stealing_degeneracy,
    work_distribution,
)
from tests.conftest import make_barrier_program, make_fig2_program


class TestPosixNames:
    def test_every_library_primitive_has_a_posix_name(self):
        from repro.core.events import ACCESS_PRIMITIVES

        # markers and access probes are recorder instrumentation, not
        # thread-library calls — they have no POSIX spelling
        markers = {
            Primitive.START_COLLECT,
            Primitive.END_COLLECT,
            Primitive.THREAD_START,
            Primitive.IO_WAIT,
        } | set(ACCESS_PRIMITIVES)
        for prim in Primitive:
            if prim in markers:
                continue
            assert prim in POSIX_NAMES, prim

    def test_roundtrip(self):
        for prim, name in POSIX_NAMES.items():
            assert from_posix_name(name) is prim
            assert to_posix_name(prim) == name

    def test_primitive_for_name_accepts_both(self):
        assert primitive_for_name("mutex_lock") is Primitive.MUTEX_LOCK
        assert primitive_for_name("pthread_mutex_lock") is Primitive.MUTEX_LOCK
        assert primitive_for_name("warp_drive") is None

    def test_markers_keep_native_names(self):
        assert to_posix_name(Primitive.START_COLLECT) == "start_collect"

    def test_posix_log_roundtrips(self):
        run = record(make_fig2_program(1_000))
        text = logfile.dumps(run.trace, posix_names=True)
        assert "pthread_create" in text and "thr_create" not in text
        back = logfile.loads(text)
        assert list(back) == list(run.trace)

    def test_posix_log_predicts_identically(self):
        run = record(make_barrier_program(nthreads=2, iters=1))
        posix = logfile.loads(logfile.dumps(run.trace, posix_names=True))
        a = predict(run.trace, SimConfig(cpus=2))
        b = predict(posix, SimConfig(cpus=2))
        assert a.makespan_us == b.makespan_us


class TestIoModeling:
    def _io_program(self, nthreads=3, io_us=5_000):
        def worker(ctx):
            yield op.Compute(1_000)
            yield op.IoWait(io_us)
            yield op.Compute(1_000)

        def main(ctx):
            tids = []
            for _ in range(nthreads):
                tids.append((yield op.ThrCreate(worker)))
            for t in tids:
                yield op.ThrJoin(t)

        return Program("io", main)

    def test_io_recorded_with_duration(self):
        run = record(self._io_program())
        ios = [r for r in run.trace if r.primitive is Primitive.IO_WAIT]
        assert len(ios) == 6  # call + ret per thread
        calls = [r for r in ios if r.phase is Phase.CALL]
        assert all(r.arg == 5_000 for r in calls)

    def test_io_waits_overlap_on_the_monitored_run(self):
        # sleeping threads release the LWP, so even one processor
        # overlaps the waits (Solaris libthread's async-I/O behaviour)
        run = record(self._io_program(nthreads=4, io_us=20_000))
        serial = 4 * 22_000
        assert run.monitored_makespan_us < serial * 0.6

    def test_io_replay_reproduces_waits(self):
        run = record(self._io_program(), overhead_us=0)
        res = predict(run.trace, SimConfig(cpus=1, lwps=1))
        assert res.makespan_us == pytest.approx(
            run.monitored_makespan_us, rel=0.05
        )
        ios = [e for e in res.events if e.primitive is Primitive.IO_WAIT]
        assert all(e.duration_us >= 5_000 for e in ios)

    def test_io_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            op.IoWait(-1)

    def test_io_wait_roundtrips_through_logfile(self):
        run = record(self._io_program())
        back = logfile.loads(logfile.dumps(run.trace))
        assert any(r.primitive is Primitive.IO_WAIT for r in back)


class TestExcludedWorkloads:
    def test_spinner_unmonitorable(self):
        # §4: Barnes et al. "could not run in one single LWP"
        with pytest.raises(MonitorabilityError):
            record(make_spinner(), max_events=100_000)

    def test_spinner_fine_on_a_real_multiprocessor(self):
        # the *program* is fine — only the monitoring regime fails
        res = run_multiprocessor(make_spinner(), SimConfig(cpus=2))
        assert res.makespan_us > 0

    def test_task_stealer_degenerates_on_one_lwp(self):
        # §4: "only one thread steals all tasks"
        run = record(make_task_stealer(nthreads=4, scale=0.5))
        degeneracy = stealing_degeneracy(run.trace)
        assert degeneracy > 0.9, f"only {degeneracy:.0%} taken by one thread"

    def test_task_stealer_balanced_on_a_real_machine(self):
        res = run_multiprocessor(
            make_task_stealer(nthreads=4, scale=0.5), SimConfig(cpus=4)
        )
        # on 4 CPUs the pool is shared: every worker gets a decent cut
        # (counted in the program's own shared state)
        assert res.makespan_us > 0

    def test_work_distribution_counts_pool_accesses(self):
        run = record(make_task_stealer(nthreads=2, scale=0.3))
        counts = work_distribution(run.trace)
        # every task take and every final failed take goes via the pool
        assert sum(counts.values()) >= 2

    def test_prediction_misleads_for_stealing_programs(self):
        """The reason the paper excludes them: the degenerate log makes
        the prediction useless (it predicts ~no speed-up)."""
        from repro import predict_speedup
        from repro.program.mpexec import measure_speedup

        program = make_task_stealer(nthreads=4, scale=0.5)
        run = record(program)
        pred = predict_speedup(run.trace, 4)
        real = measure_speedup(program, 4, runs=3)
        # the real program scales fine; the prediction can't see it
        assert real.speedup > 2.0
        assert pred.speedup < real.speedup * 0.6


class TestWhatIf:
    @pytest.fixture(scope="class")
    def trace(self):
        return record(make_barrier_program(nthreads=4, iters=2)).trace

    def test_speedup_curve_monotone(self, trace):
        curve = speedup_curve(trace, 6)
        assert len(curve) == 6
        speeds = [p.speedup for p in curve]
        assert all(b >= a - 0.05 for a, b in zip(speeds, speeds[1:]))

    def test_find_knee_reasonable(self, trace):
        knee = find_knee(trace, target_fraction=0.8)
        assert 2 <= knee.cpus <= 8
        assert knee.fraction_of_bound >= 0.8

    def test_find_knee_validates_inputs(self, trace):
        with pytest.raises(ValueError):
            find_knee(trace, target_fraction=0.0)

    def test_find_knee_respects_max(self, trace):
        knee = find_knee(trace, target_fraction=1.0, max_cpus=2)
        assert knee.cpus <= 2

    def test_lwp_sensitivity(self, trace):
        makespans = lwp_sensitivity(trace, cpus=4, lwp_counts=(1, 4, None))
        assert makespans[1] >= makespans[4] * 0.99
        assert set(makespans) == {1, 4, None}

    def test_speedup_curve_rejects_bad_range(self, trace):
        with pytest.raises(ValueError):
            speedup_curve(trace, 0)


class TestStatsView:
    @pytest.fixture(scope="class")
    def result(self):
        run = record(make_barrier_program(nthreads=3, iters=2))
        return predict(run.trace, SimConfig(cpus=2))

    def test_decomposition_sums_to_lifetime(self, result):
        for s in thread_stats(result):
            assert s.lifetime_us == (
                s.running_us + s.runnable_us + s.blocked_us + s.sleeping_us
            )
            assert 0.0 <= s.utilisation <= 1.0

    def test_workers_present(self, result):
        stats = {s.tid: s for s in thread_stats(result)}
        assert set(stats) == {1, 4, 5, 6}
        assert stats[4].running_us > 0

    def test_format_table(self, result):
        text = format_thread_stats(result)
        assert "T1 main" in text and "util" in text

    def test_format_top_ranks_by_utilisation(self, result):
        text = format_thread_stats(result, top=1)
        # main mostly blocks on joins: worst utilisation
        assert "T1 main" in text
        assert "T4" not in text
