"""Unit and property tests for the log-file format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import LogFormatError
from repro.core.events import EventRecord, Phase, Primitive, SourceLocation, Status
from repro.core.ids import SyncObjectId, ThreadId
from repro.core.trace import Trace, TraceMeta
from repro.recorder import logfile


def simple_trace():
    m = SyncObjectId("mutex", "m")
    src = SourceLocation("dir with space/ex.c", 42, "main")
    records = [
        EventRecord(0, ThreadId(1), Phase.CALL, Primitive.START_COLLECT),
        EventRecord(10, ThreadId(1), Phase.CALL, Primitive.MUTEX_LOCK, obj=m, source=src),
        EventRecord(12, ThreadId(1), Phase.RET, Primitive.MUTEX_LOCK, obj=m, status=Status.OK),
        EventRecord(20, ThreadId(1), Phase.CALL, Primitive.THR_EXIT),
    ]
    meta = TraceMeta(program="demo", thread_functions={4: "my worker"}, probe_overhead_us=15)
    return Trace(records, meta)


class TestRoundTrip:
    def test_dumps_loads_records(self):
        trace = simple_trace()
        back = logfile.loads(logfile.dumps(trace))
        assert len(back) == len(trace)
        for a, b in zip(trace, back):
            assert a == b

    def test_meta_roundtrip(self):
        trace = simple_trace()
        back = logfile.loads(logfile.dumps(trace))
        assert back.meta.program == "demo"
        assert back.meta.probe_overhead_us == 15
        assert back.meta.thread_functions == {4: "my worker"}

    def test_source_with_spaces_roundtrips(self):
        trace = simple_trace()
        back = logfile.loads(logfile.dumps(trace))
        src = back[1].source
        assert src is not None
        assert src.file == "dir with space/ex.c"
        assert src.line == 42

    def test_dump_load_file(self, tmp_path):
        trace = simple_trace()
        path = tmp_path / "demo.log"
        size = logfile.dump(trace, path)
        assert path.stat().st_size == size
        back = logfile.load(path)
        assert len(back) == len(trace)

    def test_header_present(self):
        text = logfile.dumps(simple_trace())
        assert text.startswith("# vppb-log 1\n")
        assert "# program: demo" in text

    def test_timestamps_are_seconds_with_us_resolution(self):
        # the format of the paper's fig. 2 listing
        text = logfile.dumps(simple_trace())
        assert "0.000010 T1 call mutex_lock" in text


class TestParseErrors:
    def test_missing_version(self):
        with pytest.raises(LogFormatError):
            logfile.loads("0.0 T1 call thr_exit\n")

    def test_unsupported_version(self):
        with pytest.raises(LogFormatError):
            logfile.loads("# vppb-log 99\n")

    def test_bad_timestamp(self):
        with pytest.raises(LogFormatError) as ei:
            logfile.loads("# vppb-log 1\nxx T1 call thr_exit\n")
        assert ei.value.lineno == 2

    def test_bad_thread_id(self):
        with pytest.raises(LogFormatError):
            logfile.loads("# vppb-log 1\n0.0 X1 call thr_exit\n")

    def test_unknown_phase(self):
        with pytest.raises(LogFormatError):
            logfile.loads("# vppb-log 1\n0.0 T1 maybe thr_exit\n")

    def test_unknown_primitive(self):
        with pytest.raises(LogFormatError):
            logfile.loads("# vppb-log 1\n0.0 T1 call warp_drive\n")

    def test_unknown_attribute(self):
        with pytest.raises(LogFormatError):
            logfile.loads("# vppb-log 1\n0.0 T1 call thr_exit colour=red\n")

    def test_bad_object(self):
        with pytest.raises(LogFormatError):
            logfile.loads("# vppb-log 1\n0.0 T1 call mutex_lock obj=nokind\n")

    def test_bad_status(self):
        with pytest.raises(LogFormatError):
            logfile.loads(
                "# vppb-log 1\n0.0 T1 call mutex_lock obj=mutex:m status=meh\n"
            )

    def test_too_few_fields(self):
        with pytest.raises(LogFormatError):
            logfile.loads("# vppb-log 1\n0.0 T1 call\n")

    def test_unknown_comment_tolerated(self):
        trace = logfile.loads("# vppb-log 1\n# future-field: zap\n")
        assert len(trace) == 0

    def test_blank_lines_tolerated(self):
        trace = logfile.loads("# vppb-log 1\n\n\n")
        assert len(trace) == 0


# ---------------------------------------------------------------------------
# property-based round-trip over arbitrary records
# ---------------------------------------------------------------------------

_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_-."),
    min_size=1,
    max_size=8,
)

_objects = st.one_of(
    st.none(),
    st.builds(SyncObjectId, st.sampled_from(["mutex", "sema", "cond", "rwlock"]), _names),
)

_sources = st.one_of(
    st.none(),
    st.builds(
        SourceLocation,
        file=st.text(min_size=1, max_size=20).filter(lambda s: not s.isspace()),
        line=st.integers(min_value=1, max_value=10**6),
        function=st.text(max_size=10),
    ),
)

_records = st.builds(
    EventRecord,
    time_us=st.integers(min_value=0, max_value=10**10),
    tid=st.integers(min_value=1, max_value=500).map(ThreadId),
    phase=st.sampled_from(list(Phase)),
    primitive=st.sampled_from(list(Primitive)),
    obj=_objects,
    obj2=_objects,
    target=st.one_of(st.none(), st.integers(min_value=1, max_value=500).map(ThreadId)),
    arg=st.one_of(st.none(), st.integers(min_value=-(10**6), max_value=10**9)),
    status=st.one_of(st.none(), st.sampled_from(list(Status))),
    source=_sources,
)


class TestPropertyRoundTrip:
    @settings(max_examples=200)
    @given(st.lists(_records, max_size=20))
    def test_any_records_roundtrip(self, records):
        trace = Trace(records, validate=False)
        back = logfile.loads(logfile.dumps(trace), validate=False)
        assert list(back) == list(trace)
