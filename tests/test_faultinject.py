"""Fault-injection harness tests: corruptors, perturbations, chaos suite.

The standing contract: every damaged variant of a real log must either
still load strictly or salvage with a non-empty report — never an
unhandled exception.  Perturbations must be deterministic under a seed
and must never mutate their input.
"""

import random

import pytest

from repro import SimConfig, record_program
from repro.core.events import Phase, Primitive
from repro.core.predictor import compile_trace, predict
from repro.core.result import RunStatus
from repro.faultinject import (
    CORRUPTORS,
    chaos_summary,
    corrupt,
    corruption_corpus,
    drop_wakeups,
    run_chaos,
    skew_clock,
    stall_threads,
    truncate_at,
)
from repro.faultinject.corrupt import corruptor
from repro.recorder import logfile

from tests.conftest import make_prodcons_program


@pytest.fixture(scope="module")
def recorded():
    return record_program(make_prodcons_program())


@pytest.fixture(scope="module")
def log_text(recorded):
    return logfile.dumps(recorded.trace)


class TestCorruptors:
    def test_registry_is_populated(self):
        # the chaos suite is only as good as its damage models
        assert len(CORRUPTORS) >= 10
        assert "truncate" in CORRUPTORS
        assert "garbage-bytes" in CORRUPTORS

    @pytest.mark.parametrize("kind", sorted(CORRUPTORS))
    def test_same_seed_same_damage(self, kind, log_text):
        assert corrupt(log_text, kind, seed=7) == corrupt(log_text, kind, seed=7)

    @pytest.mark.parametrize("kind", sorted(CORRUPTORS))
    def test_damage_actually_changes_the_text(self, kind, log_text):
        assert corrupt(log_text, kind, seed=0) != log_text

    def test_unknown_corruptor_rejected(self, log_text):
        with pytest.raises(KeyError):
            corrupt(log_text, "cosmic-rays")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            corruptor("truncate")(lambda text, rng: text)

    def test_truncate_at(self, log_text):
        assert truncate_at(log_text, 10) == log_text[:10]
        assert truncate_at(log_text, -5) == ""

    def test_corpus_covers_the_grid(self, log_text):
        corpus = list(corruption_corpus(log_text, seeds=(0, 1)))
        assert len(corpus) == 2 * len(CORRUPTORS)
        assert {c.kind for c in corpus} == set(CORRUPTORS)


class TestChaosSuite:
    def test_every_variant_loads_or_salvages(self, log_text):
        outcomes = run_chaos(log_text, seeds=(0, 1, 2))
        failed = [o for o in outcomes if not o.ok]
        assert not failed, chaos_summary(outcomes)

    def test_salvaged_outcomes_carry_reports(self, log_text):
        for outcome in run_chaos(log_text, seeds=(0,)):
            if outcome.status == "salvaged":
                assert outcome.report is not None
                assert not outcome.report.clean

    def test_summary_tallies(self, log_text):
        outcomes = run_chaos(log_text, seeds=(0,))
        summary = chaos_summary(outcomes)
        assert f"{len(outcomes)} variant(s)" in summary
        assert "failed" in summary


class TestDropWakeups:
    def test_result_is_a_valid_trace(self, recorded):
        out = drop_wakeups(recorded.trace, seed=0)
        assert len(out.dropped) >= 1
        # call+ret pairs removed: two records gone per dropped wake-up
        assert len(out.trace) <= len(recorded.trace) - 2 * len(out.dropped) + 1
        for rec in out.dropped:
            assert rec.phase is Phase.CALL
            assert rec.primitive in (
                Primitive.SEMA_POST,
                Primitive.COND_SIGNAL,
                Primitive.COND_BROADCAST,
            )

    def test_deterministic(self, recorded):
        a = drop_wakeups(recorded.trace, seed=3)
        b = drop_wakeups(recorded.trace, seed=3)
        assert [r.time_us for r in a.dropped] == [r.time_us for r in b.dropped]

    def test_input_not_mutated(self, recorded):
        before = len(recorded.trace)
        drop_wakeups(recorded.trace, seed=0)
        assert len(recorded.trace) == before

    def test_replay_degrades_gracefully(self, recorded):
        """Dropping wake-ups strands waiters; the non-strict replay must
        come back as a partial result, never hang or crash."""
        out = drop_wakeups(recorded.trace, seed=1, fraction=1.0)
        result = predict(out.trace, SimConfig(cpus=2), strict=False)
        assert result.incomplete
        assert result.incompleteness.status in (
            RunStatus.DEADLOCK, RunStatus.LIVELOCK,
        )

    def test_fraction_validated(self, recorded):
        with pytest.raises(ValueError):
            drop_wakeups(recorded.trace, fraction=1.5)


class TestSkewClock:
    def test_same_shape_different_work(self, recorded):
        plan = compile_trace(recorded.trace)
        skewed = skew_clock(plan, seed=0, max_skew=0.2)
        assert skewed.total_steps() == plan.total_steps()
        assert set(skewed.steps) == set(plan.steps)
        for tid in plan.steps:
            for old, new in zip(plan.steps[tid], skewed.steps[tid]):
                assert new.op is old.op  # ops untouched, only timing skewed
                low = int(old.work_us * 0.8) - 1
                high = int(old.work_us * 1.2) + 1
                assert low <= new.work_us <= high

    def test_deterministic(self, recorded):
        plan = compile_trace(recorded.trace)
        a = skew_clock(plan, seed=9)
        b = skew_clock(plan, seed=9)
        for tid in a.steps:
            assert [s.work_us for s in a.steps[tid]] == [
                s.work_us for s in b.steps[tid]
            ]

    def test_input_not_mutated(self, recorded):
        plan = compile_trace(recorded.trace)
        before = {tid: [s.work_us for s in steps] for tid, steps in plan.steps.items()}
        skew_clock(plan, seed=0, max_skew=0.3)
        after = {tid: [s.work_us for s in steps] for tid, steps in plan.steps.items()}
        assert before == after

    def test_skewed_plan_still_replays(self, recorded):
        plan = compile_trace(recorded.trace)
        skewed = skew_clock(plan, seed=4, max_skew=0.1)
        result = predict(recorded.trace, SimConfig(cpus=2), plan=skewed)
        assert result.makespan_us > 0

    def test_max_skew_validated(self, recorded):
        plan = compile_trace(recorded.trace)
        with pytest.raises(ValueError):
            skew_clock(plan, max_skew=1.0)


class TestStallThreads:
    def test_inserts_delay_steps(self, recorded):
        plan = compile_trace(recorded.trace)
        stalled = stall_threads(plan, seed=0, stall_us=10_000)
        extra = stalled.total_steps() - plan.total_steps()
        assert extra >= 1  # one stall step per chosen thread

    def test_explicit_thread_selection(self, recorded):
        plan = compile_trace(recorded.trace)
        victim = sorted(tid for tid, s in plan.steps.items() if s)[0]
        stalled = stall_threads(plan, seed=0, threads=[victim])
        assert len(stalled.steps[victim]) == len(plan.steps[victim]) + 1
        for tid in plan.steps:
            if tid != victim:
                assert len(stalled.steps[tid]) == len(plan.steps[tid])

    def test_stall_slows_the_replay_down(self, recorded):
        plan = compile_trace(recorded.trace)
        stalled = stall_threads(plan, seed=0, stall_us=100_000, fraction=1.0)
        base = predict(recorded.trace, SimConfig(cpus=2), plan=plan)
        slow = predict(recorded.trace, SimConfig(cpus=2), plan=stalled)
        assert slow.makespan_us > base.makespan_us

    def test_input_not_mutated(self, recorded):
        plan = compile_trace(recorded.trace)
        before = {tid: len(steps) for tid, steps in plan.steps.items()}
        stall_threads(plan, seed=0, fraction=1.0)
        after = {tid: len(steps) for tid, steps in plan.steps.items()}
        assert before == after

    def test_negative_stall_rejected(self, recorded):
        plan = compile_trace(recorded.trace)
        with pytest.raises(ValueError):
            stall_threads(plan, stall_us=-1)


class TestTruncationThroughSalvage:
    def test_sampled_offsets_never_raise(self, log_text):
        """The headline robustness claim, exercised from the harness
        side: a log cut at any byte offset loads strictly or salvages."""
        from repro.core.errors import TraceError
        from repro.recorder.salvage import salvage_loads

        rng = random.Random(0)
        offsets = sorted(rng.sample(range(len(log_text) + 1), 60))
        for offset in offsets:
            text = truncate_at(log_text, offset)
            try:
                logfile.loads(text, mode="strict")
            except TraceError:
                result = salvage_loads(text)
                assert not result.report.clean
