"""Tests for the exception hierarchy and error reporting quality."""

import pytest

from repro.core import errors


class TestHierarchy:
    def test_everything_is_a_vppb_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            if isinstance(exc, type) and issubclass(exc, Exception):
                assert issubclass(exc, errors.VppbError), name

    def test_log_format_is_a_trace_error(self):
        assert issubclass(errors.LogFormatError, errors.TraceError)

    def test_monitorability_is_a_recorder_error(self):
        assert issubclass(errors.MonitorabilityError, errors.RecorderError)

    def test_deadlock_and_livelock_are_simulation_errors(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.LivelockError, errors.SimulationError)

    def test_replay_divergence_is_a_simulation_error(self):
        assert issubclass(errors.ReplayDivergenceError, errors.SimulationError)


class TestErrorPayloads:
    def test_log_format_error_carries_lineno(self):
        err = errors.LogFormatError("boom", lineno=42, line="bad text")
        assert err.lineno == 42
        assert err.line == "bad text"
        assert "line 42" in str(err)

    def test_log_format_error_without_lineno(self):
        err = errors.LogFormatError("boom")
        assert err.lineno is None
        assert str(err) == "boom"

    def test_deadlock_error_lists_blocked_threads(self):
        err = errors.DeadlockError("stuck", blocked=(4, 5))
        assert err.blocked == (4, 5)

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.VppbError):
            raise errors.ConfigError("bad config")
        with pytest.raises(errors.VppbError):
            raise errors.VisualizationError("bad window")


class TestErrorsInContext:
    def test_simulation_errors_carry_thread_identities(self):
        """Error messages must name threads the T<n> way so users can find
        them in the flow graph."""
        from repro import Program, SimConfig, simulate_program
        from repro.program import ops as op

        def main(ctx):
            yield op.MutexUnlock("m")  # not held

        with pytest.raises(errors.SimulationError) as ei:
            simulate_program(Program("bad", main), SimConfig())
        assert "T1" in str(ei.value)

    def test_deadlock_message_names_the_object(self):
        from repro import Program, SimConfig, simulate_program
        from repro.program import ops as op

        def main(ctx):
            yield op.SemaWait("nothing")

        with pytest.raises(errors.DeadlockError) as ei:
            simulate_program(Program("d", main), SimConfig())
        assert "nothing" in str(ei.value)
