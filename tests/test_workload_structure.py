"""Structural tests of the SPLASH-2 models: the synchronisation skeletons
and closed-form calibrations each module documents."""

import math

import pytest

from repro import record_program
from repro.core.events import Phase, Primitive, Status
from repro.program.uniexec import unmonitored_run
from repro.workloads import fft, lu, ocean, radix, water
from repro.workloads.lu import _grid, _owner


class TestLuStructure:
    def test_grid_factorisations(self):
        assert _grid(1) == (1, 1)
        assert _grid(2) == (1, 2)
        assert _grid(4) == (2, 2)
        assert _grid(8) == (2, 4)
        assert _grid(6) == (2, 3)

    def test_ownership_covers_all_threads(self):
        for nthreads in (2, 4, 8):
            owners = {
                _owner(i, j, nthreads)
                for i in range(lu.K_BLOCKS)
                for j in range(lu.K_BLOCKS)
            }
            assert owners == set(range(nthreads))

    def test_ownership_balanced(self):
        # 2-D scatter: every thread owns within one row/column strip of
        # the mean
        nthreads = 8
        counts = [0] * nthreads
        for i in range(lu.K_BLOCKS):
            for j in range(lu.K_BLOCKS):
                counts[_owner(i, j, nthreads)] += 1
        mean = lu.K_BLOCKS**2 / nthreads
        assert max(counts) - min(counts) <= mean * 0.1

    def test_barrier_count_is_three_per_step(self):
        run = record_program(lu.make_program(2, scale=0.05))
        broadcasts = [
            r
            for r in run.trace
            if r.primitive is Primitive.COND_BROADCAST and r.is_call
        ]
        # one broadcast per barrier, three barriers per elimination step
        assert len(broadcasts) == 3 * lu.K_BLOCKS

    def test_work_shrinks_across_steps(self):
        # the interior work must shrink as the factorisation proceeds:
        # total cpu time is dominated by early steps
        res = unmonitored_run(lu.make_program(4, scale=0.05))
        assert res.makespan_us > 0


class TestFftStructure:
    def test_five_phases_per_thread(self):
        run = record_program(fft.make_program(2, scale=0.02))
        broadcasts = [
            r
            for r in run.trace
            if r.primitive is Primitive.COND_BROADCAST and r.is_call
        ]
        assert len(broadcasts) == 5  # t1, fft1, t2, fft2, t3

    def test_closed_form_speedup(self):
        # the module docstring's formula: S(P) lands on the paper curve
        f = 3 * fft.TRANSPOSE_US / (3 * fft.TRANSPOSE_US + 2 * fft.FFT_PHASE_US)
        for cpus, expected in ((2, 1.55), (4, 2.14), (8, 2.64)):
            s = 1.0 / (
                (1 - f) / cpus + (f / cpus) * (1 + fft.BETA * (cpus - 1))
            )
            assert s == pytest.approx(expected, abs=0.03)

    def test_transpose_grows_with_threads(self):
        # per-thread transpose time grows with P (memory contention)
        run2 = record_program(fft.make_program(2, scale=0.02), overhead_us=0)
        run8 = record_program(fft.make_program(8, scale=0.02), overhead_us=0)
        # the 8-thread program does more *total* work than the 2-thread one
        assert run8.monitored_makespan_us > run2.monitored_makespan_us


class TestOceanStructure:
    def test_trylock_present_and_always_succeeds_on_one_lwp(self):
        # the replay-hostile knob: on the monitored run there is no
        # contention, so every trylock is recorded as acquired — which is
        # exactly what misleads the §3.2 replay rule
        run = record_program(ocean.make_program(4, scale=0.05))
        trys = [
            r
            for r in run.trace
            if r.primitive is Primitive.MUTEX_TRYLOCK and r.phase is Phase.RET
        ]
        assert trys
        assert all(r.status is Status.OK for r in trys)

    def test_multigrid_barriers_per_iteration(self):
        run = record_program(ocean.make_program(2, scale=0.05))
        broadcasts = [
            r
            for r in run.trace
            if r.primitive is Primitive.COND_BROADCAST and r.is_call
        ]
        iters = max(2, round(ocean.ITERATIONS * 0.05))
        assert len(broadcasts) == 5 * iters  # 3 relax + resid + bound

    def test_ocean_is_event_densest(self):
        # §4's shape at equal scale
        def rate(module):
            run = record_program(module.make_program(4, scale=0.05))
            return run.n_events / run.monitored_makespan_us

        assert rate(ocean) > rate(water)
        assert rate(ocean) > rate(radix)


class TestRadixStructure:
    def test_tree_depth_is_log2_threads(self):
        for nthreads in (2, 4, 8):
            run = record_program(radix.make_program(nthreads, scale=0.02))
            broadcasts = [
                r
                for r in run.trace
                if r.primitive is Primitive.COND_BROADCAST and r.is_call
            ]
            tree = max(1, math.ceil(math.log2(nthreads)))
            # per pass: hist + tree steps + permute barriers
            assert len(broadcasts) == radix.PASSES * (2 + tree)


class TestWaterStructure:
    def test_cell_locks_from_the_pool(self):
        run = record_program(water.make_program(4, scale=0.05))
        cells = {
            r.obj.name
            for r in run.trace
            if r.primitive is Primitive.MUTEX_LOCK
            and r.obj is not None
            and r.obj.name.startswith("cell_")
        }
        assert cells  # boundary fold-ins hit the pool
        assert all(
            0 <= int(name.split("_")[1]) < water.N_CELL_LOCKS for name in cells
        )

    def test_kinetic_reduction_once_per_step_per_thread(self):
        nthreads = 3
        run = record_program(water.make_program(nthreads, scale=0.05))
        steps = max(1, round(water.TIMESTEPS * 0.05))
        kin = [
            r
            for r in run.trace
            if r.primitive is Primitive.MUTEX_LOCK
            and r.is_call
            and r.obj is not None
            and r.obj.name == "kinetic"
        ]
        assert len(kin) == nthreads * steps
