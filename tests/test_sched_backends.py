"""Backend-conformance suite: every pluggable kernel, same contract.

The policies differ — Solaris dispatch tables, Clutch EDF buckets, CFS
vruntime — but the scheduling *contract* does not.  Each test here runs
under every registered backend: runnable work gets dispatched, RT
outranks timeshare, quanta are accounted, user-level priority hand-off
works, and deadlock detection still fires.
"""

import pytest

from repro import Program, SimConfig, ThreadPolicy, simulate_program
from repro.core.errors import ConfigError, DeadlockError
from repro.core.result import SegmentKind
from repro.program import ops as op
from repro.sched import (
    SchedulerBackend,
    available_backends,
    backend_version,
    create_backend,
    register_backend,
)
from repro.solaris import costs as costs_mod

FREE = costs_mod.free()
BACKENDS = available_backends()


def spawn_n_workers(n, body, join=True, **create_kw):
    def main(ctx):
        tids = []
        for i in range(n):
            tids.append((yield op.ThrCreate(body, **create_kw)))
        if join:
            for t in tids:
                yield op.ThrJoin(t)

    return main


def running_time(result, tid):
    return sum(
        s.duration_us
        for s in result.segments.get(tid, [])
        if s.kind is SegmentKind.RUNNING
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_three_backends_registered(self):
        assert {"solaris", "clutch", "cfs"} <= set(BACKENDS)

    def test_listing_is_sorted(self):
        assert BACKENDS == sorted(BACKENDS)

    def test_create_unknown_name(self):
        with pytest.raises(ValueError, match="solaris"):
            create_backend("vms")

    def test_versions_are_positive_ints(self):
        for name in BACKENDS:
            assert isinstance(backend_version(name), int)
            assert backend_version(name) >= 1

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_backend
            class Impostor(SchedulerBackend):  # pragma: no cover
                name = "solaris"
                version = 99


class TestConfig:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigError, match="unknown scheduler"):
            SimConfig(scheduler="vms")

    def test_with_scheduler_copy(self):
        base = SimConfig(cpus=4)
        other = base.with_scheduler("cfs")
        assert other.scheduler == "cfs" and other.cpus == 4
        assert base.scheduler == "solaris"

    def test_describe_mentions_non_default_backend(self):
        assert "sched=cfs" in SimConfig(scheduler="cfs").describe()
        assert "sched" not in SimConfig().describe()


# ---------------------------------------------------------------------------
# conformance: the contract every backend must honour
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheduler", BACKENDS)
class TestConformance:
    def test_parallel_work_scales(self, scheduler):
        """Runnable work reaches idle processors under any policy."""

        def w(ctx):
            yield op.Compute(1000)

        res = simulate_program(
            Program("p", spawn_n_workers(4, w)),
            SimConfig(cpus=4, costs=FREE, scheduler=scheduler),
        )
        assert res.makespan_us == 1000

    def test_single_lwp_serialises(self, scheduler):
        """User-level multiplexing is mechanism, not policy: one LWP
        still runs threads one at a time under every backend."""

        def w(ctx):
            yield op.Compute(1000)

        res = simulate_program(
            Program("p", spawn_n_workers(4, w)),
            SimConfig(cpus=4, lwps=1, costs=FREE, scheduler=scheduler),
        )
        assert res.makespan_us == 4000

    def test_quantum_accounting(self, scheduler):
        """Two CPU hogs on one processor: quanta expire and are counted,
        and both hogs still run to completion."""
        from repro.core.simulator import Simulator

        def hog(ctx):
            yield op.Compute(400_000)

        prog = Program("hogs", spawn_n_workers(2, hog, bound=True))
        sim = Simulator(SimConfig(cpus=1, costs=FREE, scheduler=scheduler))
        res = sim.run_program(prog)
        assert res.makespan_us >= 800_000
        all_lwps = list(sim.scheduler.lwps) + list(sim.scheduler.retired_lwps)
        assert sum(l.quantum_expiries for l in all_lwps) > 0
        # both hogs ran to completion on the single CPU
        for tid in (4, 5):
            assert running_time(res, tid) >= 400_000

    def test_no_time_slicing_disables_quanta(self, scheduler):
        """time_slicing=False is a mechanism switch: no backend may arm
        quantum timers when it is off."""
        from repro.core.simulator import Simulator

        def hog(ctx):
            yield op.Compute(200_000)

        prog = Program("hogs", spawn_n_workers(2, hog, bound=True))
        sim = Simulator(
            SimConfig(
                cpus=1, costs=FREE, time_slicing=False, scheduler=scheduler
            )
        )
        res = sim.run_program(prog)
        assert res.makespan_us >= 400_000
        all_lwps = list(sim.scheduler.lwps) + list(sim.scheduler.retired_lwps)
        assert sum(l.quantum_expiries for l in all_lwps) == 0

    def test_priority_handoff(self, scheduler):
        """One LWP, a high- and a low-priority thread runnable: the
        user-level scheduler hands the LWP to the higher priority first,
        whatever kernel backend runs below it."""

        def w(ctx):
            yield op.Compute(1000)

        def main(ctx):
            lo = yield op.ThrCreate(w, priority=1)
            hi = yield op.ThrCreate(w, priority=10)
            yield op.ThrJoin(lo)
            yield op.ThrJoin(hi)

        res = simulate_program(
            Program("p", main),
            SimConfig(cpus=1, lwps=1, costs=FREE, scheduler=scheduler),
        )
        lo_first = next(
            s for s in res.segments[4] if s.kind is SegmentKind.RUNNING
        )
        hi_first = next(
            s for s in res.segments[5] if s.kind is SegmentKind.RUNNING
        )
        assert hi_first.start_us < lo_first.start_us

    def test_rt_thread_runs_before_ts(self, scheduler):
        """The RT class outranks timeshare under every backend (Clutch
        FIXPRI, the CFS RT class, the Solaris RT class)."""

        def w(ctx):
            yield op.SemaWait("start")
            yield op.Compute(50_000)

        def main(ctx):
            a = yield op.ThrCreate(w)
            b = yield op.ThrCreate(w)
            yield op.SemaPost("start")
            yield op.SemaPost("start")
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)

        config = SimConfig(
            cpus=1,
            costs=FREE,
            scheduler=scheduler,
            thread_policies={5: ThreadPolicy(rt_priority=30)},
        )
        res = simulate_program(Program("p", main), config)
        ts_run = next(
            s for s in res.segments[4] if s.kind is SegmentKind.RUNNING
        )
        rt_run = next(
            s for s in res.segments[5] if s.kind is SegmentKind.RUNNING
        )
        assert rt_run.start_us <= ts_run.start_us

    def test_deadlock_detection_fires(self, scheduler):
        """The watchdog's deadlock diagnosis is backend-independent."""

        def t1(ctx):
            yield op.MutexLock("a")
            yield op.Compute(100)
            yield op.MutexLock("b")

        def t2(ctx):
            yield op.MutexLock("b")
            yield op.Compute(100)
            yield op.MutexLock("a")

        def main(ctx):
            x = yield op.ThrCreate(t1)
            y = yield op.ThrCreate(t2)
            yield op.ThrJoin(x)
            yield op.ThrJoin(y)

        with pytest.raises(DeadlockError):
            simulate_program(
                Program("dl", main),
                SimConfig(cpus=2, costs=FREE, scheduler=scheduler),
            )

    def test_deterministic(self, scheduler):
        def w(ctx):
            for _ in range(5):
                yield op.MutexLock("m")
                yield op.Compute(500)
                yield op.MutexUnlock("m")

        prog = Program("p", spawn_n_workers(4, w))
        config = SimConfig(cpus=2, scheduler=scheduler)
        first = simulate_program(prog, config)
        second = simulate_program(prog, config)
        assert first.makespan_us == second.makespan_us
        assert first.events == second.events


# ---------------------------------------------------------------------------
# fingerprints (cache keys must not collide across backends)
# ---------------------------------------------------------------------------


class TestFingerprints:
    def test_canonical_config_carries_backend_and_version(self):
        from repro.jobs.fingerprint import canonical_config

        canon = canonical_config(SimConfig(scheduler="clutch"))
        assert canon["scheduler"] == {
            "name": "clutch",
            "version": backend_version("clutch"),
        }

    def test_job_fingerprints_distinct_per_backend(self):
        from repro.jobs.fingerprint import job_fingerprint, lint_job_fingerprint

        trace_fp = "f" * 64
        sim_fps = {
            job_fingerprint(trace_fp, SimConfig(cpus=4, scheduler=s))
            for s in BACKENDS
        }
        lint_fps = {
            lint_job_fingerprint(trace_fp, SimConfig(cpus=4, scheduler=s))
            for s in BACKENDS
        }
        assert len(sim_fps) == len(BACKENDS)
        assert len(lint_fps) == len(BACKENDS)
