"""Tests for trace-transformation what-ifs (analysis.transform)."""

import pytest

from repro import Program, SimConfig, compile_trace, record_program
from repro.analysis import (
    scale_compute,
    scale_critical_sections,
    scale_io,
    split_lock,
)
from repro.core.simulator import Simulator
from repro.program import ops as op
from repro.workloads.prodcons import make_naive
from tests.conftest import make_mutex_program


def replay(plan, cpus=4):
    return Simulator(SimConfig(cpus=cpus)).run_replay(plan)


@pytest.fixture(scope="module")
def mutex_plan():
    run = record_program(make_mutex_program(nthreads=3, iters=4))
    return compile_trace(run.trace)


class TestScaleCompute:
    def test_half_work_roughly_halves_makespan(self, mutex_plan):
        base = replay(mutex_plan).makespan_us
        faster = replay(scale_compute(mutex_plan, 0.5)).makespan_us
        assert 0.4 * base < faster < 0.7 * base

    def test_identity(self, mutex_plan):
        assert (
            replay(scale_compute(mutex_plan, 1.0)).makespan_us
            == replay(mutex_plan).makespan_us
        )

    def test_per_thread_restriction(self, mutex_plan):
        only_t4 = scale_compute(mutex_plan, 0.1, threads=[4])
        t4_work = sum(s.work_us for s in only_t4.steps[4])
        t5_work = sum(s.work_us for s in only_t4.steps[5])
        orig_t5 = sum(s.work_us for s in mutex_plan.steps[5])
        assert t5_work == orig_t5
        assert t4_work < orig_t5 / 2

    def test_input_not_mutated(self, mutex_plan):
        before = [s.work_us for s in mutex_plan.steps[4]]
        scale_compute(mutex_plan, 0.5)
        assert [s.work_us for s in mutex_plan.steps[4]] == before

    def test_negative_factor_rejected(self, mutex_plan):
        with pytest.raises(ValueError):
            scale_compute(mutex_plan, -1)


class TestScaleCriticalSections:
    def test_shrinking_the_bottleneck_helps_the_naive_prodcons(self):
        run = record_program(make_naive(scale=0.05))
        plan = compile_trace(run.trace)
        base = replay(plan, cpus=8).makespan_us
        tuned = replay(
            scale_critical_sections(plan, "buffer", 0.25), cpus=8
        ).makespan_us
        # the program is ~fully serialised on that mutex: shrinking the
        # held work shrinks the whole run nearly proportionally
        assert tuned < base * 0.5

    def test_work_outside_sections_untouched(self, mutex_plan):
        scaled = scale_critical_sections(mutex_plan, "m", 0.0)
        for tid in mutex_plan.steps:
            for a, b in zip(mutex_plan.steps[tid], scaled.steps[tid]):
                if isinstance(a.op, op.MutexUnlock):
                    assert b.work_us == 0  # held work removed
                elif isinstance(a.op, op.MutexLock):
                    assert b.work_us == a.work_us  # approach work kept


class TestScaleIo:
    def test_faster_disk_shortens_io_bound_run(self):
        def worker(ctx):
            for _ in range(2):
                yield op.IoWait(10_000)
                yield op.Compute(1_000)

        def main(ctx):
            t = yield op.ThrCreate(worker)
            yield op.ThrJoin(t)

        run = record_program(Program("io", main))
        plan = compile_trace(run.trace)
        base = replay(plan, cpus=1).makespan_us
        fast = replay(scale_io(plan, 0.1), cpus=1).makespan_us
        assert fast < base * 0.4


class TestSplitLock:
    def test_sharding_the_naive_buffer_mutex(self):
        """Preview the §5 fix on the trace: splitting the buffer mutex
        into shards recovers most of the parallelism."""
        run = record_program(make_naive(scale=0.05))
        plan = compile_trace(run.trace)
        base = replay(plan, cpus=8).makespan_us
        sharded = replay(split_lock(plan, "buffer", 16), cpus=8).makespan_us
        assert sharded < base * 0.45

    def test_one_way_split_is_identity(self, mutex_plan):
        assert (
            replay(split_lock(mutex_plan, "m", 1)).makespan_us
            == replay(mutex_plan).makespan_us
        )

    def test_lock_unlock_pairing_preserved(self, mutex_plan):
        # every shard's lock/unlock counts balance (else replay deadlocks,
        # which the simulation itself would also catch)
        sharded = split_lock(mutex_plan, "m", 3)
        counts = {}
        for steps in sharded.steps.values():
            for s in steps:
                if isinstance(s.op, op.MutexLock):
                    counts[s.op.name] = counts.get(s.op.name, 0) + 1
                elif isinstance(s.op, op.MutexUnlock):
                    counts[s.op.name] = counts.get(s.op.name, 0) - 1
        assert all(v == 0 for v in counts.values())

    def test_bad_ways_rejected(self, mutex_plan):
        with pytest.raises(ValueError):
            split_lock(mutex_plan, "m", 0)


class TestTransformProperties:
    """Hypothesis-driven invariants of the plan transformations."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_scale_one_is_identity_for_any_program(self, seed):
        from repro.workloads.synthetic import random_program

        run = record_program(random_program(seed, nthreads=3, steps=5))
        plan = compile_trace(run.trace)
        assert (
            replay(scale_compute(plan, 1.0)).makespan_us
            == replay(plan).makespan_us
        )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        factor=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_scaling_down_never_slows(self, seed, factor):
        from repro.workloads.synthetic import random_program

        run = record_program(random_program(seed, nthreads=3, steps=5))
        plan = compile_trace(run.trace)
        base = replay(plan).makespan_us
        scaled = replay(scale_compute(plan, factor)).makespan_us
        assert scaled <= base * 1.01

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        ways=st.integers(min_value=1, max_value=5),
    )
    def test_split_never_slows_and_never_deadlocks(self, seed, ways):
        from repro.workloads.synthetic import random_program

        run = record_program(
            random_program(seed, nthreads=3, steps=6, n_mutexes=1)
        )
        plan = compile_trace(run.trace)
        base = replay(plan).makespan_us
        sharded = replay(split_lock(plan, "m0", ways)).makespan_us
        assert sharded <= base * 1.02  # less contention, same work
