"""Tests for the ``vppb`` command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def log_path(tmp_path):
    path = tmp_path / "radix.log"
    rc = main(["record", "radix", "-p", "2", "-s", "0.02", "-o", str(path)])
    assert rc == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_cpu_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "x.log", "--cpus", "2,zero"])

    def test_cpu_list_parsed(self):
        args = build_parser().parse_args(["predict", "x.log", "--cpus", "2,4,8"])
        assert args.cpus == [2, 4, 8]


class TestWorkloadsCommand:
    def test_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("ocean", "water", "fft", "radix", "lu", "prodcons"):
            assert name in out


class TestRecordCommand:
    def test_writes_log(self, log_path, capsys):
        assert log_path.exists()
        assert log_path.stat().st_size > 200

    def test_unknown_workload(self, capsys):
        assert main(["record", "barnes", "-o", "/tmp/never.log"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_zero_overhead_flag(self, tmp_path):
        path = tmp_path / "a.log"
        assert (
            main(
                [
                    "record",
                    "radix",
                    "-p",
                    "2",
                    "-s",
                    "0.02",
                    "-o",
                    str(path),
                    "--overhead",
                    "0",
                ]
            )
            == 0
        )
        text = path.read_text()
        assert "# probe-overhead-us: 0" in text


class TestPredictCommand:
    def test_prints_speedups(self, log_path, capsys):
        assert main(["predict", str(log_path), "--cpus", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "predicted speed-up" in out
        assert " 2 CPUs" in out

    def test_lwps_knob_accepted(self, log_path, capsys):
        assert main(["predict", str(log_path), "--cpus", "2", "--lwps", "1"]) == 0
        out = capsys.readouterr().out
        # one LWP serialises everything: speed-up ~1
        assert "1.0" in out


class TestVisualizeCommand:
    def test_svg_output(self, log_path, tmp_path, capsys):
        out_path = tmp_path / "out.svg"
        assert (
            main(["visualize", str(log_path), "--cpus", "2", "-o", str(out_path)])
            == 0
        )
        assert out_path.read_text().startswith("<svg")

    def test_ascii_output(self, log_path, capsys):
        assert main(["visualize", str(log_path), "--cpus", "2"]) == 0
        out = capsys.readouterr().out
        assert "parallelism" in out and "T1 main" in out


class TestReportCommand:
    def test_report(self, log_path, capsys):
        assert main(["report", str(log_path), "--cpus", "2"]) == 0
        out = capsys.readouterr().out
        assert "speed-up prediction" in out


class TestStatsCommand:
    def test_stats_table(self, log_path, capsys):
        assert main(["stats", str(log_path), "--cpus", "2"]) == 0
        out = capsys.readouterr().out
        assert "util" in out and "T1 main" in out

    def test_stats_top_filter(self, log_path, capsys):
        assert main(["stats", str(log_path), "--cpus", "2", "--top", "1"]) == 0
        out = capsys.readouterr().out
        # exactly one data row (header + one line)
        rows = [l for l in out.splitlines() if l.startswith("T")]
        assert len(rows) == 1


class TestKneeCommand:
    def test_knee(self, log_path, capsys):
        assert main(["knee", str(log_path), "--max-cpus", "8"]) == 0
        out = capsys.readouterr().out
        assert "CPU(s) reach" in out and "of the bound" in out


class TestCompareCommand:
    def test_compare_two_logs(self, tmp_path, capsys):
        a = tmp_path / "naive.log"
        b = tmp_path / "tuned.log"
        assert main(["record", "prodcons", "-s", "0.05", "-o", str(a)]) == 0
        assert main(["record", "prodcons-tuned", "-s", "0.05", "-o", str(b)]) == 0
        capsys.readouterr()
        assert main(["compare", str(a), str(b), "--cpus", "8"]) == 0
        out = capsys.readouterr().out
        assert "performance change" in out and "makespan" in out


class TestWhatifCommand:
    def test_shard_preview(self, tmp_path, capsys):
        log = tmp_path / "naive.log"
        assert main(["record", "prodcons", "-s", "0.05", "-o", str(log)]) == 0
        capsys.readouterr()
        assert (
            main(["whatif", str(log), "--cpus", "8", "--shard-lock", "buffer:16"])
            == 0
        )
        out = capsys.readouterr().out
        assert "what-if on 8 CPUs" in out and "mutex:buffer" in out

    def test_no_transformation_is_an_error(self, log_path, capsys):
        assert main(["whatif", str(log_path)]) == 2
        assert "no transformation" in capsys.readouterr().err

    def test_cross_kernel_comparison(self, log_path, capsys):
        rc = main(
            ["whatif", str(log_path), "--cpus", "4",
             "--scheduler", "clutch,cfs,solaris"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cross-kernel what-if" in out
        for name in ("solaris", "clutch", "cfs"):
            assert name in out
        assert "best:" in out

    def test_scheduler_rejects_unknown_backend(self, log_path, capsys):
        assert main(["whatif", str(log_path), "--scheduler", "vms"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_scheduler_rejects_transform_combo(self, log_path, capsys):
        rc = main(
            ["whatif", str(log_path), "--scheduler", "cfs",
             "--scale-compute", "0.5"]
        )
        assert rc == 2
        assert "cannot be combined" in capsys.readouterr().err


class TestDoctorCommand:
    def test_healthy_log(self, log_path, capsys):
        assert main(["doctor", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "strict parse ok" in out
        assert "HEALTHY" in out

    def test_damaged_log_salvages(self, log_path, tmp_path, capsys):
        text = log_path.read_text()
        lines = text.splitlines(keepends=True)
        lines[10] = "not-a-time garbage line\n"
        bad = tmp_path / "damaged.log"
        bad.write_text("".join(lines))
        capsys.readouterr()
        assert main(["doctor", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "strict parse failed" in out
        assert "salvage:" in out
        assert "DEGRADED" in out

    def test_missing_file(self, capsys):
        assert main(["doctor", "/no/such/place.log"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.log"
        empty.write_text("")
        assert main(["doctor", str(empty)]) == 2
        assert "UNUSABLE" in capsys.readouterr().out

    def test_binary_junk(self, tmp_path, capsys):
        junk = tmp_path / "junk.log"
        junk.write_bytes(bytes(range(256)) * 4)
        assert main(["doctor", str(junk)]) == 2
        out = capsys.readouterr().out
        assert "UNUSABLE" in out

    def test_truncation_sweep_never_raises(self, log_path, tmp_path, capsys):
        """The acceptance bar: cut the log at any byte offset and doctor
        must exit with a verdict, never a traceback."""
        import random

        text = log_path.read_text()
        target = tmp_path / "cut.log"
        rng = random.Random(0)
        offsets = sorted(rng.sample(range(len(text) + 1), 40))
        for offset in offsets:
            target.write_text(text[:offset])
            rc = main(["doctor", str(target), "--no-replay"])
            assert rc in (0, 1, 2), f"offset {offset}: rc {rc}"
        capsys.readouterr()

    def test_truncated_log_with_replay(self, log_path, tmp_path, capsys):
        text = log_path.read_text()
        target = tmp_path / "cut.log"
        target.write_text(text[: len(text) // 2])
        rc = main(["doctor", str(target)])
        assert rc in (1, 2)
        capsys.readouterr()
