"""Tests for the Solaris real-time (RT) scheduling class extension."""

import pytest

from repro import Program, SimConfig, ThreadPolicy, predict, record_program, simulate_program
from repro.core.errors import ConfigError
from repro.core.simulator import Simulator
from repro.program import ops as op
from repro.solaris import costs as costs_mod

FREE = costs_mod.free()


def two_workers(work_us=50_000):
    """Two gated workers: both exist before either starts computing.

    The gate matters because an RT thread preempts its own (TS) creator
    the moment it is runnable — correct Solaris behaviour that would
    otherwise serialise the creations themselves.
    """

    def w(ctx):
        yield op.SemaWait("start")
        yield op.Compute(work_us)

    def main(ctx):
        a = yield op.ThrCreate(w)
        b = yield op.ThrCreate(w)
        yield op.SemaPost("start")
        yield op.SemaPost("start")
        yield op.ThrJoin(a)
        yield op.ThrJoin(b)

    return Program("p", main)


class TestConfig:
    def test_rt_priority_implies_bound(self):
        pol = ThreadPolicy(rt_priority=10)
        assert pol.effective_bound() is True

    def test_rt_priority_range_validated(self):
        with pytest.raises(ConfigError):
            SimConfig(thread_policies={4: ThreadPolicy(rt_priority=99)})
        with pytest.raises(ConfigError):
            SimConfig(thread_policies={4: ThreadPolicy(rt_priority=-1)})

    def test_rt_quantum_validated(self):
        with pytest.raises(ConfigError):
            SimConfig(rt_quantum_us=0)


#: main at the top of the RT band, so it can always create/post/join —
#: otherwise an RT worker (correctly!) starves its TS creator
MAIN_RT = {1: ThreadPolicy(rt_priority=59)}


class TestRtDominance:
    def test_rt_thread_runs_before_ts_threads(self):
        # one CPU: the RT thread finishes first even though it was
        # created second
        cfg = SimConfig(
            cpus=1,
            costs=FREE,
            thread_policies={**MAIN_RT, 5: ThreadPolicy(rt_priority=5)},
        )
        res = simulate_program(two_workers(), cfg)
        t4 = next(s for t, s in res.summaries.items() if int(t) == 4)
        t5 = next(s for t, s in res.summaries.items() if int(t) == 5)
        assert t5.end_us < t4.end_us

    def test_rt_never_demoted_by_quantum_expiry(self):
        from repro.solaris.dispatch import DispatchTable

        cfg = SimConfig(
            cpus=1,
            costs=FREE,
            rt_quantum_us=5_000,
            dispatch=DispatchTable.fixed_quantum(5_000),
            thread_policies={**MAIN_RT, 4: ThreadPolicy(rt_priority=7)},
        )
        sim = Simulator(cfg)
        sim.run_program(two_workers(work_us=60_000))
        all_lwps = sim.scheduler.lwps + sim.scheduler.retired_lwps
        rt_lwps = [l for l in all_lwps if l.rt]
        assert len(rt_lwps) == 2  # main + T4
        # despite many quantum expiries, RT priorities never moved
        assert {l.kernel_priority for l in rt_lwps} == {7, 59}
        assert any(l.quantum_expiries > 0 for l in rt_lwps)

    def test_rt_preempts_running_ts_hog(self):
        # the RT thread sleeps in I/O while the TS hog takes the CPU;
        # when the I/O completes the RT thread preempts it mid-burst
        from repro.core.result import SegmentKind

        def hog(ctx):
            yield op.Compute(100_000)

        def rt_worker(ctx):
            yield op.IoWait(5_000)
            yield op.Compute(10_000)

        def main(ctx):
            a = yield op.ThrCreate(hog)
            b = yield op.ThrCreate(rt_worker)
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)

        cfg = SimConfig(
            cpus=1, costs=FREE, thread_policies={5: ThreadPolicy(rt_priority=3)}
        )
        res = simulate_program(Program("p", main), cfg)
        rt_end = next(s.end_us for t, s in res.summaries.items() if int(t) == 5)
        hog_end = next(s.end_us for t, s in res.summaries.items() if int(t) == 4)
        assert rt_end < hog_end
        # the hog's run was split by the preemption
        hog_runs = [
            seg
            for t, segs in res.segments.items()
            if int(t) == 4
            for seg in segs
            if seg.kind is SegmentKind.RUNNING
        ]
        assert len(hog_runs) >= 2

    def test_two_rt_threads_round_robin(self):
        from repro.core.result import SegmentKind

        cfg = SimConfig(
            cpus=1,
            costs=FREE,
            rt_quantum_us=10_000,
            thread_policies={
                **MAIN_RT,
                4: ThreadPolicy(rt_priority=5),
                5: ThreadPolicy(rt_priority=5),
            },
        )
        res = simulate_program(two_workers(work_us=40_000), cfg)
        # equal RT priorities share the CPU in slices: each worker has
        # several separate RUNNING segments
        t4_runs = [
            s
            for s in res.segments[[t for t in res.segments if int(t) == 4][0]]
            if s.kind is SegmentKind.RUNNING
        ]
        assert len(t4_runs) >= 3

    def test_higher_rt_priority_wins(self):
        cfg = SimConfig(
            cpus=1,
            costs=FREE,
            thread_policies={
                **MAIN_RT,
                4: ThreadPolicy(rt_priority=2),
                5: ThreadPolicy(rt_priority=9),
            },
        )
        res = simulate_program(two_workers(), cfg)
        t4 = next(s for t, s in res.summaries.items() if int(t) == 4)
        t5 = next(s for t, s in res.summaries.items() if int(t) == 5)
        assert t5.end_us < t4.end_us


class TestRtOnReplays:
    def test_rt_policy_applies_to_replayed_traces(self):
        # the whole point: take one recorded log and ask "what if that
        # thread were real-time?"
        run = record_program(two_workers())
        ts = predict(run.trace, SimConfig(cpus=1))
        rt = predict(
            run.trace,
            SimConfig(cpus=1, thread_policies={5: ThreadPolicy(rt_priority=5)}),
        )
        ts_t5 = next(s.end_us for t, s in ts.summaries.items() if int(t) == 5)
        rt_t5 = next(s.end_us for t, s in rt.summaries.items() if int(t) == 5)
        assert rt_t5 < ts_t5  # T5 jumps the queue in the what-if

    def test_rt_makespan_unchanged_for_independent_work(self):
        # reordering who runs first must not change total work
        run = record_program(two_workers())
        ts = predict(run.trace, SimConfig(cpus=1))
        rt = predict(
            run.trace,
            SimConfig(cpus=1, thread_policies={5: ThreadPolicy(rt_priority=5)}),
        )
        # bound thread costs differ slightly (x6.7 create), so allow a
        # small margin
        assert rt.makespan_us == pytest.approx(ts.makespan_us, rel=0.02)
