"""Batch job engine: fingerprints, cache, pool, manifests, service.

The determinism contract under test: the same trace and config yield
byte-identical fingerprints and equal predictions whether executed
inline, on the process pool, or from a warm cache — and a poisoned job
degrades to a failed outcome instead of killing its sweep.
"""

from __future__ import annotations

import json
import http.client
import threading

import pytest

from repro import SimConfig, record_program
from repro.core.errors import AnalysisError, SimulationError
from repro.core.predictor import compile_trace, predict_speedup
from repro.faultinject import corrupt
from repro.jobs import (
    JobEngine,
    JobOutcome,
    ResultCache,
    SimJob,
    SweepManifest,
    TraceRef,
    canonical_config,
    job_fingerprint,
    trace_fingerprint,
)
from repro.jobs.manifest import run_manifest
from repro.jobs.service import PredictionService, make_server
from repro.jobs.worker import CRASH_SENTINEL
from repro.recorder import logfile

from tests.conftest import make_prodcons_program


@pytest.fixture(scope="module")
def trace():
    return record_program(make_prodcons_program()).trace


@pytest.fixture(scope="module")
def log_text(trace):
    return logfile.dumps(trace)


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_trace_fingerprint_stable_across_roundtrip(self, trace, log_text, tmp_path):
        path = tmp_path / "t.log"
        path.write_text(log_text)
        reloaded = logfile.load(path)
        assert trace.fingerprint() == reloaded.fingerprint()
        assert trace.fingerprint() == trace_fingerprint(trace)

    def test_fingerprint_memoised(self, trace):
        assert trace.fingerprint() is trace.fingerprint()

    def test_job_fingerprint_deterministic(self, trace):
        a = SimJob.for_trace(trace, SimConfig(cpus=4))
        b = SimJob.for_trace(trace, SimConfig(cpus=4))
        assert a.fingerprint == b.fingerprint

    def test_config_changes_fingerprint(self, trace):
        fp = trace.fingerprint()
        base = job_fingerprint(fp, SimConfig(cpus=4))
        assert job_fingerprint(fp, SimConfig(cpus=8)) != base
        assert job_fingerprint(fp, SimConfig(cpus=4, lwps=2)) != base
        assert job_fingerprint(fp, SimConfig(cpus=4, comm_delay_us=5)) != base

    def test_trace_changes_fingerprint(self, trace):
        config = SimConfig(cpus=4)
        assert job_fingerprint("aaaa", config) != job_fingerprint("bbbb", config)

    def test_engine_version_bump_rekeys(self, trace, monkeypatch):
        import repro.jobs.fingerprint as fpmod

        before = job_fingerprint(trace.fingerprint(), SimConfig())
        monkeypatch.setattr(fpmod, "ENGINE_VERSION", fpmod.ENGINE_VERSION + 1)
        assert job_fingerprint(trace.fingerprint(), SimConfig()) != before

    def test_canonical_config_is_json_safe_and_ordered(self):
        from repro.core.config import ThreadPolicy

        a = SimConfig(thread_policies={3: ThreadPolicy(bound=True), 1: ThreadPolicy()})
        b = SimConfig(thread_policies={1: ThreadPolicy(), 3: ThreadPolicy(bound=True)})
        assert json.dumps(canonical_config(a), sort_keys=True) == json.dumps(
            canonical_config(b), sort_keys=True
        )


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


def _outcome(fp: str, **kw) -> JobOutcome:
    defaults = dict(status="complete", makespan_us=123, elapsed_s=0.5)
    defaults.update(kw)
    return JobOutcome(fingerprint=fp, **defaults)


class TestResultCache:
    def test_roundtrip_and_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("f" * 64) is None
        cache.put(_outcome("f" * 64))
        got = cache.get("f" * 64)
        assert got is not None and got.makespan_us == 123 and got.from_cache
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1
        assert cache.hit_rate == 0.5

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put(_outcome("a" * 64))
        fresh = ResultCache(tmp_path)
        assert fresh.get("a" * 64) is not None

    def test_failed_outcomes_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_outcome("b" * 64, status="failed", error="boom"))
        assert cache.get("b" * 64) is None

    def test_version_bump_invalidates_disk_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_outcome("c" * 64))
        path = cache._path_for("c" * 64)
        doc = json.loads(path.read_text())
        doc["format_version"] = 999
        path.write_text(json.dumps(doc))
        assert ResultCache(tmp_path).get("c" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_outcome("d" * 64))
        cache._path_for("d" * 64).write_text("{not json")
        assert ResultCache(tmp_path).get("d" * 64) is None

    def test_lru_bound_with_disk_fallback(self, tmp_path):
        cache = ResultCache(tmp_path, max_memory_entries=2)
        for ch in "abc":
            cache.put(_outcome(ch * 64))
        assert len(cache._lru) == 2
        # evicted entry still hits via disk
        assert cache.get("a" * 64) is not None

    def test_memory_only_mode(self):
        cache = ResultCache(None)
        cache.put(_outcome("e" * 64))
        assert cache.get("e" * 64) is not None
        assert cache.stats()["persistent"] is False


# ---------------------------------------------------------------------------
# engine: inline, pooled, cached — one contract
# ---------------------------------------------------------------------------


class TestEngineDeterminism:
    def test_inline_pool_and_cache_agree(self, trace):
        cpus = [1, 2, 4]
        inline = JobEngine(mode="inline")
        inline_preds = inline.predict_speedups(trace, cpus)
        with JobEngine(workers=2) as pooled:
            pool_preds = pooled.predict_speedups(trace, cpus)
            warm_preds = pooled.predict_speedups(trace, cpus)  # cache hits
            assert pooled.cache.hits >= len(cpus)
        key = lambda preds: [(p.cpus, p.uniprocessor_us, p.makespan_us) for p in preds]
        assert key(inline_preds) == key(pool_preds) == key(warm_preds)

    def test_matches_serial_predictor(self, trace):
        plan = compile_trace(trace)
        engine = JobEngine(mode="inline")
        for pred in engine.predict_speedups(trace, [2, 4]):
            serial = predict_speedup(trace, pred.cpus, plan=plan)
            assert pred.makespan_us == serial.makespan_us
            assert pred.uniprocessor_us == serial.uniprocessor_us

    def test_in_flight_dedup(self, trace):
        engine = JobEngine(mode="inline")
        job = SimJob.for_trace(trace, SimConfig(cpus=2), label="x")
        twin = SimJob.for_trace(trace, SimConfig(cpus=2), label="y")
        outcomes = engine.run([job, twin], use_cache=False)
        assert engine.metrics.jobs_submitted == 1
        assert [o.label for o in outcomes] == ["x", "y"]
        assert outcomes[0].makespan_us == outcomes[1].makespan_us

    def test_outcomes_keep_submission_order(self, trace):
        engine = JobEngine(mode="inline")
        jobs = [
            SimJob.for_trace(trace, SimConfig(cpus=n), label=f"{n}cpu")
            for n in (4, 1, 2)
        ]
        outcomes = engine.run(jobs)
        assert [o.label for o in outcomes] == ["4cpu", "1cpu", "2cpu"]


class TestWorkerPlanCache:
    """The worker-side compiled-plan LRU and its observability."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self, monkeypatch):
        from collections import OrderedDict

        from repro.jobs import worker

        monkeypatch.setattr(worker, "_PLAN_CACHE", OrderedDict())

    @staticmethod
    def _payload(log_text, fp="f" * 64, cpus=2):
        return {
            "fingerprint": fp + f":{cpus}",
            "trace_fp": fp,
            "trace_text": log_text,
            "config": SimConfig(cpus=cpus),
        }

    def test_first_job_misses_then_hits(self, log_text):
        from repro.jobs.worker import run_payload

        first = run_payload(self._payload(log_text, cpus=1))
        second = run_payload(self._payload(log_text, cpus=2))
        assert (first["plan_cache_hits"], first["plan_cache_misses"]) == (0, 1)
        assert (second["plan_cache_hits"], second["plan_cache_misses"]) == (1, 0)

    def test_cache_size_from_env(self, log_text, monkeypatch):
        from repro.jobs import worker

        monkeypatch.setenv("VPPB_PLAN_CACHE", "1")
        worker.run_payload(self._payload(log_text, fp="a" * 64))
        worker.run_payload(self._payload(log_text, fp="b" * 64))
        # capacity 1: the second trace evicted the first
        evicted = worker.run_payload(self._payload(log_text, fp="a" * 64))
        assert evicted["plan_cache_misses"] == 1
        assert list(worker._PLAN_CACHE) == ["a" * 64]

    def test_invalid_env_falls_back_to_default(self, monkeypatch):
        from repro.jobs import worker

        monkeypatch.setenv("VPPB_PLAN_CACHE", "not-a-number")
        assert worker._plan_cache_max() == worker._DEFAULT_PLAN_CACHE_MAX
        monkeypatch.setenv("VPPB_PLAN_CACHE", "0")
        assert worker._plan_cache_max() == worker._DEFAULT_PLAN_CACHE_MAX
        monkeypatch.setenv("VPPB_PLAN_CACHE", "7")
        assert worker._plan_cache_max() == 7

    def test_outcome_and_metrics_surface_amortisation(self, trace):
        engine = JobEngine(mode="inline")
        outcomes = engine.makespans(
            TraceRef.from_trace(trace),
            [SimConfig(cpus=n) for n in (1, 2, 4)],
            use_cache=False,
        )
        hits = sum(o.plan_cache_hits for o in outcomes)
        misses = sum(o.plan_cache_misses for o in outcomes)
        assert misses >= 1  # first job compiles
        assert hits + misses == 3
        snap = engine.snapshot()
        assert snap["plan_cache"] == {"hits": hits, "misses": misses}

    def test_outcome_dict_roundtrip_keeps_counts(self):
        o = JobOutcome(
            fingerprint="x", status="complete",
            plan_cache_hits=1, plan_cache_misses=0,
        )
        back = JobOutcome.from_dict(o.to_dict())
        assert back.plan_cache_hits == 1 and back.plan_cache_misses == 0

    def test_batch_table_reports_plan_cache(self, trace, tmp_path):
        import json as json_mod

        path = tmp_path / "trace.log"
        path.write_text(logfile.dumps(trace))
        manifest = SweepManifest.from_dict(
            {"trace": str(path), "cpus": [1, 2]}, base_dir=tmp_path
        )
        engine = JobEngine(mode="inline")
        report = run_manifest(manifest, engine, use_cache=False)
        assert "plan cache:" in report.format_table()
        assert "plan_cache" in json_mod.loads(report.to_json())["metrics"]


class TestEngineFaults:
    def test_poisoned_job_does_not_kill_the_sweep(self, trace, log_text):
        # a corruptor-damaged trace must fail its own job only
        bad_text = corrupt(log_text, "mangle-primitive", seed=1)
        bad = SimJob(
            trace=TraceRef(fingerprint="bad" * 20 + "badb", text=bad_text),
            config=SimConfig(cpus=2),
            label="poisoned",
        )
        good = SimJob.for_trace(trace, SimConfig(cpus=2), label="healthy")
        engine = JobEngine(mode="inline")
        outcomes = engine.run([good, bad, good])
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok and outcomes[1].status == "failed"
        assert "Error" in outcomes[1].error
        assert engine.metrics.jobs_failed == 1

    def test_worker_crash_retries_then_degrades(self, trace):
        crash = SimJob(
            trace=TraceRef(fingerprint="c" * 64, text=CRASH_SENTINEL),
            config=SimConfig(cpus=2),
            label="crash",
        )
        good = [
            SimJob.for_trace(trace, SimConfig(cpus=n), label=f"{n}cpu")
            for n in (1, 2, 4)
        ]
        with JobEngine(workers=2) as engine:
            outcomes = engine.run([good[0], crash, good[1], good[2]])
            assert engine.metrics.worker_crashes >= 1
        crashed = outcomes[1]
        assert not crashed.ok and "crash" in crashed.error
        assert crashed.attempts == 2
        for o in (outcomes[0], outcomes[2], outcomes[3]):
            assert o.ok, o.error

    def test_backpressure_bound_still_completes(self, trace):
        with JobEngine(workers=2, max_pending=1) as engine:
            preds = engine.predict_speedups(trace, [1, 2, 3, 4])
        assert len(preds) == 4

    def test_failed_job_raises_from_predict_speedups(self, trace, log_text):
        bad_text = corrupt(log_text, "mangle-primitive", seed=1)
        engine = JobEngine(mode="inline")
        bad_trace_ref = TraceRef(fingerprint="z" * 64, text=bad_text)
        with pytest.raises(SimulationError):
            engine.predict_speedups(trace, [2], trace_ref=bad_trace_ref)


# ---------------------------------------------------------------------------
# whatif entry points route through the engine
# ---------------------------------------------------------------------------


class TestWhatifViaEngine:
    def test_speedup_curve_engine_param(self, trace):
        from repro.analysis.whatif import speedup_curve

        engine = JobEngine(mode="inline")
        curve = speedup_curve(trace, 4, engine=engine)
        assert [p.cpus for p in curve] == [1, 2, 3, 4]
        plan = compile_trace(trace)
        for p in curve:
            assert p.makespan_us == predict_speedup(trace, p.cpus, plan=plan).makespan_us

    def test_find_knee_shares_probe_results(self, trace):
        from repro.analysis.whatif import find_knee

        engine = JobEngine(mode="inline")
        knee = find_knee(trace, max_cpus=8, engine=engine)
        assert knee.cpus >= 1
        assert engine.cache.hits > 0  # exponential probe and walk-back overlap

    def test_lwp_sensitivity_engine_param(self, trace):
        from repro.analysis.whatif import lwp_sensitivity

        makespans = lwp_sensitivity(trace, 4, (1, None), engine=JobEngine(mode="inline"))
        assert makespans[1] >= makespans[None]


class TestKneePointDegenerate:
    def test_fraction_of_bound_raises_on_zero_bound(self):
        from repro.analysis.whatif import KneePoint

        knee = KneePoint(cpus=1, speedup=0.0, bound=0.0)
        with pytest.raises(AnalysisError):
            knee.fraction_of_bound

    def test_fraction_of_bound_normal(self):
        from repro.analysis.whatif import KneePoint

        assert KneePoint(cpus=2, speedup=1.5, bound=3.0).fraction_of_bound == 0.5


# ---------------------------------------------------------------------------
# manifests and vppb batch
# ---------------------------------------------------------------------------


class TestManifest:
    def test_grid_expansion(self, trace):
        m = SweepManifest.from_dict(
            {
                "trace": "x.log",
                "cpus": {"min": 1, "max": 4},
                "bindings": ["unbound", "bound"],
                "lwps": [None, 2],
            }
        )
        assert m.grid_size() == 16
        cells = m.configs(trace)
        assert len(cells) == 16
        labels = {c.label for c in cells}
        assert "1cpu/unbound" in labels and "4cpu/bound/lwps=2" in labels
        bound_cell = next(c for c in cells if c.binding == "bound")
        assert len(bound_cell.config.thread_policies) == len(trace.thread_ids())

    def test_validation_errors(self):
        with pytest.raises(AnalysisError):
            SweepManifest.from_dict({"cpus": [2]})  # no trace
        with pytest.raises(AnalysisError):
            SweepManifest.from_dict({"trace": "x", "cpus": []})
        with pytest.raises(AnalysisError):
            SweepManifest.from_dict({"trace": "x", "cpus": [0]})
        with pytest.raises(AnalysisError):
            SweepManifest.from_dict({"trace": "x", "bindings": ["sideways"]})
        # unknown keys are a ConfigError naming the key + nearest valid one
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError, match="typo_key"):
            SweepManifest.from_dict({"trace": "x", "typo_key": 1})
        with pytest.raises(ConfigError, match="did you mean 'schedulers'"):
            SweepManifest.from_dict({"trace": "x", "scheduler": ["solaris"]})

    def test_relative_trace_path_resolves_against_manifest(self, tmp_path):
        (tmp_path / "sweep.json").write_text(
            json.dumps({"trace": "run.log", "cpus": [2]})
        )
        m = SweepManifest.load(tmp_path / "sweep.json")
        assert m.trace_path == tmp_path / "run.log"

    def test_run_manifest_matches_serial_curve(self, trace, log_text, tmp_path):
        from repro.analysis.whatif import speedup_curve

        log = tmp_path / "run.log"
        log.write_text(log_text)
        manifest = SweepManifest.from_dict(
            {"trace": str(log), "cpus": {"min": 1, "max": 4}}
        )
        engine = JobEngine(mode="inline", cache=ResultCache(tmp_path / "cache"))
        report = run_manifest(manifest, engine)
        serial = speedup_curve(trace, 4, engine=JobEngine(mode="inline"))
        assert [s.outcome.makespan_us for s in report.scenarios] == [
            p.makespan_us for p in serial
        ]
        assert [round(s.speedup, 9) for s in report.scenarios] == [
            round(p.speedup, 9) for p in serial
        ]
        # warm rerun: everything from cache
        rerun = run_manifest(manifest, engine)
        assert rerun.cache_hit_rate() == 1.0
        assert all(s.outcome.from_cache for s in rerun.scenarios)
        assert json.loads(report.to_json())["program"] == trace.meta.program

    def test_cli_batch(self, log_text, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "run.log").write_text(log_text)
        manifest = tmp_path / "sweep.json"
        manifest.write_text(
            json.dumps({"trace": "run.log", "cpus": [1, 2], "bindings": ["unbound"]})
        )
        cache = str(tmp_path / "cache")
        assert main(["batch", str(manifest), "--inline", "--cache-dir", cache]) == 0
        cold = capsys.readouterr().out
        assert "scenario hit rate 0%" in cold
        assert main(["batch", str(manifest), "--inline", "--cache-dir", cache]) == 0
        warm = capsys.readouterr().out
        assert "scenario hit rate 100%" in warm

    def test_cli_batch_bad_manifest(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{")
        assert main(["batch", str(bad)]) == 2


# ---------------------------------------------------------------------------
# the HTTP service
# ---------------------------------------------------------------------------


@pytest.fixture()
def service_conn(trace):
    engine = JobEngine(mode="inline")
    service = PredictionService(engine)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    conn = http.client.HTTPConnection("127.0.0.1", server.server_port, timeout=30)
    try:
        yield conn, service
    finally:
        conn.close()
        server.shutdown()
        server.server_close()
        engine.close()


def _request(conn, method, path, body=None):
    conn.request(
        method, path, body=body if body is None or isinstance(body, bytes) else body.encode()
    )
    resp = conn.getresponse()
    return resp.status, json.loads(resp.read())


class TestService:
    def test_upload_predict_metrics(self, service_conn, trace, log_text):
        conn, _service = service_conn
        status, uploaded = _request(conn, "POST", "/traces", log_text)
        assert status == 200
        assert uploaded["trace"] == trace.fingerprint()
        assert uploaded["events"] == len(trace)

        request = json.dumps({"trace": uploaded["trace"], "cpus": [2, 4]})
        status, pred = _request(conn, "POST", "/predict", request)
        assert status == 200
        plan = compile_trace(trace)
        for p in pred["predictions"]:
            assert p["makespan_us"] == predict_speedup(trace, p["cpus"], plan=plan).makespan_us

        # same request again: served from cache
        status, _ = _request(conn, "POST", "/predict", request)
        assert status == 200
        status, metrics = _request(conn, "GET", "/metrics")
        assert status == 200
        assert metrics["cache"]["hits"] >= 3
        assert metrics["jobs_failed"] == 0
        assert metrics["service"]["traces_spooled"] == 1
        assert {"p50_s", "p90_s", "p99_s"} <= set(metrics["latency"])

    def test_predict_inline_log(self, service_conn, log_text):
        conn, _service = service_conn
        status, pred = _request(
            conn, "POST", "/predict", json.dumps({"log": log_text, "cpus": [2]})
        )
        assert status == 200 and len(pred["predictions"]) == 1

    def test_error_paths(self, service_conn):
        conn, service = service_conn
        status, body = _request(conn, "POST", "/predict", json.dumps({"trace": "nope"}))
        assert status == 404 and "unknown trace" in body["error"]
        status, _ = _request(conn, "POST", "/traces", "garbage")
        assert status == 400
        status, _ = _request(conn, "POST", "/predict", "{not json")
        assert status == 400
        status, _ = _request(conn, "GET", "/nothing")
        assert status == 404
        status, body = _request(conn, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        assert service.errors == 4

    def test_scheduler_backend(self, service_conn, log_text):
        conn, _service = service_conn
        status, pred = _request(
            conn,
            "POST",
            "/predict",
            json.dumps({"log": log_text, "cpus": [2], "scheduler": "cfs"}),
        )
        assert status == 200 and len(pred["predictions"]) == 1
        status, metrics = _request(conn, "GET", "/metrics")
        assert status == 200
        assert metrics["schedulers"]["cfs"]["jobs"] == 1
        status, body = _request(
            conn,
            "POST",
            "/predict",
            json.dumps({"log": log_text, "scheduler": "vms"}),
        )
        assert status == 400 and "unknown scheduler" in body["error"]

    def test_bound_binding(self, service_conn, log_text):
        conn, _service = service_conn
        status, pred = _request(
            conn,
            "POST",
            "/predict",
            json.dumps({"log": log_text, "cpus": [4], "binding": "bound"}),
        )
        assert status == 200 and pred["binding"] == "bound"
        status, _ = _request(
            conn,
            "POST",
            "/predict",
            json.dumps({"log": log_text, "cpus": [4], "binding": "sideways"}),
        )
        assert status == 400
