"""Tests for the ground-truth executor and the end-to-end accuracy claim."""

import pytest

from repro import SimConfig, measure_speedup, predict_speedup, run_multiprocessor
from repro.program.mpexec import GroundTruth, PerturbationModel, RunStatistics
from repro.program.uniexec import record_program
from tests.conftest import (
    make_barrier_program,
    make_fig2_program,
    make_mutex_program,
    make_prodcons_program,
)


class TestPerturbationModel:
    def test_deterministic_per_seed(self):
        a = PerturbationModel(7)
        b = PerturbationModel(7)
        xs = [a(1000) for _ in range(20)]
        ys = [b(1000) for _ in range(20)]
        assert xs == ys

    def test_different_seeds_differ(self):
        a = [PerturbationModel(1)(10_000) for _ in range(10)]
        b = [PerturbationModel(2)(10_000) for _ in range(10)]
        assert a != b

    def test_jitter_bounded(self):
        p = PerturbationModel(3, jitter=0.05)
        for _ in range(200):
            v = p(10_000)
            assert 9_500 <= v <= 10_500

    def test_zero_jitter_identity(self):
        p = PerturbationModel(3, jitter=0.0)
        assert p(12345) == 12345

    def test_zero_duration_untouched(self):
        assert PerturbationModel(3)(0) == 0

    def test_bad_jitter_rejected(self):
        with pytest.raises(ValueError):
            PerturbationModel(1, jitter=1.5)
        with pytest.raises(ValueError):
            PerturbationModel(1, jitter=-0.1)


class TestRunStatistics:
    def test_min_median_max(self):
        s = RunStatistics((3.0, 1.0, 2.0))
        assert s.minimum == 1.0 and s.median == 2.0 and s.maximum == 3.0

    def test_brief_format(self):
        s = RunStatistics((1.97, 1.99, 1.98))
        assert s.brief() == "1.98 (1.97-1.99)"


class TestGroundTruth:
    def test_seeded_runs_reproducible(self):
        program = make_barrier_program()
        a = run_multiprocessor(program, SimConfig(cpus=4), seed=5)
        b = run_multiprocessor(program, SimConfig(cpus=4), seed=5)
        assert a.makespan_us == b.makespan_us

    def test_jitter_changes_makespan(self):
        program = make_barrier_program()
        a = run_multiprocessor(program, SimConfig(cpus=4), seed=1)
        b = run_multiprocessor(program, SimConfig(cpus=4), seed=2)
        assert a.makespan_us != b.makespan_us

    def test_noise_free_run(self):
        program = make_barrier_program()
        a = run_multiprocessor(program, SimConfig(cpus=4))
        b = run_multiprocessor(program, SimConfig(cpus=4))
        assert a.makespan_us == b.makespan_us

    def test_measure_speedup_protocol(self):
        # Table 1 protocol: five runs, (min mid max)
        gt = measure_speedup(make_barrier_program(), cpus=2, runs=5)
        assert isinstance(gt, GroundTruth)
        assert len(gt.speedups.values) == 5
        assert gt.speedups.minimum <= gt.speedup <= gt.speedups.maximum

    def test_speedup_reasonable_for_parallel_program(self):
        gt = measure_speedup(make_barrier_program(nthreads=4), cpus=4, runs=3)
        assert 3.0 < gt.speedup <= 4.05


class TestEndToEndAccuracy:
    """The paper's headline: predictions within single-digit percent."""

    @pytest.mark.parametrize("cpus", [2, 4])
    def test_barrier_program_prediction_accuracy(self, cpus):
        program = make_barrier_program(nthreads=4, iters=3)
        run = record_program(program)
        pred = predict_speedup(run.trace, cpus)
        real = measure_speedup(program, cpus, runs=3)
        error = abs(real.speedup - pred.speedup) / real.speedup
        assert error < 0.06, f"error {error:.1%} exceeds the paper's ±6%"

    def test_fig2_prediction_accuracy(self):
        program = make_fig2_program()
        run = record_program(program)
        pred = predict_speedup(run.trace, 2)
        real = measure_speedup(program, 2, runs=3)
        assert abs(real.speedup - pred.speedup) / real.speedup < 0.02

    def test_serial_bottleneck_predicted_as_serial(self):
        # a program serialised on one mutex must not be predicted to scale
        program = make_mutex_program(nthreads=4, iters=6)
        run = record_program(program)
        pred = predict_speedup(run.trace, 8)
        real = measure_speedup(program, 8, runs=3)
        assert pred.speedup < 4  # bottleneck visible in the prediction
        assert abs(real.speedup - pred.speedup) / real.speedup < 0.25
