"""Golden predicted speed-ups for the five kernels (regression net).

The whole pipeline is deterministic, so the predicted speed-up of each
miniature kernel is pinned to four decimal places.  A change here means
the scheduler model, the cost model, the replay rules or the workload
models changed behaviour — which must be a conscious decision.

Regenerate with:  python tests/test_golden_predictions.py
"""

from repro import predict_speedup, record_program
from repro.workloads import get_workload

SCALE = 0.05

#: (kernel, cpus) -> predicted speed-up, pinned.
GOLDEN = {
    ("fft", 2): 1.5497,
    ("fft", 8): 2.6337,
    ("lu", 2): 1.7857,
    ("lu", 8): 4.4439,
    ("ocean", 2): 1.9009,
    ("ocean", 8): 5.8274,
    ("radix", 2): 1.9816,
    ("radix", 8): 7.784,
    ("water", 2): 1.9594,
    ("water", 8): 6.916,
}


def _compute(kernel: str, cpus: int) -> float:
    workload = get_workload(kernel)
    baseline = record_program(
        workload.make_program(1, SCALE), overhead_us=0
    ).monitored_makespan_us
    run = record_program(workload.make_program(cpus, SCALE))
    return predict_speedup(run.trace, cpus, baseline_us=baseline).speedup


class TestGoldenPredictions:
    def test_predictions_unchanged(self):
        mismatches = []
        for (kernel, cpus), expected in GOLDEN.items():
            got = round(_compute(kernel, cpus), 4)
            if abs(got - expected) > 5e-4:
                mismatches.append(f"{kernel}@{cpus}p: {got} != {expected}")
        assert not mismatches, (
            "golden predictions drifted (regenerate consciously with "
            "`python tests/test_golden_predictions.py`): "
            + "; ".join(mismatches)
        )


if __name__ == "__main__":
    for (kernel, cpus) in sorted(GOLDEN):
        print(f'    ("{kernel}", {cpus}): {round(_compute(kernel, cpus), 4)},')
