"""Tests for metrics, bottleneck analysis, critical path and reporting."""

import pytest

from repro import SimConfig, predict, predict_speedup, record_program
from repro.analysis import (
    Table1,
    Table1Cell,
    Table1Row,
    contention_by_object,
    critical_path_us,
    format_table1,
    max_speedup,
    parallelism_profile,
    prediction_error,
    recording_overhead,
    top_bottleneck,
)
from repro.core.errors import AnalysisError, VppbError
from repro.core.ids import SyncObjectId
from repro.core.predictor import SpeedupPrediction
from repro.program.mpexec import measure_speedup
from tests.conftest import (
    make_barrier_program,
    make_fig2_program,
    make_mutex_program,
)


class TestMetrics:
    def test_prediction_error_paper_definition(self):
        # §4: ((Real speed-up) - (Predicted speed-up)) / (Real speed-up)
        assert prediction_error(2.0, 1.9) == pytest.approx(0.05)
        assert prediction_error(2.0, 2.1) == pytest.approx(-0.05)

    def test_prediction_error_zero_real(self):
        with pytest.raises(AnalysisError):
            prediction_error(0.0, 1.0)

    def test_prediction_error_zero_real_is_catchable_as_vppb(self):
        # callers catch one root type for every repro-raised failure
        with pytest.raises(VppbError):
            prediction_error(0.0, 1.0)

    def test_recording_overhead(self):
        assert recording_overhead(103, 100) == pytest.approx(0.03)

    def test_recording_overhead_zero_plain(self):
        with pytest.raises(AnalysisError):
            recording_overhead(1, 0)


class TestContention:
    @pytest.fixture(scope="class")
    def contended(self):
        run = record_program(make_mutex_program(nthreads=4, iters=4))
        return predict(run.trace, SimConfig(cpus=4))

    def test_hot_mutex_found(self, contended):
        profiles = contention_by_object(contended)
        assert profiles[0].obj == SyncObjectId("mutex", "m")
        assert profiles[0].total_blocked_us > 0

    def test_sorted_worst_first(self, contended):
        profiles = contention_by_object(contended)
        blocked = [p.total_blocked_us for p in profiles]
        assert blocked == sorted(blocked, reverse=True)

    def test_top_bottleneck_matches(self, contended):
        top = top_bottleneck(contended)
        assert top is not None
        assert top.obj == SyncObjectId("mutex", "m")
        assert top.mean_blocked_us > 0

    def test_uncontended_run_has_no_bottleneck(self):
        run = record_program(make_fig2_program(work_us=1_000))
        res = predict(run.trace, SimConfig(cpus=1))
        # joins block, so filter to sync objects only: fig2 has none
        profiles = [p for p in contention_by_object(res) if p.obj is not None]
        assert all(p.obj.kind != "mutex" or p.total_blocked_us == 0 for p in profiles)


class TestCriticalPath:
    @pytest.fixture(scope="class")
    def trace(self):
        return record_program(make_barrier_program(nthreads=4, iters=2)).trace

    def test_critical_path_below_uniprocessor(self, trace):
        from repro.program.uniexec import uniprocessor_config

        uni = predict(trace, uniprocessor_config())
        assert critical_path_us(trace) < uni.makespan_us

    def test_max_speedup_bounds_predictions(self, trace):
        bound = max_speedup(trace)
        for cpus in (2, 4, 8):
            pred = predict_speedup(trace, cpus)
            assert pred.speedup <= bound * 1.02

    def test_max_speedup_near_thread_count_for_parallel_program(self, trace):
        assert 3.0 < max_speedup(trace) <= 4.2

    def test_parallelism_profile(self, trace):
        prof = parallelism_profile(trace)
        # 4 workers, briefly 5 while main overlaps the first joins
        assert prof.peak_parallelism in (4, 5)
        assert 1.0 <= prof.average_parallelism <= 5.0
        assert 0.0 <= prof.serial_fraction < 0.5
        assert prof.critical_path_us == critical_path_us(trace)

    def test_serial_program_profile(self):
        run = record_program(make_fig2_program(work_us=100))
        prof = parallelism_profile(run.trace)
        assert prof.peak_parallelism <= 3


class TestReport:
    def _table(self):
        program = make_barrier_program(nthreads=4, iters=2)
        run = record_program(program)
        cells = []
        for cpus in (2, 4):
            real = measure_speedup(program, cpus, runs=3)
            pred = predict_speedup(run.trace, cpus)
            cells.append(Table1Cell(cpus=cpus, real=real, predicted=pred))
        return Table1(rows=[Table1Row(application="Barrier", cells=cells)])

    def test_table_accessors(self):
        table = self._table()
        row = table.row("Barrier")
        assert row.cell(2).cpus == 2
        assert table.cpu_counts() == [2, 4]
        with pytest.raises(KeyError):
            table.row("Nope")
        with pytest.raises(KeyError):
            row.cell(16)

    def test_errors_small_for_barrier_program(self):
        table = self._table()
        assert table.max_abs_error < 0.06

    def test_format_contains_paper_layout(self):
        table = self._table()
        text = format_table1(table)
        assert "Application/Speed-up" in text
        assert "2 processors" in text and "4 processors" in text
        assert "Real" in text and "Pred." in text and "Error" in text
        assert "max |error|" in text

    def test_format_with_paper_reference(self):
        from repro.workloads import PAPER_TABLE1

        program = make_barrier_program(nthreads=2, iters=1)
        run = record_program(program)
        cells = [
            Table1Cell(
                cpus=2,
                real=measure_speedup(program, 2, runs=2),
                predicted=predict_speedup(run.trace, 2),
            )
        ]
        table = Table1(rows=[Table1Row(application="radix", cells=cells)])
        text = format_table1(table, paper=PAPER_TABLE1)
        assert "(paper real)" in text
