"""Unit tests for SimulationResult assembly (ResultBuilder)."""

import pytest

from repro.core.config import SimConfig
from repro.core.events import Primitive
from repro.core.ids import ThreadId
from repro.core.result import (
    PlacedEvent,
    ResultBuilder,
    SegmentKind,
    ThreadSegment,
    ThreadSummary,
)


def make_builder(cpus=2):
    return ResultBuilder(SimConfig(cpus=cpus))


def summary(tid, **kw):
    defaults = dict(
        tid=ThreadId(tid),
        func_name="f",
        created_at_us=0,
        start_us=0,
        end_us=100,
        work_us=50,
    )
    defaults.update(kw)
    return ThreadSummary(**defaults)


class TestSegments:
    def test_transitions_close_previous_segment(self):
        b = make_builder()
        tid = ThreadId(4)
        b.thread_condition(tid, SegmentKind.RUNNABLE, 0)
        b.thread_condition(tid, SegmentKind.RUNNING, 10, cpu=1)
        b.thread_condition(tid, SegmentKind.BLOCKED, 30)
        res = b.build(makespan_us=50, summaries={tid: summary(4)})
        kinds = [(s.kind, s.start_us, s.end_us) for s in res.segments[tid]]
        assert kinds == [
            (SegmentKind.RUNNABLE, 0, 10),
            (SegmentKind.RUNNING, 10, 30),
            (SegmentKind.BLOCKED, 30, 50),
        ]

    def test_zero_length_segments_dropped(self):
        b = make_builder()
        tid = ThreadId(4)
        b.thread_condition(tid, SegmentKind.RUNNABLE, 5)
        b.thread_condition(tid, SegmentKind.RUNNING, 5, cpu=0)
        b.thread_condition(tid, None, 20)
        res = b.build(makespan_us=20, summaries={tid: summary(4)})
        assert [s.kind for s in res.segments[tid]] == [SegmentKind.RUNNING]

    def test_cpu_busy_accounting(self):
        b = make_builder(cpus=2)
        t4, t5 = ThreadId(4), ThreadId(5)
        b.thread_condition(t4, SegmentKind.RUNNING, 0, cpu=0)
        b.thread_condition(t5, SegmentKind.RUNNING, 0, cpu=1)
        b.thread_condition(t4, None, 30)
        b.thread_condition(t5, None, 50)
        res = b.build(
            makespan_us=50, summaries={t4: summary(4), t5: summary(5)}
        )
        assert res.cpu_busy_us == [30, 50]
        assert res.total_cpu_time_us() == 80
        assert res.utilisation() == pytest.approx(0.8)

    def test_open_segments_closed_at_build(self):
        b = make_builder()
        tid = ThreadId(4)
        b.thread_condition(tid, SegmentKind.RUNNING, 0, cpu=0)
        res = b.build(makespan_us=42, summaries={tid: summary(4)})
        assert res.segments[tid][-1].end_us == 42

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            ThreadSegment(ThreadId(1), SegmentKind.RUNNING, 10, 5)


class TestEvents:
    def test_events_sorted_and_reindexed(self):
        b = make_builder()
        t4 = ThreadId(4)
        b.event_placed(
            tid=t4, primitive=Primitive.MUTEX_UNLOCK, start_us=50, end_us=52, cpu=0
        )
        b.event_placed(
            tid=t4, primitive=Primitive.MUTEX_LOCK, start_us=10, end_us=12, cpu=0
        )
        res = b.build(makespan_us=60, summaries={t4: summary(4)})
        assert [e.primitive for e in res.events] == [
            Primitive.MUTEX_LOCK,
            Primitive.MUTEX_UNLOCK,
        ]
        assert [e.index for e in res.events] == [0, 1]

    def test_events_for_filters_by_thread(self):
        b = make_builder()
        t4, t5 = ThreadId(4), ThreadId(5)
        b.event_placed(
            tid=t4, primitive=Primitive.SEMA_POST, start_us=1, end_us=2, cpu=0
        )
        b.event_placed(
            tid=t5, primitive=Primitive.SEMA_WAIT, start_us=3, end_us=4, cpu=1
        )
        res = b.build(
            makespan_us=10, summaries={t4: summary(4), t5: summary(5)}
        )
        assert [int(e.tid) for e in res.events_for(t4)] == [4]


class TestSummaries:
    def test_total_time(self):
        s = summary(4, start_us=10, end_us=110)
        assert s.total_us == 100

    def test_total_time_unknown_when_never_ran(self):
        s = summary(4, start_us=None, end_us=None)
        assert s.total_us is None

    def test_speedup_vs(self):
        b = make_builder()
        res = b.build(makespan_us=50, summaries={})
        assert res.speedup_vs(100) == 2.0
