"""Tests of live-program simulation: semantics, scheduling, accounting."""

import pytest

from repro import Program, SimConfig, ThreadPolicy, simulate_program
from repro.core.errors import DeadlockError, ProgramError, SimulationError
from repro.core.events import Primitive, Status
from repro.core.ids import ThreadId
from repro.core.result import SegmentKind
from repro.core.simulator import Simulator
from repro.program import ops as op
from repro.solaris import costs as costs_mod
from repro.solaris.dispatch import DispatchTable

FREE = costs_mod.free()


def run(main, *, cpus=1, lwps=None, costs=FREE, semaphores=None, **cfg):
    program = Program("t", main, semaphores=semaphores or {})
    config = SimConfig(cpus=cpus, lwps=lwps, costs=costs, **cfg)
    return simulate_program(program, config)


class TestBasicLifecycle:
    def test_empty_main(self):
        res = run(lambda ctx: iter(()))
        assert res.makespan_us == 0

    def test_single_compute(self):
        def main(ctx):
            yield op.Compute(1000)

        res = run(main)
        assert res.makespan_us == 1000

    def test_compute_folding(self):
        def main(ctx):
            yield op.Compute(300)
            yield op.Compute(700)

        assert run(main).makespan_us == 1000

    def test_main_thread_id_is_one(self):
        res = run(lambda ctx: iter(()))
        assert [int(t) for t in res.summaries] == [1]

    def test_child_tids_start_at_four(self):
        # Solaris numbering in the paper: main = 1, children 4, 5...
        created = []

        def child(ctx):
            yield op.Compute(10)

        def main(ctx):
            created.append((yield op.ThrCreate(child)))
            created.append((yield op.ThrCreate(child)))
            yield op.ThrJoin(created[0])
            yield op.ThrJoin(created[1])

        run(main)
        assert created == [4, 5]

    def test_thread_body_without_exit_gets_one(self):
        def main(ctx):
            yield op.Compute(5)

        res = run(main)
        exits = [e for e in res.events if e.primitive is Primitive.THR_EXIT]
        assert len(exits) == 1

    def test_explicit_exit_stops_body(self):
        def main(ctx):
            yield op.Compute(5)
            yield op.ThrExit()
            raise AssertionError("unreachable")

        res = run(main)
        assert res.makespan_us == 5

    def test_simulator_single_use(self):
        sim = Simulator(SimConfig())
        sim.run_program(Program("p", lambda ctx: iter(())))
        with pytest.raises(SimulationError):
            sim.run_program(Program("p", lambda ctx: iter(())))

    def test_yielding_non_op_rejected(self):
        def main(ctx):
            yield 42

        with pytest.raises(ProgramError):
            run(main)


class TestSharedState:
    def test_shared_dict_really_shared(self):
        def child(ctx):
            yield op.MutexLock("m")
            ctx.shared["v"] = ctx.shared.get("v", 0) + 1
            yield op.MutexUnlock("m")

        observed = []

        def main(ctx):
            tids = []
            for _ in range(3):
                tids.append((yield op.ThrCreate(child)))
            for t in tids:
                yield op.ThrJoin(t)
            observed.append(ctx.shared["v"])

        run(main)
        assert observed == [3]

    def test_ctx_args_passed(self):
        got = []

        def child(ctx):
            got.append(ctx.args)
            yield op.Compute(1)

        def main(ctx):
            t = yield op.ThrCreate(child, args=(7, "x"))
            yield op.ThrJoin(t)

        run(main)
        assert got == [(7, "x")]

    def test_rng_deterministic_per_thread(self):
        seen = []

        def child(ctx):
            seen.append(ctx.rng.random())
            yield op.Compute(1)

        def main(ctx):
            a = yield op.ThrCreate(child)
            yield op.ThrJoin(a)

        run(main)
        first = list(seen)
        seen.clear()
        run(main)
        assert seen == first


class TestJoin:
    def test_join_blocks_until_exit(self):
        def child(ctx):
            yield op.Compute(500)

        def main(ctx):
            t = yield op.ThrCreate(child)
            yield op.ThrJoin(t)
            yield op.Compute(100)

        res = run(main)
        assert res.makespan_us == 600

    def test_join_zombie_returns_immediately(self):
        def child(ctx):
            yield op.Compute(10)

        def main(ctx):
            t = yield op.ThrCreate(child)
            yield op.Compute(500)  # child exits long before
            yield op.ThrJoin(t)

        res = run(main, cpus=2)
        assert res.makespan_us == 500

    def test_join_returns_target_tid(self):
        got = []

        def child(ctx):
            yield op.Compute(10)

        def main(ctx):
            t = yield op.ThrCreate(child)
            got.append((yield op.ThrJoin(t)))

        run(main)
        assert got == [4]

    def test_wildcard_join_any_thread(self):
        got = []

        def child(ctx):
            yield op.Compute(10)

        def main(ctx):
            a = yield op.ThrCreate(child)
            b = yield op.ThrCreate(child)
            got.append((yield op.ThrJoin(None)))
            got.append((yield op.ThrJoin(None)))

        run(main)
        assert sorted(got) == [4, 5]

    def test_join_unknown_thread_rejected(self):
        def main(ctx):
            yield op.ThrJoin(99)

        with pytest.raises(SimulationError):
            run(main)

    def test_double_join_rejected(self):
        def child(ctx):
            yield op.Compute(10)

        def main(ctx):
            t = yield op.ThrCreate(child)
            yield op.ThrJoin(t)
            yield op.ThrJoin(t)

        with pytest.raises(SimulationError):
            run(main)

    def test_wildcard_join_with_nothing_to_join(self):
        def main(ctx):
            yield op.ThrJoin(None)

        with pytest.raises(DeadlockError):
            run(main)


class TestMutexSemantics:
    def test_serialisation_on_one_mutex(self):
        # two threads each hold the mutex 1000us: on 2 CPUs the critical
        # sections serialise
        def child(ctx):
            yield op.MutexLock("m")
            yield op.Compute(1000)
            yield op.MutexUnlock("m")

        def main(ctx):
            a = yield op.ThrCreate(child)
            b = yield op.ThrCreate(child)
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)

        res = run(main, cpus=2)
        assert res.makespan_us == 2000

    def test_trylock_results_delivered(self):
        got = []

        def holder(ctx):
            yield op.MutexLock("m")
            yield op.Compute(1000)
            yield op.MutexUnlock("m")

        def tryer(ctx):
            yield op.Compute(100)  # the holder owns m by now
            got.append((yield op.MutexTrylock("m")))
            yield op.Compute(2000)
            got.append((yield op.MutexTrylock("m")))
            yield op.MutexUnlock("m")

        def main(ctx):
            a = yield op.ThrCreate(holder)
            b = yield op.ThrCreate(tryer)
            yield op.ThrJoin(a)
            yield op.ThrJoin(b)

        run(main, cpus=2)
        assert got == [False, True]

    def test_trylock_status_in_events(self):
        def main(ctx):
            ok = yield op.MutexTrylock("m")
            assert ok
            yield op.MutexUnlock("m")

        res = run(main)
        ev = [e for e in res.events if e.primitive is Primitive.MUTEX_TRYLOCK][0]
        assert ev.status is Status.OK

    def test_unlock_not_held_is_error(self):
        def main(ctx):
            yield op.MutexUnlock("m")

        with pytest.raises(SimulationError):
            run(main)


class TestSemaphores:
    def test_program_level_initial_counts(self):
        def main(ctx):
            yield op.SemaWait("s")
            yield op.SemaWait("s")

        program = Program("t", main, semaphores={"s": 2})
        res = simulate_program(program, SimConfig(costs=FREE))
        assert res.makespan_us == 0

    def test_sema_init_op(self):
        def main(ctx):
            yield op.SemaInit("s", 1)
            yield op.SemaWait("s")

        run(main)  # does not deadlock

    def test_sema_blocking_handoff(self):
        def waiter(ctx):
            yield op.SemaWait("s")
            yield op.Compute(100)

        def main(ctx):
            t = yield op.ThrCreate(waiter)
            yield op.Compute(1000)
            yield op.SemaPost("s")
            yield op.ThrJoin(t)

        res = run(main, cpus=2)
        assert res.makespan_us == 1100

    def test_trywait_results(self):
        got = []

        def main(ctx):
            yield op.SemaInit("s", 1)
            got.append((yield op.SemaTryWait("s")))
            got.append((yield op.SemaTryWait("s")))

        run(main)
        assert got == [True, False]


class TestCondVars:
    def test_wait_signal(self):
        def waiter(ctx):
            yield op.MutexLock("m")
            while not ctx.shared.get("ready"):
                yield op.CondWait("c", "m")
            yield op.MutexUnlock("m")

        def main(ctx):
            t = yield op.ThrCreate(waiter)
            yield op.Compute(1000)
            yield op.MutexLock("m")
            ctx.shared["ready"] = True
            yield op.CondSignal("c")
            yield op.MutexUnlock("m")
            yield op.ThrJoin(t)

        res = run(main, cpus=2)
        assert res.makespan_us == 1000

    def test_live_timedwait_timeout(self):
        got = []

        def main(ctx):
            yield op.MutexLock("m")
            got.append((yield op.CondTimedWait("c", "m", timeout_us=500)))
            yield op.MutexUnlock("m")

        res = run(main)
        assert got == [False]
        assert res.makespan_us == 500
        ev = [e for e in res.events if e.primitive is Primitive.COND_TIMEDWAIT][0]
        assert ev.status is Status.TIMEOUT

    def test_live_timedwait_signalled_in_time(self):
        got = []

        def waiter(ctx):
            yield op.MutexLock("m")
            got.append((yield op.CondTimedWait("c", "m", timeout_us=10_000)))
            yield op.MutexUnlock("m")

        def main(ctx):
            t = yield op.ThrCreate(waiter)
            yield op.Compute(500)
            yield op.CondSignal("c")
            yield op.ThrJoin(t)

        res = run(main, cpus=2)
        assert got == [True]
        assert res.makespan_us == 500


class TestDeadlockDetection:
    def test_mutual_join_deadlock_reported(self):
        def main(ctx):
            yield op.MutexLock("m")
            yield op.MutexLock("n")
            yield op.CondWait("c", "n")  # nobody will ever signal

        with pytest.raises(DeadlockError) as ei:
            run(main)
        assert 1 in ei.value.blocked

    def test_sema_starvation_deadlock(self):
        def main(ctx):
            yield op.SemaWait("never")

        with pytest.raises(DeadlockError):
            run(main)
