"""Property-based tests over randomly generated programs.

Hypothesis drives :func:`repro.workloads.synthetic.random_program` through
the full pipeline and checks the invariants that must hold for *any*
well-formed program:

* machine limits — never more running threads than processors, never more
  on-LWP threads than LWPs;
* accounting — per-thread segments are non-overlapping and within the
  run, CPU busy time equals total running time, work is conserved between
  machines;
* pipeline — record → log → parse → compile → replay is lossless, and a
  uni-processor replay reproduces the monitored makespan;
* determinism — every stage is bit-stable for a fixed seed.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimConfig, compile_trace, predict
from repro.core.result import SegmentKind
from repro.program.uniexec import record_program, uniprocessor_config, unmonitored_run
from repro.recorder import logfile
from repro.visualizer.parallelism import ParallelismGraph
from repro.workloads.synthetic import random_program

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_programs = st.builds(
    random_program,
    seed=st.integers(min_value=0, max_value=10_000),
    nthreads=st.integers(min_value=1, max_value=5),
    steps=st.integers(min_value=1, max_value=8),
    n_mutexes=st.integers(min_value=1, max_value=4),
    n_semas=st.integers(min_value=1, max_value=3),
    use_barriers=st.booleans(),
)

_cpus = st.integers(min_value=1, max_value=6)


class TestMachineInvariants:
    @_SETTINGS
    @given(program=_programs, cpus=_cpus)
    def test_running_never_exceeds_cpus(self, program, cpus):
        res = unmonitored_run(program) if cpus == 1 else None
        from repro.program.mpexec import run_multiprocessor

        res = run_multiprocessor(program, SimConfig(cpus=cpus))
        graph = ParallelismGraph.from_result(res)
        assert graph.max_running() <= cpus

    @_SETTINGS
    @given(program=_programs, lwps=st.integers(min_value=1, max_value=3))
    def test_running_never_exceeds_lwps(self, program, lwps):
        from repro.program.mpexec import run_multiprocessor

        res = run_multiprocessor(program, SimConfig(cpus=8, lwps=lwps))
        graph = ParallelismGraph.from_result(res)
        assert graph.max_running() <= lwps

    @_SETTINGS
    @given(program=_programs, cpus=_cpus)
    def test_segments_sane_and_busy_time_consistent(self, program, cpus):
        from repro.program.mpexec import run_multiprocessor

        res = run_multiprocessor(program, SimConfig(cpus=cpus))
        running_total = 0
        for tid, segments in res.segments.items():
            prev_end = 0
            for seg in segments:
                assert 0 <= seg.start_us <= seg.end_us <= res.makespan_us
                assert seg.start_us >= prev_end
                prev_end = seg.end_us
                if seg.kind is SegmentKind.RUNNING:
                    running_total += seg.duration_us
                    assert seg.cpu is not None and 0 <= seg.cpu < cpus
        assert running_total == res.total_cpu_time_us()

    @_SETTINGS
    @given(program=_programs, cpus=_cpus)
    def test_events_well_formed(self, program, cpus):
        from repro.program.mpexec import run_multiprocessor

        res = run_multiprocessor(program, SimConfig(cpus=cpus))
        for ev in res.events:
            assert 0 <= ev.start_us <= ev.end_us <= res.makespan_us
            assert int(ev.tid) in {int(t) for t in res.summaries}


class TestWorkConservation:
    @_SETTINGS
    @given(program=_programs, cpus=st.integers(min_value=2, max_value=6))
    def test_more_cpus_never_slower_without_timeslice_effects(self, program, cpus):
        # not strictly guaranteed in general schedulers, but holds for the
        # deadlock-free fork/join programs the generator emits
        from repro.program.mpexec import run_multiprocessor

        uni = run_multiprocessor(program, uniprocessor_config())
        mp = run_multiprocessor(program, SimConfig(cpus=cpus))
        assert mp.makespan_us <= uni.makespan_us * 1.05

    @_SETTINGS
    @given(program=_programs, cpus=_cpus)
    def test_speedup_bounded_by_machine(self, program, cpus):
        from repro.program.mpexec import run_multiprocessor

        uni = run_multiprocessor(program, uniprocessor_config())
        mp = run_multiprocessor(program, SimConfig(cpus=cpus))
        assert uni.makespan_us / max(1, mp.makespan_us) <= cpus * 1.05


class TestPipelineInvariants:
    @_SETTINGS
    @given(program=_programs)
    def test_uniprocessor_replay_reproduces_monitored_run(self, program):
        # replay is not bit-identical (try-operation pinning and context
        # switch placement differ by a few ops), but must track the
        # monitored makespan closely: 5% plus a couple of hundred µs of
        # absolute slack for sub-millisecond programs
        run = record_program(program, overhead_us=0)
        replay = predict(run.trace, uniprocessor_config())
        assert replay.makespan_us == pytest.approx(
            run.monitored_makespan_us, rel=0.05, abs=200
        )

    @_SETTINGS
    @given(program=_programs, cpus=_cpus)
    def test_log_roundtrip_lossless_for_prediction(self, program, cpus):
        run = record_program(program)
        reparsed = logfile.loads(logfile.dumps(run.trace))
        a = predict(run.trace, SimConfig(cpus=cpus))
        b = predict(reparsed, SimConfig(cpus=cpus))
        assert a.makespan_us == b.makespan_us

    @_SETTINGS
    @given(program=_programs)
    def test_recording_deterministic(self, program):
        a = record_program(program)
        b = record_program(program)
        assert logfile.dumps(a.trace) == logfile.dumps(b.trace)

    @_SETTINGS
    @given(program=_programs, cpus=_cpus)
    def test_replay_deterministic(self, program, cpus):
        run = record_program(program)
        plan = compile_trace(run.trace)
        a = predict(run.trace, SimConfig(cpus=cpus), plan=plan)
        b = predict(run.trace, SimConfig(cpus=cpus), plan=plan)
        assert a.makespan_us == b.makespan_us
        assert [e.start_us for e in a.events] == [e.start_us for e in b.events]

    @_SETTINGS
    @given(program=_programs)
    def test_every_recorded_thread_replayed(self, program):
        run = record_program(program)
        plan = compile_trace(run.trace)
        res = predict(run.trace, SimConfig(cpus=4), plan=plan)
        assert {int(t) for t in res.summaries} == set(plan.steps)
