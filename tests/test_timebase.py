"""Unit tests for the integer-µs time base."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import timebase as tb


class TestConversions:
    def test_from_seconds(self):
        assert tb.from_seconds(1.5) == 1_500_000

    def test_from_seconds_rounds(self):
        assert tb.from_seconds(0.0000014) == 1
        assert tb.from_seconds(0.0000016) == 2

    def test_from_millis(self):
        assert tb.from_millis(20) == 20_000

    def test_to_seconds(self):
        assert tb.to_seconds(2_500_000) == 2.5

    def test_to_millis(self):
        assert tb.to_millis(1500) == 1.5

    @given(st.integers(min_value=0, max_value=10**12))
    def test_seconds_roundtrip(self, us):
        assert tb.from_seconds(tb.to_seconds(us)) == us


class TestFormat:
    def test_basic(self):
        assert tb.format_us(530_000) == "0.530000"

    def test_zero(self):
        assert tb.format_us(0) == "0.000000"

    def test_microsecond_resolution(self):
        # the paper's Recorder resolution is 1 µs
        assert tb.format_us(1) == "0.000001"

    def test_whole_seconds(self):
        assert tb.format_us(3_000_000) == "3.000000"

    def test_truncated_decimals(self):
        assert tb.format_us(123_456, decimals=2) == "0.12"

    def test_zero_decimals(self):
        assert tb.format_us(1_900_000, decimals=0) == "1"

    def test_negative(self):
        assert tb.format_us(-1_500_000) == "-1.500000"

    def test_bad_decimals_rejected(self):
        with pytest.raises(ValueError):
            tb.format_us(0, decimals=7)

    @given(st.integers(min_value=0, max_value=10**13))
    def test_format_parse_roundtrip(self, us):
        text = tb.format_us(us)
        whole, frac = text.split(".")
        assert int(whole) * tb.US_PER_SECOND + int(frac) == us


class TestValidation:
    def test_check_time_ok(self):
        assert tb.check_time(5) == 5

    def test_check_time_rejects_negative(self):
        with pytest.raises(ValueError):
            tb.check_time(-1)

    def test_check_time_rejects_float(self):
        with pytest.raises(TypeError):
            tb.check_time(1.5)

    def test_check_time_rejects_bool(self):
        with pytest.raises(TypeError):
            tb.check_time(True)

    def test_check_duration_alias(self):
        assert tb.check_duration(0) == 0
