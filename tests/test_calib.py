"""Calibration & validation subsystem tests.

Covers the tunable parameter space, cost-model construction validation,
the derivative-free fitter on analytic objectives, profile JSON
round-trips, error attribution on degenerate inputs, drift detection,
and the end-to-end calibrate → validate → perturb loop (library and
CLI).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.compare import attribute_error, format_attribution
from repro.calib import (
    CalibrationProfile,
    ObjectiveEvaluator,
    ParamSpace,
    WorkloadSpec,
    build_report,
    calibrate,
    cross_validate,
    default_space,
    detect_drift,
    format_error_table,
    format_validation,
    measure_suite,
    validate,
)
from repro.calib.fit import fit
from repro.calib.measure import measure_one
from repro.calib.objective import ErrorRow, mean_abs_error
from repro.cli import main
from repro.core.config import SimConfig
from repro.core.errors import CalibrationError, ConfigError
from repro.core.predictor import predict
from repro.core.result import SegmentKind
from repro.faultinject import perturb_profile
from repro.jobs import JobEngine
from repro.program.uniexec import record_program
from repro.solaris import costs as costs_mod
from repro.solaris.costs import CostModel, apply_params, default_params
from repro.workloads import get_workload


# ---------------------------------------------------------------------------
# parameter space
# ---------------------------------------------------------------------------


class TestParamSpace:
    def test_default_space_matches_tunables(self):
        space = default_space()
        assert set(space.names) == set(p.name for p in costs_mod.tunable_params())
        assert space.defaults() == [p.default for p in space.params]

    def test_dict_vector_roundtrip(self):
        space = default_space()
        params = default_params()
        assert space.to_dict(space.to_vector(params)) == params

    def test_clip_projects_into_box(self):
        space = default_space()
        lo_clip = space.clip([-1e9] * len(space))
        hi_clip = space.clip([1e9] * len(space))
        assert lo_clip == [p.lo for p in space.params]
        assert hi_clip == [p.hi for p in space.params]

    def test_nan_snaps_to_default(self):
        space = default_space()
        vec = space.clip([float("nan")] * len(space))
        assert vec == space.defaults()

    def test_wrong_length_vector_rejected(self):
        with pytest.raises(ConfigError, match="values for a space"):
            default_space().clip([1.0])

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown parameter"):
            default_space().to_vector({"warp_factor": 9.0})

    def test_subset(self):
        space = default_space().subset(["bound_sync_factor"])
        assert space.names == ["bound_sync_factor"]
        with pytest.raises(ConfigError, match="unknown parameter"):
            default_space().subset(["nope"])

    def test_empty_space_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            ParamSpace(())

    def test_integral_params_get_whole_steps(self):
        space = default_space()
        for p, step in zip(space.params, space.steps(0.0001)):
            if p.integral:
                assert step >= 1.0


# ---------------------------------------------------------------------------
# cost model construction validation (satellite)
# ---------------------------------------------------------------------------


class TestCostModelValidation:
    def test_defaults_are_valid(self):
        CostModel()  # must not raise

    def test_free_model_still_legal(self):
        # zero base costs are meaningful (exact-time tests rely on them)
        costs_mod.free()

    @pytest.mark.parametrize("field_name", ["bound_create_factor", "bound_sync_factor"])
    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_nonpositive_multiplier_rejected(self, field_name, value):
        with pytest.raises(ConfigError, match=field_name):
            CostModel(**{field_name: value})

    @pytest.mark.parametrize("field_name", ["thread_switch_us", "lwp_switch_us"])
    def test_negative_switch_cost_rejected(self, field_name):
        with pytest.raises(ConfigError, match=field_name):
            CostModel(**{field_name: -5})

    def test_negative_base_cost_rejected_and_located(self):
        base = dict(CostModel().base_costs)
        key = next(iter(base))
        base[key] = -1
        with pytest.raises(ConfigError, match=key.value):
            CostModel(base_costs=base)

    def test_apply_params_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="warp_factor"):
            apply_params({"warp_factor": 2.0})

    def test_apply_params_scales_and_rounds(self):
        fitted = apply_params(
            {"bound_sync_factor": 7.5, "thread_switch_us": 12.7}
        )
        assert fitted.bound_sync_factor == 7.5
        assert fitted.thread_switch_us == 13  # integral: rounded
        assert isinstance(fitted.thread_switch_us, int)

    def test_apply_params_preserves_unrelated_fields(self):
        base = CostModel(lwp_switch_us=77)
        fitted = apply_params({"bound_sync_factor": 3.0}, base=base)
        assert fitted.lwp_switch_us == 77


# ---------------------------------------------------------------------------
# fitter on analytic objectives (no simulations)
# ---------------------------------------------------------------------------


class _ToyEvaluator:
    """Duck-typed stand-in for ObjectiveEvaluator over a closed form."""

    def __init__(self, space, fn):
        self.space = space
        self.fn = fn
        self.calls = 0

    def vector_fn(self):
        def call(vec):
            self.calls += 1
            return self.fn(vec)

        return call


class TestFitter:
    def test_finds_separable_quadratic_minimum(self):
        space = default_space()
        target = [
            p.lo + 0.37 * (p.hi - p.lo) for p in space.params
        ]
        toy = _ToyEvaluator(
            space, lambda v: sum((a - b) ** 2 for a, b in zip(v, target))
        )
        result = fit(toy, max_evals=300)
        assert result.objective < toy.fn(space.defaults())
        for name, got, want in zip(
            space.names, space.to_vector(result.params), target
        ):
            span = dict(zip(space.names, [p.hi - p.lo for p in space.params]))
            # integral params quantise; others should land close
            assert abs(got - want) < 0.15 * span[name], name

    def test_never_worse_than_defaults(self):
        # objective minimised *at* the defaults: fit must return them
        space = default_space()
        defaults = space.defaults()
        toy = _ToyEvaluator(
            space, lambda v: sum((a - b) ** 2 for a, b in zip(v, defaults))
        )
        result = fit(toy, max_evals=60)
        assert result.objective == pytest.approx(0.0)
        assert result.baseline_objective == pytest.approx(0.0)
        assert not result.improved  # equal, not strictly better

    def test_budget_respected(self):
        space = default_space()
        toy = _ToyEvaluator(space, lambda v: sum(x * x for x in v))
        result = fit(toy, max_evals=25)
        assert toy.calls <= 25
        assert result.evaluations <= 25

    def test_tiny_budget_rejected(self):
        toy = _ToyEvaluator(default_space(), sum)
        with pytest.raises(CalibrationError, match="max_evals"):
            fit(toy, max_evals=2)

    def test_objective_trace_is_decreasing(self):
        space = default_space()
        toy = _ToyEvaluator(space, lambda v: sum(x * x for x in v))
        result = fit(toy, max_evals=80)
        values = [v for _, v in result.objective_trace]
        assert values == sorted(values, reverse=True)
        assert values[-1] == pytest.approx(result.objective)

    def test_deterministic(self):
        space = default_space()

        def fn(v):
            return sum(math.sin(x) + 0.01 * x * x for x in v)

        r1 = fit(_ToyEvaluator(space, fn), max_evals=70)
        r2 = fit(_ToyEvaluator(space, fn), max_evals=70)
        assert r1.params == r2.params
        assert r1.objective == r2.objective


# ---------------------------------------------------------------------------
# error attribution degenerate inputs (satellite)
# ---------------------------------------------------------------------------


class TestAttributeError:
    def _predicted(self, program, cpus):
        trace = record_program(program).trace
        return predict(trace, SimConfig(cpus=cpus))

    def test_identical_results_attribute_zero_everywhere(self):
        w = get_workload("synthetic")
        result = self._predicted(w.make_program(3, 0.2, seed=5), 2)
        attribution = attribute_error(result, result)
        assert attribution.makespan_delta_us == 0
        assert all(p.delta_us == 0 for p in attribution.phases)
        assert attribution.dominant() is None
        assert "makespan" in format_attribution(attribution)

    def test_single_thread_program(self):
        from repro.program import ops as op
        from repro.program.program import Program

        def main(ctx):
            yield op.Compute(10_000)

        program = Program("solo", main)
        result = self._predicted(program, 2)
        attribution = attribute_error(result, result)
        kinds = {p.kind: p for p in attribution.phases}
        assert set(kinds) == set(SegmentKind)
        assert kinds[SegmentKind.BLOCKED].real_us == 0

    def test_cpu_mismatch_raises(self):
        w = get_workload("synthetic")
        program = w.make_program(3, 0.2, seed=5)
        a = self._predicted(program, 2)
        b = self._predicted(program, 4)
        with pytest.raises(ValueError, match="different machines"):
            attribute_error(a, b)

    def test_measured_vs_predicted_attributes_real_gap(self):
        from repro.program.mpexec import run_multiprocessor

        w = get_workload("synthetic")
        config = SimConfig(cpus=2)
        real = run_multiprocessor(w.make_program(3, 0.2, seed=5), config)
        predicted = predict(
            record_program(w.make_program(3, 0.2, seed=5)).trace, config
        )
        attribution = attribute_error(real, predicted)
        # probe intrusion means the predicted timeline differs
        assert attribution.dominant() is not None


# ---------------------------------------------------------------------------
# profile round-trip + structural validation (satellite)
# ---------------------------------------------------------------------------


def _tiny_profile(**overrides) -> CalibrationProfile:
    fields = dict(
        params={"bound_sync_factor": 5.5, "sync_cost_scale": 0.9},
        objective=0.01,
        baseline_objective=0.03,
        error_table=(
            ErrorRow("synthetic", 2, 1.5, 1.48, 0.0133),
            ErrorRow("synthetic", 4, 2.8, 2.79, 0.0036),
        ),
        suite=(WorkloadSpec(name="synthetic", cpus=(2, 4)),),
        objective_trace=((1, 0.03), (7, 0.01)),
        evaluations=7,
    )
    fields.update(overrides)
    return CalibrationProfile(**fields)


class TestProfileRoundTrip:
    def test_json_roundtrip_preserves_everything(self):
        profile = _tiny_profile()
        restored = CalibrationProfile.from_json(profile.to_json())
        assert restored.params == profile.params
        assert restored.error_table == profile.error_table
        assert restored.suite == profile.suite
        assert restored.objective_trace == profile.objective_trace
        assert restored.objective == profile.objective
        assert restored.created == profile.created
        assert restored.machine == profile.machine

    def test_save_load(self, tmp_path):
        path = tmp_path / "deep" / "profile.json"
        _tiny_profile().save(path)
        restored = CalibrationProfile.load(path)
        assert restored.params == _tiny_profile().params

    def test_cost_model_applies_params(self):
        model = _tiny_profile().cost_model()
        assert model.bound_sync_factor == 5.5

    def test_apply_overrides_config_costs(self):
        config = _tiny_profile().apply(SimConfig(cpus=4))
        assert config.cpus == 4
        assert config.costs.bound_sync_factor == 5.5

    def test_wrong_format_rejected(self):
        with pytest.raises(CalibrationError, match="not a calibration profile"):
            CalibrationProfile.from_json(json.dumps({"format": "something"}))

    def test_wrong_version_rejected(self):
        doc = json.loads(_tiny_profile().to_json())
        doc["version"] = 999
        with pytest.raises(CalibrationError, match="version"):
            CalibrationProfile.from_dict(doc)

    def test_garbage_rejected(self):
        with pytest.raises(CalibrationError, match="JSON"):
            CalibrationProfile.from_json("{nope")
        with pytest.raises(CalibrationError):
            CalibrationProfile.from_json("[1, 2, 3]")

    def test_empty_params_rejected(self):
        with pytest.raises(CalibrationError, match="parameters"):
            _tiny_profile(params={})

    def test_machine_fingerprint_recorded(self):
        profile = _tiny_profile()
        assert profile.machine["python"]
        assert profile.machine_mismatches() == []
        moved = _tiny_profile(machine={"python": "0.9", "platform": "ENIAC"})
        assert moved.machine_mismatches()

    def test_unknown_profile_param_fails_at_apply(self):
        profile = _tiny_profile(params={"warp_factor": 2.0})
        with pytest.raises(ConfigError, match="warp_factor"):
            profile.cost_model()


class TestPerturbProfile:
    def test_changes_at_least_one_param_only(self):
        text = _tiny_profile().to_json()
        perturbed = json.loads(perturb_profile(text, seed=0))
        original = json.loads(text)
        assert perturbed["params"] != original["params"]
        assert perturbed["error_table"] == original["error_table"]
        assert perturbed["suite"] == original["suite"]

    def test_deterministic_per_seed(self):
        text = _tiny_profile().to_json()
        assert perturb_profile(text, seed=3) == perturb_profile(text, seed=3)

    def test_rejects_non_profiles(self):
        with pytest.raises(ValueError, match="not a calibration profile"):
            perturb_profile("{}")
        with pytest.raises(ValueError):
            perturb_profile("not json at all")


# ---------------------------------------------------------------------------
# drift detection
# ---------------------------------------------------------------------------


class TestDriftDetection:
    def test_identical_tables_no_drift(self):
        rows = [ErrorRow("w", 2, 1.5, 1.48, 0.0133)]
        assert detect_drift(rows, rows) == []

    def test_moved_error_detected(self):
        recorded = [ErrorRow("w", 2, 1.5, 1.48, 0.0133)]
        fresh = [ErrorRow("w", 2, 1.5, 1.40, 0.0667)]
        drift = detect_drift(recorded, fresh)
        assert len(drift) == 1
        assert drift[0].drift == pytest.approx(0.0534)
        assert "w@2cpu" in drift[0].describe()

    def test_missing_and_extra_cells_detected(self):
        recorded = [ErrorRow("w", 2, 1.5, 1.48, 0.0133)]
        fresh = [ErrorRow("w", 4, 2.0, 1.9, 0.05)]
        drift = detect_drift(recorded, fresh)
        assert len(drift) == 2
        assert all(d.drift == float("inf") for d in drift)

    def test_tolerance_absorbs_rounding(self):
        recorded = [ErrorRow("w", 2, 1.5, 1.48, 0.013333)]
        fresh = [ErrorRow("w", 2, 1.5, 1.48, 0.013334)]
        assert detect_drift(recorded, fresh) == []


# ---------------------------------------------------------------------------
# seed reproducibility (satellite: seeded record)
# ---------------------------------------------------------------------------


class TestSeedReproducibility:
    def test_same_seed_same_trace_fingerprint(self):
        w = get_workload("synthetic")
        t1 = record_program(w.make_program(4, 0.3, seed=11)).trace
        t2 = record_program(w.make_program(4, 0.3, seed=11)).trace
        assert t1.fingerprint() == t2.fingerprint()

    def test_different_seed_different_trace(self):
        w = get_workload("synthetic")
        t1 = record_program(w.make_program(4, 0.3, seed=11)).trace
        t2 = record_program(w.make_program(4, 0.3, seed=12)).trace
        assert t1.fingerprint() != t2.fingerprint()

    def test_record_cli_seed_reproducible(self, tmp_path):
        a, b = tmp_path / "a.log", tmp_path / "b.log"
        assert main(["record", "synthetic", "-p", "3", "-s", "0.3",
                     "--seed", "7", "-o", str(a)]) == 0
        assert main(["record", "synthetic", "-p", "3", "-s", "0.3",
                     "--seed", "7", "-o", str(b)]) == 0
        assert a.read_text() == b.read_text()


# ---------------------------------------------------------------------------
# measurement + objective
# ---------------------------------------------------------------------------


SMALL_SPEC = WorkloadSpec(
    name="synthetic", threads=3, scale=0.3, seed=11, cpus=(2,), runs=2
)


class TestMeasureAndObjective:
    def test_measure_is_deterministic(self):
        m1 = measure_one(SMALL_SPEC)
        m2 = measure_one(SMALL_SPEC)
        assert m1.trace.fingerprint() == m2.trace.fingerprint()
        assert m1.measurements == m2.measurements

    def test_duplicate_suite_rejected(self):
        with pytest.raises(CalibrationError, match="duplicate"):
            measure_suite([SMALL_SPEC, SMALL_SPEC])

    def test_empty_suite_rejected(self):
        with pytest.raises(CalibrationError, match="empty"):
            measure_suite([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            measure_suite([WorkloadSpec(name="nonesuch")])

    def test_error_table_shape_and_score(self):
        measured = measure_suite([SMALL_SPEC])
        evaluator = ObjectiveEvaluator(measured, engine=JobEngine(mode="inline"))
        rows = evaluator.error_table(default_params())
        assert [(r.workload, r.cpus) for r in rows] == [("synthetic", 2)]
        assert evaluator.score(default_params()) >= 0
        assert mean_abs_error(rows) == pytest.approx(
            sum(r.abs_error for r in rows) / len(rows)
        )
        assert "synthetic" in format_error_table(rows)

    def test_restricted_unknown_workload(self):
        measured = measure_suite([SMALL_SPEC])
        evaluator = ObjectiveEvaluator(measured, engine=JobEngine(mode="inline"))
        with pytest.raises(CalibrationError, match="unknown workload"):
            evaluator.restricted(["nonesuch"])

    def test_cross_validation_needs_two_workloads(self):
        measured = measure_suite([SMALL_SPEC])
        evaluator = ObjectiveEvaluator(measured, engine=JobEngine(mode="inline"))
        with pytest.raises(CalibrationError, match=">= 2 workloads"):
            cross_validate(evaluator)


# ---------------------------------------------------------------------------
# end-to-end: calibrate -> validate -> perturb (library level)
# ---------------------------------------------------------------------------


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def fitted(self):
        specs = [
            WorkloadSpec(name="synthetic", threads=3, scale=0.3, seed=11,
                         cpus=(2, 4), runs=2),
            WorkloadSpec(name="prodcons", threads=3, scale=0.03, seed=11,
                         cpus=(2, 4), runs=2),
        ]
        with JobEngine(mode="inline") as engine:
            profile = calibrate(specs, engine=engine, max_evals=30)
        return specs, profile

    def test_fit_not_worse_than_defaults(self, fitted):
        _, profile = fitted
        assert profile.objective <= profile.baseline_objective

    def test_profile_records_suite_and_evidence(self, fitted):
        specs, profile = fitted
        assert tuple(profile.suite) == tuple(specs)
        assert len(profile.error_table) == 4
        assert profile.evaluations > 0
        assert profile.objective_trace

    def test_validate_roundtripped_profile_is_clean(self, fitted):
        _, profile = fitted
        restored = CalibrationProfile.from_json(profile.to_json())
        with JobEngine(mode="inline") as engine:
            report = validate(restored, engine=engine, budget=1.0)
        assert report.exit_code == 0
        assert report.verdict == "ok"
        assert not report.drift
        assert "verdict: ok" in format_validation(report)

    def test_perturbed_profile_flagged(self, fitted):
        _, profile = fitted
        bad = CalibrationProfile.from_json(
            perturb_profile(profile.to_json(), seed=2)
        )
        with JobEngine(mode="inline") as engine:
            report = validate(bad, engine=engine, budget=1.0)
        assert report.exit_code == 1  # drift (budget disabled at 1.0)
        assert report.drift

    def test_over_budget_exits_two(self, fitted):
        _, profile = fitted
        with JobEngine(mode="inline") as engine:
            report = validate(profile, engine=engine, budget=1e-9)
        assert report.exit_code == 2
        assert report.verdict == "over-budget"
        assert report.over_budget


# ---------------------------------------------------------------------------
# end-to-end via the CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_calibrate_validate_perturb(self, tmp_path, capsys):
        profile_path = tmp_path / "p.json"
        rc = main([
            "calibrate", "-o", str(profile_path),
            "--workload", "synthetic:3:0.3", "--seed", "11",
            "--cpus", "2", "--runs", "2", "--max-evals", "12",
            "--no-cache", "--no-cv", "--quiet",
        ])
        assert rc == 0
        assert profile_path.exists()
        out = capsys.readouterr().out
        assert "wrote" in out and "mean |error|" in out

        rc = main([
            "validate", "--profile", str(profile_path),
            "--no-cache", "--quiet", "--budget", "1.0",
            "-o", str(tmp_path / "report.json"),
        ])
        assert rc == 0
        artifact = json.loads((tmp_path / "report.json").read_text())
        assert artifact["verdict"] == "ok"
        assert artifact["error_table"]

        bad_path = tmp_path / "bad.json"
        bad_path.write_text(
            perturb_profile(profile_path.read_text(), seed=1)
        )
        rc = main([
            "validate", "--profile", str(bad_path),
            "--no-cache", "--quiet", "--budget", "1.0",
        ])
        assert rc == 1

    def test_validate_missing_profile_is_usage_error(self, tmp_path, capsys):
        rc = main(["validate", "--profile", str(tmp_path / "none.json")])
        assert rc == 2
        assert "cannot read profile" in capsys.readouterr().err

    def test_validate_json_format(self, tmp_path, capsys):
        profile_path = tmp_path / "p.json"
        _tiny_profile(
            suite=(WorkloadSpec(name="synthetic", threads=3, scale=0.3,
                                seed=11, cpus=(2,), runs=2),),
        ).save(profile_path)
        rc = main([
            "validate", "--profile", str(profile_path),
            "--no-cache", "--quiet", "--budget", "1.0", "--format", "json",
        ])
        out = capsys.readouterr().out
        document = json.loads(out)
        assert document["exit_code"] == rc

    def test_predict_under_profile_changes_costs(self, tmp_path, capsys):
        log = tmp_path / "run.log"
        assert main(["record", "synthetic", "-p", "3", "-s", "0.3",
                     "--seed", "11", "-o", str(log)]) == 0
        capsys.readouterr()
        assert main(["predict", str(log), "--cpus", "2"]) == 0
        plain = capsys.readouterr().out
        profile_path = tmp_path / "p.json"
        _tiny_profile(params={"sync_cost_scale": 10.0}).save(profile_path)
        assert main(["predict", str(log), "--cpus", "2",
                     "--profile", str(profile_path)]) == 0
        scaled = capsys.readouterr().out
        assert plain != scaled

    def test_bad_profile_on_predict_exits_two(self, tmp_path, capsys):
        log = tmp_path / "run.log"
        assert main(["record", "synthetic", "-p", "3", "-s", "0.3",
                     "--seed", "11", "-o", str(log)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        rc = main(["predict", str(log), "--cpus", "2", "--profile", str(bad)])
        assert rc == 2
        assert "not a calibration profile" in capsys.readouterr().err
