"""``vppb`` command-line interface.

Mirrors the fig. 1 workflow for the bundled workloads and for log files
on disk:

* ``vppb record <workload> -p 8 -o run.log`` — monitored uni-processor
  execution of a bundled workload, written as a log file;
* ``vppb predict run.log --cpus 8 [--lwps N] [--comm-delay US]`` —
  simulate the traced program on a configured machine and print the
  predicted speed-up;
* ``vppb visualize run.log --cpus 8 -o run.svg`` — render the predicted
  execution's parallelism and flow graphs (SVG, or ASCII to stdout);
* ``vppb report run.log --cpus 2,4,8`` — a speed-up sweep plus the
  bottleneck table;
* ``vppb stats run.log --cpus 8`` — the per-thread time decomposition of
  the predicted execution;
* ``vppb knee run.log`` — the smallest machine reaching 80 % of the
  trace's achievable speed-up;
* ``vppb compare before.log after.log --cpus 8`` — the §5 tuning loop's
  "inspect the performance change" step;
* ``vppb whatif run.log --shard-lock buffer:16 --scale-cs buffer:0.5`` —
  preview a tuning hypothesis by transforming the trace itself;
* ``vppb doctor run.log`` — validate a (possibly damaged) log, salvage
  what can be salvaged, dry-run the replay under a watchdog, and print
  a diagnosis instead of a traceback;
* ``vppb lint run.log --format sarif`` — static synchronisation analysis
  of the recorded trace (races, lock-order inversions, cond misuse);
  exits 1 when findings reach the ``--fail-on`` severity;
* ``vppb batch sweep.json`` — run a scenario-grid manifest through the
  batch job engine (worker pool + content-addressed result cache);
* ``vppb serve`` — long-lived local prediction service over HTTP
  (trace uploads, prediction requests, ``/metrics``);
* ``vppb calibrate -o profiles/default.json`` — fit the §3.2 cost
  parameters to measured runs of the calibration suite and write the
  profile artifact;
* ``vppb validate --profile profiles/default.json`` — re-measure the
  profile's own suite and gate on the §4 error budget (exit 0 ok,
  1 drift, 2 over budget);
* ``vppb workloads`` — list the bundled programs.

The prediction commands (``predict``, ``report``, ``stats``, ``knee``,
``visualize``, ``whatif``) all accept ``--profile PATH`` to run under a
fitted cost model instead of the built-in defaults.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.metrics import contention_by_object
from repro.core.config import SimConfig
from repro.core.predictor import compile_trace, predict, predict_speedup
from repro.core.timebase import to_seconds
from repro.recorder import logfile
from repro.visualizer.ascii_render import render_ascii
from repro.visualizer.svg_render import save_svg

__all__ = ["main", "build_parser"]


def _parse_cpus(text: str) -> List[int]:
    try:
        counts = [int(part) for part in text.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad CPU list {text!r}")
    if not counts or any(n < 1 for n in counts):
        raise argparse.ArgumentTypeError(f"bad CPU list {text!r}")
    return counts


def _config_from(args: argparse.Namespace, cpus: int) -> SimConfig:
    config = SimConfig(
        cpus=cpus,
        lwps=args.lwps,
        comm_delay_us=args.comm_delay,
    )
    profile_path = getattr(args, "profile", None)
    if profile_path:
        from repro.calib import CalibrationProfile

        config = CalibrationProfile.load(profile_path).apply(config)
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vppb",
        description="VPPB reproduction: record, predict and visualize "
        "multithreaded program behaviour (Broberg/Lundberg/Grahn, IPPS'98)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_rec = sub.add_parser("record", help="monitored uni-processor run of a workload")
    p_rec.add_argument("workload", help="bundled workload name (see 'vppb workloads')")
    p_rec.add_argument("-p", "--threads", type=int, default=4, help="worker threads")
    p_rec.add_argument("-s", "--scale", type=float, default=0.1, help="problem scale")
    p_rec.add_argument("-o", "--output", required=True, help="log file to write")
    p_rec.add_argument(
        "--overhead", type=int, default=None, help="probe overhead per record (µs)"
    )
    p_rec.add_argument(
        "--seed", type=int, default=None,
        help="pin the program's RNG streams so the recorded trace is "
        "bit-reproducible (calibration inputs need this)",
    )

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("log", help="log file from 'vppb record'")
    common.add_argument("--lwps", type=int, default=None, help="LWP pool size")
    common.add_argument(
        "--comm-delay", type=int, default=0, help="inter-CPU wake delay (µs)"
    )
    common.add_argument(
        "--profile", default=None, metavar="PATH",
        help="run under the fitted cost model from this calibration "
        "profile (see 'vppb calibrate')",
    )

    p_pred = sub.add_parser("predict", parents=[common], help="predict speed-up")
    p_pred.add_argument("--cpus", type=_parse_cpus, default=[2, 4, 8])

    p_vis = sub.add_parser("visualize", parents=[common], help="render the graphs")
    p_vis.add_argument("--cpus", type=int, default=4)
    p_vis.add_argument("-o", "--output", default=None, help="SVG path (else ASCII)")
    p_vis.add_argument("--width", type=int, default=1000)
    p_vis.add_argument("--compress", action="store_true", help="hide idle threads")
    p_vis.add_argument(
        "--chrome",
        action="store_true",
        help="write Trace Event JSON (chrome://tracing) instead of SVG",
    )
    p_vis.add_argument(
        "--html",
        action="store_true",
        help="write a standalone HTML report instead of SVG",
    )
    p_vis.add_argument(
        "--lint",
        action="store_true",
        help="overlay lint findings on the HTML report (implies --html)",
    )

    p_rep = sub.add_parser("report", parents=[common], help="sweep + bottlenecks")
    p_rep.add_argument("--cpus", type=_parse_cpus, default=[2, 4, 8])
    p_rep.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run the sweep on N worker processes (0 = in-process)",
    )
    p_rep.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )

    p_batch = sub.add_parser(
        "batch", help="run a sweep manifest through the batch job engine"
    )
    p_batch.add_argument("manifest", help="sweep manifest (JSON; see docs/service.md)")
    p_batch.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: up to 8, one per CPU)",
    )
    p_batch.add_argument(
        "--inline", action="store_true",
        help="run jobs in-process instead of on a worker pool",
    )
    p_batch.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $VPPB_CACHE_DIR or ~/.cache/vppb)",
    )
    p_batch.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor persist cached results",
    )
    p_batch.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="report format (default: table)",
    )
    p_batch.add_argument(
        "-o", "--output", default=None, help="write the report here (else stdout)"
    )
    p_batch.add_argument(
        "--tier", choices=("sim", "analytic", "auto"), default="sim",
        help="prediction tier: sim replays every cell; analytic answers "
        "from calibrated closed-form intervals; auto screens analytically "
        "and replays only the cells the intervals cannot decide "
        "(default: sim)",
    )
    p_batch.add_argument(
        "--analytic-profile", default=None, metavar="PATH",
        help="analytic calibration profile for --tier analytic/auto "
        "(default: $VPPB_ANALYTIC_PROFILE or profiles/analytic.json)",
    )
    p_batch.add_argument(
        "--target", type=float, default=None, metavar="FRAC",
        help="knee target as a fraction of each group's best speed-up "
        "(default: 0.8)",
    )

    p_srv = sub.add_parser(
        "serve", help="long-lived local prediction service (HTTP)"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8123)
    p_srv.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: up to 8, one per CPU)",
    )
    p_srv.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $VPPB_CACHE_DIR or ~/.cache/vppb)",
    )
    p_srv.add_argument(
        "--spool-dir", default=None, metavar="DIR",
        help="where uploaded traces are spooled (default: a temp dir)",
    )
    p_srv.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )
    p_srv.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="admission watermark: concurrent /predict requests before "
        "shedding 429s (default: 8)",
    )
    p_srv.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline; expiry returns 504 with any "
        "partial result (default: none)",
    )
    p_srv.add_argument(
        "--max-body-mb", type=float, default=None, metavar="MB",
        help="request-body cap in MiB; larger uploads get 413 "
        "(default: $VPPB_MAX_BODY_BYTES or 64 MiB)",
    )
    p_srv.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="graceful-shutdown budget for in-flight requests (default: 10)",
    )
    p_srv.add_argument(
        "--legacy", action="store_true",
        help="serve with the threaded http.server front end instead of "
        "the asyncio one (no admission control or deadlines)",
    )

    p_client = sub.add_parser(
        "client", help="call a running vppb serve instance (with retries)"
    )
    p_client.add_argument(
        "action", choices=("predict", "upload", "metrics", "ready"),
        help="predict: upload a log and predict speed-ups; upload: spool a "
        "log; metrics: dump /metrics; ready: readiness probe",
    )
    p_client.add_argument(
        "log", nargs="?", default=None,
        help="trace log file (predict/upload)",
    )
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=8123)
    p_client.add_argument(
        "--cpus", default="2,4,8", metavar="N,N,...",
        help="CPU counts to predict (default: 2,4,8)",
    )
    p_client.add_argument(
        "--binding", choices=("unbound", "bound"), default="unbound"
    )
    p_client.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request deadline; a 504 still prints any partial result",
    )
    p_client.add_argument(
        "--stream", action="store_true",
        help="upload with chunked transfer encoding (streaming salvage)",
    )
    p_client.add_argument(
        "--attempts", type=int, default=4,
        help="max tries per request incl. backoff retries (default: 4)",
    )
    p_client.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-attempt socket timeout (default: 60)",
    )

    p_stats = sub.add_parser(
        "stats", parents=[common], help="per-thread time decomposition"
    )
    p_stats.add_argument("--cpus", type=int, default=4)
    p_stats.add_argument(
        "--top", type=int, default=None, help="show only the N worst-utilised"
    )
    p_stats.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="text: simulated per-thread decomposition; json: the raw "
        "TraceStats profile the analytic tier screens from (default: text)",
    )

    p_knee = sub.add_parser(
        "knee", parents=[common], help="smallest machine near the speed-up bound"
    )
    p_knee.add_argument(
        "--target", type=float, default=0.8, help="fraction of the bound to reach"
    )
    p_knee.add_argument("--max-cpus", type=int, default=32)

    p_what = sub.add_parser(
        "whatif", parents=[common], help="preview tuning hypotheses on the trace"
    )
    p_what.add_argument("--cpus", type=int, default=8)
    p_what.add_argument(
        "--scale-compute", type=float, default=None, metavar="F",
        help="scale every CPU burst by F",
    )
    p_what.add_argument(
        "--scale-io", type=float, default=None, metavar="F",
        help="scale every recorded I/O wait by F",
    )
    p_what.add_argument(
        "--scale-cs", default=None, metavar="LOCK:F",
        help="scale the work held under LOCK by F",
    )
    p_what.add_argument(
        "--shard-lock", default=None, metavar="LOCK:N",
        help="split LOCK into N round-robin shards",
    )
    p_what.add_argument(
        "--scheduler", default=None, metavar="NAME[,NAME...]",
        help="cross-OS what-if: predict the trace under these kernel "
        "scheduler backends (e.g. solaris,clutch,cfs) and compare "
        "speed-ups; cannot be combined with trace transformations",
    )

    p_cmp = sub.add_parser(
        "compare", help="diff two logs' predicted executions (before/after)"
    )
    p_cmp.add_argument("before", help="log file before the change")
    p_cmp.add_argument("after", help="log file after the change")
    p_cmp.add_argument("--cpus", type=int, default=8)
    p_cmp.add_argument("--lwps", type=int, default=None)
    p_cmp.add_argument("--comm-delay", type=int, default=0)

    p_doc = sub.add_parser(
        "doctor", help="diagnose a damaged log: validate, salvage, dry-run"
    )
    p_doc.add_argument("log", help="log file to examine")
    p_doc.add_argument("--cpus", type=int, default=4, help="CPUs for the dry-run")
    p_doc.add_argument(
        "--no-replay", action="store_true", help="skip the replay dry-run"
    )
    p_doc.add_argument(
        "--max-events", type=int, default=5_000_000,
        help="watchdog event budget for the dry-run",
    )
    p_doc.add_argument(
        "--max-wall", type=float, default=30.0,
        help="watchdog wall-clock budget in seconds for the dry-run",
    )
    p_doc.add_argument(
        "--repairs", type=int, default=10, metavar="N",
        help="show at most N individual repairs (0 = none)",
    )

    p_lint = sub.add_parser(
        "lint", help="static synchronisation analysis of a recorded trace"
    )
    p_lint.add_argument("log", help="log file from 'vppb record'")
    p_lint.add_argument(
        "--select", action="append", default=None, metavar="RULE",
        help="run only these rule ids (repeatable; accepts R001 or VPPB-R001)",
    )
    p_lint.add_argument(
        "--ignore", action="append", default=None, metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    p_lint.add_argument(
        "--fail-on", default="error", metavar="SEVERITY",
        help="exit 1 when any finding reaches this severity "
        "(note|warning|error|never; default: error)",
    )
    p_lint.add_argument(
        "-o", "--output", default=None, help="write the report here (else stdout)"
    )
    p_lint.add_argument(
        "--no-explain", action="store_true",
        help="omit the per-rule rationale lines from the text report",
    )
    p_lint.add_argument(
        "--strict-parse", action="store_true",
        help="fail on a damaged log instead of salvaging and linting "
        "what remains",
    )
    p_lint.add_argument(
        "--whatif", default=None, metavar="MANIFEST",
        help="predictive grid: probe every race/deadlock finding across "
        "the machine configs of this sweep manifest (JSON; 'trace' "
        "defaults to the linted log) and tag each finding with the "
        "configs under which it manifests",
    )
    p_lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings whose fingerprints appear in FILE (a "
        "previous json/sarif report, or one fingerprint per line); "
        "exit 0 if only baselined findings remain",
    )
    p_lint.add_argument(
        "--replay-witness", default=None, metavar="DIGEST",
        help="replay the witness schedule with this digest (prefix ok) "
        "and report whether it exhibits the claimed hazard "
        "(exit 0 yes / 1 no)",
    )
    p_lint.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes for the --whatif grid (0 = inline)",
    )
    p_lint.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory for --whatif probes "
        "(default: the standard vppb cache)",
    )
    p_lint.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache for --whatif probes",
    )

    p_cal = sub.add_parser(
        "calibrate",
        help="fit the cost model to measured runs, write a profile",
    )
    p_cal.add_argument(
        "-o", "--output", default="profiles/default.json", metavar="PATH",
        help="where to write the profile (default: profiles/default.json)",
    )
    p_cal.add_argument(
        "--workload", action="append", default=None, metavar="NAME[:THREADS[:SCALE]]",
        help="add a workload to the suite (repeatable; default: the "
        "stock synthetic+prodcons suite)",
    )
    p_cal.add_argument(
        "--cpus", type=_parse_cpus, default=[2, 4, 8],
        help="machine sizes to measure and fit against (default: 2,4,8)",
    )
    p_cal.add_argument(
        "--seed", type=int, default=None,
        help="program seed for the suite's measured runs",
    )
    p_cal.add_argument(
        "--runs", type=int, default=5,
        help="ground-truth runs per cell, median reported (default: 5)",
    )
    p_cal.add_argument(
        "--max-evals", type=int, default=80,
        help="objective evaluation budget for the fit (default: 80)",
    )
    p_cal.add_argument(
        "--cv-folds", type=int, default=0, metavar="K",
        help="k-fold cross-validation across workloads "
        "(0 = leave-one-out, the default)",
    )
    p_cal.add_argument(
        "--no-cv", action="store_true", help="skip cross-validation"
    )
    p_cal.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="fit on N worker processes (0 = in-process)",
    )
    p_cal.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $VPPB_CACHE_DIR or ~/.cache/vppb)",
    )
    p_cal.add_argument(
        "--no-cache", action="store_true",
        help="keep the result cache in memory only (no disk reads/writes)",
    )
    p_cal.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )

    p_val = sub.add_parser(
        "validate",
        help="re-measure a profile's suite and gate on the error budget",
    )
    p_val.add_argument(
        "--profile", required=True, metavar="PATH",
        help="calibration profile to validate (from 'vppb calibrate')",
    )
    p_val.add_argument(
        "--budget", type=float, default=None, metavar="FRAC",
        help="per-cell |error| budget (default: 0.062, the paper's "
        "worst Table 1 cell)",
    )
    p_val.add_argument(
        "--drift-tolerance", type=float, default=None, metavar="FRAC",
        help="allowed |fresh - recorded| error before a cell counts as drift",
    )
    p_val.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="report format (default: table)",
    )
    p_val.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="also write the JSON report here (the CI artifact)",
    )
    p_val.add_argument(
        "--attribute", action="store_true",
        help="break the worst cell's gap down by thread phase "
        "(running/runnable/blocked/sleeping)",
    )
    p_val.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="validate on N worker processes (0 = in-process)",
    )
    p_val.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $VPPB_CACHE_DIR or ~/.cache/vppb)",
    )
    p_val.add_argument(
        "--no-cache", action="store_true",
        help="keep the result cache in memory only (no disk reads/writes)",
    )
    p_val.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )

    p_aca = sub.add_parser(
        "calibrate-analytic",
        help="fit the analytic tier's interval margins against the DES",
    )
    p_aca.add_argument(
        "-o", "--output", default="profiles/analytic.json", metavar="PATH",
        help="where to write the profile (default: profiles/analytic.json)",
    )
    p_aca.add_argument(
        "--cpus", type=_parse_cpus, default=[1, 2, 4, 8],
        help="CPU counts in the calibration grid (default: 1,2,4,8)",
    )
    p_aca.add_argument(
        "--pad", type=float, default=None, metavar="FRAC",
        help="safety pad beyond the observed model-error range; wider "
        "brackets mean fewer bound violations off-suite but more "
        "escalations (default: 0.02)",
    )
    p_aca.add_argument(
        "--verify", metavar="PATH", default=None,
        help="instead of fitting, re-check that PATH's intervals bracket "
        "the DES on its own suite (exit 1 on violations)",
    )
    p_aca.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="simulate ground truth on N worker processes (0 = in-process)",
    )
    p_aca.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $VPPB_CACHE_DIR or ~/.cache/vppb)",
    )
    p_aca.add_argument(
        "--no-cache", action="store_true",
        help="keep the result cache in memory only (no disk reads/writes)",
    )
    p_aca.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )

    sub.add_parser("workloads", help="list bundled workloads")
    return parser


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.program.uniexec import record_program
    from repro.recorder.recorder import DEFAULT_PROBE_OVERHEAD_US
    from repro.workloads import get_workload

    try:
        workload = get_workload(args.workload)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    program = workload.make_program(args.threads, args.scale, seed=args.seed)
    overhead = (
        DEFAULT_PROBE_OVERHEAD_US if args.overhead is None else args.overhead
    )
    run = record_program(program, overhead_us=overhead)
    size = logfile.dump(run.trace, args.output)
    stats = run.trace.stats(serialized_bytes=size)
    print(
        f"recorded {program.name}: {stats.n_events} events, "
        f"{stats.n_threads} threads, {to_seconds(stats.duration_us):.3f}s "
        f"monitored, {size} bytes -> {args.output}"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    trace = logfile.load(args.log)
    plan = compile_trace(trace)
    print(f"{trace.meta.program}: {len(trace)} events, "
          f"{len(trace.thread_ids())} threads")
    for cpus in args.cpus:
        pred = predict_speedup(
            trace, cpus, base_config=_config_from(args, cpus), plan=plan
        )
        print(
            f"  {cpus:>2} CPUs: predicted speed-up {pred.speedup:.2f} "
            f"({to_seconds(pred.makespan_us):.3f}s vs "
            f"{to_seconds(pred.uniprocessor_us):.3f}s on one)"
        )
    return 0


def _cmd_visualize(args: argparse.Namespace) -> int:
    trace = logfile.load(args.log)
    # --lint exists for traces whose replay may deadlock (lock-order
    # inversions manifest under more CPUs): degrade to a partial replay
    # so the findings still render
    result = predict(trace, _config_from(args, args.cpus), strict=not args.lint)
    if result.incomplete:
        print(
            f"replay incomplete ({result.incompleteness.reason}); "
            "rendering the partial schedule",
            file=sys.stderr,
        )
    if args.chrome:
        from repro.visualizer.chrome_trace import save_chrome_trace

        out = args.output or "trace.json"
        save_chrome_trace(result, out, program=trace.meta.program)
        print(f"wrote {out} (open in chrome://tracing or ui.perfetto.dev)")
        return 0
    if args.html or args.lint:
        from repro.visualizer.html_report import save_html_report

        findings = None
        if args.lint:
            from repro.analysis.lint import run_lint

            findings = run_lint(trace)
        out = args.output or "report.html"
        save_html_report(
            result,
            out,
            title=f"{trace.meta.program} on {args.cpus} CPUs (predicted)",
            compress_threads=args.compress,
            findings=findings,
        )
        print(f"wrote {out}" + (f" ({findings.summary()})" if findings else ""))
        return 0
    if args.output:
        save_svg(
            result,
            args.output,
            width=args.width,
            compress_threads=args.compress,
            title=f"{trace.meta.program} on {args.cpus} CPUs (predicted)",
        )
        print(f"wrote {args.output}")
    else:
        print(render_ascii(result, width=args.width if args.width < 300 else 100))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.jobs import JobEngine, default_engine

    trace = logfile.load(args.log)
    if args.workers and args.workers > 1:
        engine = JobEngine(workers=args.workers, mode="process")
    else:
        engine = default_engine()
    try:
        predictions = engine.predict_speedups(
            trace,
            args.cpus,
            base_config=_config_from(args, 1),
            use_cache=not args.no_cache,
        )
        print(f"speed-up prediction for {trace.meta.program}")
        for pred in predictions:
            print(f"  {pred.cpus:>2} CPUs: {pred.speedup:.2f}")
        worst = max(args.cpus)
        result = predict(trace, _config_from(args, worst))
        profiles = contention_by_object(result)[:5]
        if profiles:
            print(f"top blocking objects on {worst} CPUs:")
            for p in profiles:
                print(
                    f"  {str(p.obj):<24} blocked {to_seconds(p.total_blocked_us):.4f}s "
                    f"over {p.blocking_operations}/{p.operations} ops"
                )
    finally:
        if engine is not default_engine():
            engine.close()
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.core.errors import TraceError, VppbError
    from repro.jobs import JobEngine, ResultCache, SweepManifest, default_cache_dir
    from repro.jobs.manifest import run_manifest
    from repro.jobs.tiering import DEFAULT_TARGET_FRACTION

    try:
        manifest = SweepManifest.load(args.manifest)
    except VppbError as exc:  # AnalysisError (shape) or ConfigError (keys)
        print(f"batch: {exc}", file=sys.stderr)
        return 2

    analytic_profile = None
    if args.tier != "sim":
        from repro.analytic.profile import AnalyticProfile, default_profile_path
        from repro.core.errors import CalibrationError

        path = args.analytic_profile or default_profile_path()
        if path is None:
            print(
                "batch: --tier needs an analytic profile; run "
                "'vppb calibrate-analytic' or pass --analytic-profile",
                file=sys.stderr,
            )
            return 2
        try:
            analytic_profile = AnalyticProfile.load(path)
        except CalibrationError as exc:
            print(f"batch: {exc}", file=sys.stderr)
            return 2

    cache_root = None
    if not args.no_cache:
        cache_root = args.cache_dir or default_cache_dir()
    engine = JobEngine(
        workers=args.workers,
        mode="inline" if args.inline else "process",
        cache=ResultCache(cache_root),
    )
    try:
        report = run_manifest(
            manifest,
            engine,
            use_cache=not args.no_cache,
            tier=args.tier,
            analytic_profile=analytic_profile,
            target_fraction=(
                args.target if args.target is not None else DEFAULT_TARGET_FRACTION
            ),
        )
    except (OSError, TraceError) as exc:
        print(f"batch: cannot run {args.manifest}: {exc}", file=sys.stderr)
        return 2
    finally:
        engine.close()

    text = report.to_json() if args.format == "json" else report.format_table()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(
            f"wrote {args.output} ({len(report.scenarios)} scenarios, "
            f"{len(report.failed)} failed)"
        )
    else:
        print(text)
    return 1 if report.failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.jobs import JobEngine, ResultCache, default_cache_dir
    from repro.jobs.service import serve
    from repro.jobs.service_async import serve_async

    engine = JobEngine(
        workers=args.workers,
        cache=ResultCache(args.cache_dir or default_cache_dir()),
    )
    spool_dir = Path(args.spool_dir) if args.spool_dir else None
    if args.legacy:
        serve(
            host=args.host,
            port=args.port,
            engine=engine,
            spool_dir=spool_dir,
            verbose=not args.quiet,
        )
        return 0
    max_body_bytes = (
        int(args.max_body_mb * 1024 * 1024) if args.max_body_mb else None
    )
    serve_async(
        host=args.host,
        port=args.port,
        engine=engine,
        spool_dir=spool_dir,
        max_inflight=args.max_inflight,
        default_deadline_s=args.deadline,
        max_body_bytes=max_body_bytes,
        drain_timeout_s=args.drain_timeout,
        verbose=not args.quiet,
    )
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.jobs.client import ClientError, ServiceClient

    client = ServiceClient(
        args.host,
        args.port,
        timeout_s=args.timeout,
        attempts=args.attempts,
    )
    try:
        if args.action == "ready":
            payload = client.ready()
            print(json.dumps(payload, indent=2))
            return 0 if payload.get("status") == "ready" else 1
        if args.action == "metrics":
            print(json.dumps(client.metrics(), indent=2))
            return 0
        if args.log is None:
            print(f"client {args.action}: needs a log file", file=sys.stderr)
            return 2
        upload = client.upload_trace(args.log, stream=args.stream)
        if args.action == "upload":
            print(json.dumps(upload, indent=2))
            return 0
        cpus = [int(n) for n in str(args.cpus).split(",") if n]
        payload = client.predict(
            trace=upload["trace"],
            cpus=cpus,
            binding=args.binding,
            deadline_s=args.deadline,
        )
        print(json.dumps(payload, indent=2))
        return 0
    except ClientError as exc:
        if exc.status == 504 and exc.partial is not None:
            print(json.dumps(exc.body, indent=2))
            print(
                f"client: deadline exceeded after {exc.attempts} attempt(s); "
                "partial result above",
                file=sys.stderr,
            )
            return 1
        print(f"client: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"client: {exc}", file=sys.stderr)
        return 2


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.visualizer.stats import format_thread_stats

    trace = logfile.load(args.log)
    if args.format == "json":
        # the analytic tier's input: pure trace decomposition, no replay
        from repro.analytic import extract_stats

        print(json.dumps(extract_stats(trace).to_dict(), indent=2, sort_keys=True))
        return 0
    result = predict(trace, _config_from(args, args.cpus))
    print(
        f"{trace.meta.program} on {args.cpus} CPUs (predicted), "
        f"makespan {to_seconds(result.makespan_us):.3f}s:"
    )
    print(format_thread_stats(result, top=args.top))
    return 0


def _cmd_knee(args: argparse.Namespace) -> int:
    from repro.analysis.whatif import find_knee

    trace = logfile.load(args.log)
    knee = find_knee(
        trace,
        target_fraction=args.target,
        max_cpus=args.max_cpus,
        base_config=_config_from(args, 1),
    )
    print(
        f"{trace.meta.program}: {knee.cpus} CPU(s) reach "
        f"{knee.speedup:.2f}x of an achievable {knee.bound:.2f}x "
        f"({knee.fraction_of_bound:.0%} of the bound)"
    )
    return 0


def _whatif_schedulers(args: argparse.Namespace) -> int:
    """Cross-OS what-if: one trace, several simulated kernels.

    Every cell (and the shared recorded-uniprocessor baseline) runs
    through the default :class:`JobEngine` and its result cache, so
    repeated comparisons are served from content-addressed results.
    """
    from repro.jobs import default_engine
    from repro.sched import available_backends

    names = [s.strip() for s in args.scheduler.split(",") if s.strip()]
    known = available_backends()
    for name in names:
        if name not in known:
            print(
                f"whatif: unknown scheduler {name!r} "
                f"(known: {', '.join(known)})",
                file=sys.stderr,
            )
            return 2
    if not names:
        print("whatif: --scheduler needs at least one name", file=sys.stderr)
        return 2

    trace = logfile.load(args.log)
    engine = default_engine()
    base = _config_from(args, 1)
    rows = []
    for name in names:
        preds = engine.predict_speedups(
            trace, [args.cpus], base_config=base.with_scheduler(name)
        )
        rows.append((name, preds[0]))
    print(
        f"cross-kernel what-if for {trace.meta.program} on {args.cpus} "
        "CPUs (baseline: recorded uniprocessor run)"
    )
    print(f"{'scheduler':<10} {'makespan':>12} {'speedup':>8}")
    for name, pred in rows:
        print(f"{name:<10} {pred.makespan_us:>10}us {pred.speedup:>8.2f}")
    best = max(rows, key=lambda r: r[1].speedup)
    print(f"best: {best[0]} ({best[1].speedup:.2f}x)")
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_results, format_comparison
    from repro.analysis.transform import (
        scale_compute,
        scale_critical_sections,
        scale_io,
        split_lock,
    )
    from repro.core.simulator import Simulator

    if args.scheduler is not None:
        transforms = (
            args.scale_compute, args.scale_io, args.scale_cs, args.shard_lock,
        )
        if any(t is not None for t in transforms):
            print(
                "whatif: --scheduler cannot be combined with trace "
                "transformations",
                file=sys.stderr,
            )
            return 2
        return _whatif_schedulers(args)

    trace = logfile.load(args.log)
    plan = compile_trace(trace)
    transformed = plan
    applied = []
    if args.scale_compute is not None:
        transformed = scale_compute(transformed, args.scale_compute)
        applied.append(f"compute x{args.scale_compute}")
    if args.scale_io is not None:
        transformed = scale_io(transformed, args.scale_io)
        applied.append(f"io x{args.scale_io}")
    if args.scale_cs is not None:
        lock, _, factor = args.scale_cs.rpartition(":")
        transformed = scale_critical_sections(transformed, lock, float(factor))
        applied.append(f"critical section of {lock!r} x{factor}")
    if args.shard_lock is not None:
        lock, _, ways = args.shard_lock.rpartition(":")
        transformed = split_lock(transformed, lock, int(ways))
        applied.append(f"{lock!r} split {ways} ways")
    if not applied:
        print("no transformation requested (see --help)", file=sys.stderr)
        return 2

    config = _config_from(args, args.cpus)
    before = Simulator(config).run_replay(plan)
    after = Simulator(config).run_replay(transformed)
    print(f"what-if on {args.cpus} CPUs: " + "; ".join(applied))
    print(format_comparison(compare_results(before, after)))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_results, format_comparison

    config = _config_from(args, args.cpus)
    before = predict(logfile.load(args.before), config)
    after = predict(logfile.load(args.after), config)
    report = compare_results(before, after)
    print(f"performance change on {args.cpus} CPUs (predicted):")
    print(format_comparison(report))
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Diagnose a log file without ever raising.

    Exit status: 0 — healthy (strict parse, complete replay); 1 — usable
    but damaged (salvaged, or replay came back partial); 2 — unusable
    (unreadable file, or nothing salvageable).
    """
    from repro.core.errors import LogFormatError, TraceError, VppbError
    from repro.core.engine import Watchdog
    from repro.recorder.salvage import salvage_loads

    try:
        with open(args.log, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as exc:
        print(f"doctor: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2

    def _salvage():
        result = salvage_loads(text, source=str(args.log))
        report = result.report
        print(f"salvage: {report.summary()}")
        for kind, count in sorted(report.counts_by_kind().items()):
            print(f"  {count:>4}x {kind}")
        if args.repairs:
            shown = report.repairs[: args.repairs]
            for repair in shown:
                where = f"line {repair.lineno}: " if repair.lineno else ""
                print(f"    {where}{repair.kind}: {repair.detail}")
            if len(report.repairs) > len(shown):
                print(f"    ... and {len(report.repairs) - len(shown)} more")
        return result.trace

    salvaged = False
    try:
        trace = logfile.loads(text, mode="strict", source=str(args.log))
    except TraceError as exc:
        print(f"strict parse failed: {exc}")
        if isinstance(exc, LogFormatError) and exc.snippet():
            for line in exc.snippet().splitlines():
                print(f"    {line}")
        trace = _salvage()
        salvaged = True
    else:
        print(
            f"strict parse ok: {len(trace)} records, "
            f"{len(trace.thread_ids())} threads"
        )

    if len(trace) == 0:
        print("diagnosis: UNUSABLE — nothing salvageable from this log")
        return 2

    incomplete = False
    if not args.no_replay:
        watchdog = Watchdog(
            max_events=args.max_events, max_wall_s=args.max_wall
        )

        def _dry_run(t):
            return predict(
                t, SimConfig(cpus=args.cpus), watchdog=watchdog, strict=False
            )

        try:
            result = _dry_run(trace)
        except VppbError as exc:
            # A log can parse strictly yet not replay (e.g. truncation
            # that happened to leave every line well-formed but cut calls
            # off from their returns).  Salvage repairs exactly that.
            print(f"replay dry-run failed: {exc}")
            if not salvaged:
                trace = _salvage()
                salvaged = True
            try:
                result = _dry_run(trace) if len(trace) else None
            except VppbError as exc2:
                print(f"replay of salvaged trace failed: {exc2}")
                result = None
            if result is None:
                print("diagnosis: UNUSABLE — the trace cannot be replayed")
                return 2
        if result.incomplete:
            incomplete = True
            print(f"replay dry-run: partial — {result.incompleteness.describe()}")
        else:
            print(
                f"replay dry-run ok: {args.cpus} CPUs, makespan "
                f"{to_seconds(result.makespan_us):.3f}s"
            )

    if salvaged or incomplete:
        verdict = []
        if salvaged:
            verdict.append("log damaged but salvaged")
        if incomplete:
            verdict.append("replay incomplete")
        print(f"diagnosis: DEGRADED — {'; '.join(verdict)}")
        return 1
    print("diagnosis: HEALTHY")
    return 0


def _lint_baseline_fingerprints(path: str) -> set:
    """Fingerprints to suppress, from any report shape we ever emit.

    Accepts the ``--format json`` report, a SARIF log (reading
    ``partialFingerprints``), a JSON list of fingerprint strings, or
    plain text with one fingerprint per line (``#`` comments allowed).
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        data = json.loads(text)
    except ValueError:
        return {
            line.strip()
            for line in text.splitlines()
            if line.strip() and not line.strip().startswith("#")
        }
    fps: set = set()
    if isinstance(data, list):
        fps.update(str(v) for v in data if isinstance(v, str))
    elif isinstance(data, dict):
        for f in data.get("findings", ()):
            if isinstance(f, dict) and f.get("fingerprint"):
                fps.add(str(f["fingerprint"]))
        for run in data.get("runs", ()):
            for result in run.get("results", ()):
                partial = result.get("partialFingerprints", {})
                if partial.get("vppbFingerprint/v1"):
                    fps.add(str(partial["vppbFingerprint/v1"]))
    return fps


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis of a recorded log.

    Exit status: 0 — no finding reached the ``--fail-on`` severity
    (after ``--baseline`` suppression); 1 — at least one did; 2 — bad
    request (unknown rule id, unreadable log, bad severity).  Damaged
    logs are salvaged and linted anyway (with an incomplete-input note)
    unless ``--strict-parse`` forbids it.
    """
    from repro.analysis.lint import (
        LintReport,
        Severity,
        find_witness,
        render_json,
        render_text,
        replay_witness,
        run_lint,
        sarif_json,
        whatif_lint,
    )
    from repro.core.errors import AnalysisError, TraceError, VppbError

    fail_on: Optional[Severity]
    if args.fail_on.lower() == "never":
        fail_on = None
    else:
        try:
            fail_on = Severity.parse(args.fail_on)
        except ValueError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2

    # lenient load: a partially corrupt log still carries evidence, so
    # lint what the salvage pipeline can keep (doctor's loader)
    try:
        with open(args.log, "r", encoding="utf-8", errors="replace") as fh:
            log_text = fh.read()
    except OSError as exc:
        print(f"lint: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2
    salvage = None
    try:
        trace = logfile.loads(log_text, mode="strict", source=str(args.log))
    except TraceError as exc:
        if args.strict_parse:
            print(f"lint: cannot load {args.log}: {exc}", file=sys.stderr)
            return 2
        from repro.recorder.salvage import salvage_loads

        result = salvage_loads(log_text, source=str(args.log))
        if len(result.trace) == 0:
            print(
                f"lint: nothing salvageable from {args.log}: {exc}",
                file=sys.stderr,
            )
            return 2
        trace, salvage = result.trace, result.report
        print(f"lint: salvaged input — {salvage.summary()}", file=sys.stderr)

    try:
        report = run_lint(
            trace, select=args.select, ignore=args.ignore, salvage=salvage
        )
    except AnalysisError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    if args.whatif:
        from repro.jobs import SweepManifest

        try:
            with open(args.whatif, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if isinstance(data, dict):
                data.setdefault("trace", str(args.log))
            manifest = SweepManifest.from_dict(data)
        except (OSError, ValueError, AnalysisError) as exc:
            print(f"lint: bad --whatif manifest: {exc}", file=sys.stderr)
            return 2
        engine = _calib_engine(args)
        with engine:
            res = whatif_lint(trace, manifest, report=report, engine=engine)
        report = res.report
        for cell in res.cells:
            where = "cache" if cell.from_cache else "probe"
            verdict = cell.replay_status or cell.error or cell.status
            print(
                f"lint: whatif {cell.label}: {verdict} ({where})",
                file=sys.stderr,
            )

    if args.replay_witness:
        witness = find_witness(report, args.replay_witness)
        if witness is None:
            print(
                f"lint: no finding carries a witness matching "
                f"{args.replay_witness!r}",
                file=sys.stderr,
            )
            return 2
        try:
            replay = replay_witness(trace, witness)
        except VppbError as exc:
            print(f"lint: witness replay failed: {exc}", file=sys.stderr)
            return 2
        shown = "EXHIBITED" if replay.exhibited else "NOT EXHIBITED"
        print(
            f"witness {witness.digest[:12]} ({witness.kind}, "
            f"{witness.cpus} cpu): {shown} — {replay.detail}"
        )
        return 0 if replay.exhibited else 1

    if args.baseline:
        try:
            baselined = _lint_baseline_fingerprints(args.baseline)
        except OSError as exc:
            print(f"lint: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        kept = [f for f in report if f.fingerprint() not in baselined]
        suppressed = len(report) - len(kept)
        if suppressed:
            print(
                f"lint: {suppressed} finding(s) suppressed by baseline",
                file=sys.stderr,
            )
        report = LintReport(
            program=report.program,
            findings=kept,
            rules_run=report.rules_run,
        ).sorted()

    if args.format == "sarif":
        text = sarif_json(report)
    elif args.format == "json":
        text = render_json(report)
    else:
        text = render_text(report, explain=not args.no_explain)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output} ({report.summary()})")
    else:
        print(text)

    if fail_on is not None and report.at_least(fail_on):
        return 1
    return 0


def _calib_engine(args: argparse.Namespace):
    """Engine for calibrate/validate honouring the cache/worker flags."""
    from repro.jobs import JobEngine, ResultCache, default_cache_dir

    cache_root = None
    if not args.no_cache:
        cache_root = args.cache_dir or default_cache_dir()
    mode = "process" if args.workers and args.workers > 1 else "inline"
    return JobEngine(
        workers=args.workers if mode == "process" else None,
        mode=mode,
        cache=ResultCache(cache_root),
    )


def _calib_progress(args: argparse.Namespace):
    if args.quiet:
        return None
    return lambda message: print(f"calib: {message}", file=sys.stderr)


def _parse_workload_arg(text: str, args: argparse.Namespace):
    """``NAME[:THREADS[:SCALE]]`` → WorkloadSpec with the shared flags."""
    from repro.calib import WorkloadSpec
    from repro.calib.measure import DEFAULT_SEED

    name, _, rest = text.partition(":")
    threads_s, _, scale_s = rest.partition(":")
    try:
        return WorkloadSpec(
            name=name,
            threads=int(threads_s) if threads_s else 4,
            scale=float(scale_s) if scale_s else 1.0,
            seed=args.seed if args.seed is not None else DEFAULT_SEED,
            cpus=tuple(args.cpus),
            runs=args.runs,
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad workload spec {text!r}: {exc}")


def _cmd_calibrate(args: argparse.Namespace) -> int:
    """Exit status: 0 — profile written; 2 — the suite cannot be
    measured or the fit failed."""
    from dataclasses import replace as dc_replace

    from repro.calib import calibrate, default_suite, format_error_table
    from repro.core.errors import CalibrationError

    try:
        if args.workload:
            specs = [_parse_workload_arg(w, args) for w in args.workload]
        else:
            specs = default_suite()
            specs = [
                dc_replace(
                    s,
                    cpus=tuple(args.cpus),
                    runs=args.runs,
                    **({"seed": args.seed} if args.seed is not None else {}),
                )
                for s in specs
            ]
    except (argparse.ArgumentTypeError, CalibrationError) as exc:
        print(f"calibrate: {exc}", file=sys.stderr)
        return 2

    engine = _calib_engine(args)
    try:
        profile = calibrate(
            specs,
            engine=engine,
            max_evals=args.max_evals,
            cv_folds=None if args.no_cv else args.cv_folds,
            progress=_calib_progress(args),
        )
    except CalibrationError as exc:
        print(f"calibrate: {exc}", file=sys.stderr)
        return 2
    finally:
        engine.close()

    path = profile.save(args.output)
    print(format_error_table(profile.error_table))
    print(
        f"mean |error| {profile.baseline_objective:.2%} (defaults) -> "
        f"{profile.objective:.2%} (fitted) in {profile.evaluations} "
        f"evaluations"
    )
    if profile.cv:
        print(
            f"cross-validation: mean holdout {profile.cv['mean_holdout']:.2%}, "
            f"worst {profile.cv['worst_holdout']:.2%}"
        )
    print(f"wrote {path}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Exit status: 0 — within budget, no drift; 1 — drift (the fresh
    error table left the profile's recorded one); 2 — over the error
    budget, or the profile/suite is unusable."""
    import json as json_mod

    from repro.calib import (
        DEFAULT_DRIFT_TOLERANCE,
        DEFAULT_ERROR_BUDGET,
        CalibrationProfile,
        format_validation,
        validate,
    )
    from repro.core.errors import CalibrationError

    try:
        profile = CalibrationProfile.load(args.profile)
    except CalibrationError as exc:
        print(f"validate: {exc}", file=sys.stderr)
        return 2

    engine = _calib_engine(args)
    try:
        report = validate(
            profile,
            profile_path=str(args.profile),
            engine=engine,
            budget=(
                args.budget if args.budget is not None else DEFAULT_ERROR_BUDGET
            ),
            drift_tolerance=(
                args.drift_tolerance
                if args.drift_tolerance is not None
                else DEFAULT_DRIFT_TOLERANCE
            ),
            progress=_calib_progress(args),
        )
    except CalibrationError as exc:
        print(f"validate: {exc}", file=sys.stderr)
        return 2
    finally:
        engine.close()

    if args.format == "json":
        print(json_mod.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_validation(report))

    if args.attribute:
        _print_attribution(profile, report)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json_mod.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    return report.exit_code


def _print_attribution(profile, report) -> int:
    """Phase breakdown of the worst cell's real-vs-predicted gap."""
    from repro.analysis.compare import attribute_error, format_attribution
    from repro.program.mpexec import run_multiprocessor
    from repro.workloads import get_workload

    worst = report.worst
    spec = next(s for s in profile.suite if s.name == worst.workload)
    workload = get_workload(spec.name)
    config = profile.apply(SimConfig()).with_cpus(worst.cpus)
    # noise-free ground-truth run vs the profile-configured replay
    real = run_multiprocessor(
        workload.make_program(spec.threads, spec.scale, seed=spec.seed),
        config,
    )
    from repro.program.uniexec import record_program

    recording = record_program(
        workload.make_program(spec.threads, spec.scale, seed=spec.seed),
        overhead_us=spec.probe_overhead_us,
    )
    predicted = predict(recording.trace, config)
    print(
        f"attribution for worst cell ({worst.workload}@{worst.cpus}cpu, "
        f"error {worst.error:+.2%}):"
    )
    print(format_attribution(attribute_error(real, predicted)))
    return 0


def _cmd_calibrate_analytic(args: argparse.Namespace) -> int:
    """Exit status: 0 — profile written (or --verify clean); 1 — --verify
    found bracket violations; 2 — calibration failed."""
    from repro.analytic import (
        DEFAULT_PAD,
        AnalyticProfile,
        calibrate_analytic,
        verify_profile,
    )
    from repro.core.errors import CalibrationError

    engine = _calib_engine(args)
    try:
        if args.verify:
            profile = AnalyticProfile.load(args.verify)
            violations = verify_profile(
                profile,
                engine=engine,
                use_cache=not args.no_cache,
                progress=_calib_progress(args),
            )
            if violations:
                for line in violations:
                    print(f"calibrate-analytic: VIOLATION {line}", file=sys.stderr)
                return 1
            print(
                f"calibrate-analytic: {args.verify} brackets the DES on all "
                f"{profile.samples} suite cells"
            )
            return 0
        profile = calibrate_analytic(
            engine=engine,
            cpus=tuple(args.cpus),
            pad=args.pad if args.pad is not None else DEFAULT_PAD,
            use_cache=not args.no_cache,
            progress=_calib_progress(args),
        )
    except CalibrationError as exc:
        print(f"calibrate-analytic: {exc}", file=sys.stderr)
        return 2
    finally:
        engine.close()

    path = profile.save(args.output)
    print(
        f"calibrated {len(profile.margins)} margin keys over "
        f"{profile.samples} cells (pad {profile.pad:.0%}); wrote {path}"
    )
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    from repro.workloads import all_workloads

    for w in all_workloads():
        print(f"{w.name:<16} {w.description}")
    return 0


_COMMANDS = {
    "record": _cmd_record,
    "predict": _cmd_predict,
    "visualize": _cmd_visualize,
    "report": _cmd_report,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "client": _cmd_client,
    "stats": _cmd_stats,
    "knee": _cmd_knee,
    "whatif": _cmd_whatif,
    "compare": _cmd_compare,
    "doctor": _cmd_doctor,
    "lint": _cmd_lint,
    "calibrate": _cmd_calibrate,
    "calibrate-analytic": _cmd_calibrate_analytic,
    "validate": _cmd_validate,
    "workloads": _cmd_workloads,
}


def main(argv: Optional[List[str]] = None) -> int:
    from repro.core.errors import VppbError

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except VppbError as exc:
        # a command let a library error escape (bad profile on --profile,
        # unmonitorable workload, ...): report it, don't traceback
        print(f"vppb {args.command}: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
