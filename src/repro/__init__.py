"""repro — a reproduction of VPPB (Broberg, Lundberg, Grahn, IPPS 1998).

VPPB (*Visualization of Parallel Program Behaviour*) predicts the
multiprocessor speed-up of a multithreaded Solaris program from a single
monitored uni-processor execution, and visualises the predicted execution
so serialisation bottlenecks can be found and fixed.

The package mirrors the tool's three parts plus the substrates they need:

* :mod:`repro.recorder` — the Recorder: probe records, log-file format,
  and a live Python ``threading`` interposer;
* :mod:`repro.core` — the Simulator: event-driven multiprocessor
  simulation over the Solaris scheduling model, plus the trace→replay
  compiler (the predictor);
* :mod:`repro.visualizer` — the Visualizer: parallelism and execution-flow
  graphs, zooming, event inspection, SVG/ASCII rendering;
* :mod:`repro.solaris` — the Solaris 2.5 two-level scheduler model
  (threads → LWPs → CPUs, TS dispatch table, synchronisation objects);
* :mod:`repro.program` — the virtual-program DSL and its monitored
  uni-processor / ground-truth multiprocessor executors;
* :mod:`repro.workloads` — SPLASH-2-style validation programs and the §5
  producer-consumer case study;
* :mod:`repro.analysis` — speed-up/error metrics and reports.

Quick start::

    from repro import (
        Program, record_program, predict_speedup, measure_speedup,
    )
    from repro.workloads import radix

    program = radix.make_program(nthreads=8)
    run = record_program(program)              # monitored uni-processor run
    pred = predict_speedup(run.trace, cpus=8)  # VPPB's prediction
    real = measure_speedup(program, cpus=8)    # "real machine" (5 runs)
    print(pred.speedup, real.speedup)
"""

from repro.core.config import SimConfig, ThreadPolicy
from repro.core.predictor import (
    SpeedupPrediction,
    compile_trace,
    predict,
    predict_speedup,
    sweep_speedup,
)
from repro.core.result import SimulationResult
from repro.core.simulator import ReplayPlan, Simulator, simulate_program
from repro.core.trace import Trace, TraceMeta
from repro.program.mpexec import (
    GroundTruth,
    PerturbationModel,
    measure_speedup,
    run_multiprocessor,
)
from repro.program.program import Program, ThreadCtx, barrier
from repro.program.uniexec import RecordingRun, record_program, unmonitored_run
from repro.recorder.recorder import Recorder

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "ThreadPolicy",
    "SpeedupPrediction",
    "compile_trace",
    "predict",
    "predict_speedup",
    "sweep_speedup",
    "SimulationResult",
    "ReplayPlan",
    "Simulator",
    "simulate_program",
    "Trace",
    "TraceMeta",
    "GroundTruth",
    "PerturbationModel",
    "measure_speedup",
    "run_multiprocessor",
    "Program",
    "ThreadCtx",
    "barrier",
    "RecordingRun",
    "record_program",
    "unmonitored_run",
    "Recorder",
    "__version__",
]
