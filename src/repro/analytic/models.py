"""Closed-form makespan models over :class:`~repro.analytic.stats.TraceStats`.

Four models of increasing refinement, each a few arithmetic operations
per configuration (PPT-Multicore-style analytical prediction — no event
replay):

* ``work_span`` — the greedy-scheduler critical-path bound:
  ``max(span, work / P)`` where *work* is total CPU demand (bursts plus
  the cost model's per-operation charges) and *span* the longest single
  thread's demand;
* ``amdahl`` — adds the serial fraction: the single-threaded head and
  tail of the run cannot parallelise, so
  ``serial + (work - serial) / P``;
* ``lock_queue`` — a lock-contention queueing correction: each lock is
  a serial resource, so its critical sections add expected queueing
  delay proportional to how likely ``P`` concurrent threads are to
  collide on it, floored by the hottest lock's total hold time;
* ``comm_scale`` — comm-delay scaling: every recorded wake-up
  (``sema_post``, ``cond_signal/broadcast``) crosses CPUs with
  probability ``(P-1)/P`` and then costs ``comm_delay_us`` extra.

A raw point estimate is useless without error bars; the
:class:`~repro.analytic.profile.AnalyticProfile` carries per-model
``(lo, hi)`` ratio margins calibrated against DES ground truth
(:mod:`repro.analytic.calibrate`), and :func:`estimate_makespan`
intersects the models' calibrated intervals into one ``[lo, hi]``
answer.  On every calibration-suite cell the DES makespan lies inside
each model's margined interval by construction, so it lies inside the
intersection too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.core.config import SimConfig
from repro.core.events import Primitive

from repro.analytic.stats import TraceStats

__all__ = [
    "MODEL_NAMES",
    "MakespanInterval",
    "binding_of",
    "trace_class",
    "margin_key_for",
    "model_points",
    "estimate_makespan",
]

#: Model names in refinement order; ``comm_scale`` (the full chain) is
#: the point estimator.
MODEL_NAMES = ("work_span", "amdahl", "lock_queue", "comm_scale")


@dataclass(frozen=True)
class MakespanInterval:
    """A calibrated ``[lo, hi]`` makespan estimate for one config."""

    lo_us: int
    hi_us: int
    point_us: int
    #: per-model calibrated intervals (model → (lo_us, hi_us))
    per_model: Tuple[Tuple[str, Tuple[int, int]], ...]
    #: which margin table answered (exact cell key or a fallback level)
    margin_key: str

    @property
    def width_ratio(self) -> float:
        """Relative interval width (0 = a point answer)."""
        return (self.hi_us - self.lo_us) / self.point_us if self.point_us else 0.0

    def brackets(self, makespan_us: int) -> bool:
        return self.lo_us <= makespan_us <= self.hi_us

    def to_dict(self) -> Dict[str, Any]:
        return {
            "lo_us": self.lo_us,
            "hi_us": self.hi_us,
            "point_us": self.point_us,
            "margin_key": self.margin_key,
            "models": {name: list(iv) for name, iv in self.per_model},
        }


def _bound_fraction(config: SimConfig) -> float:
    """Fraction of per-thread policies asking for a bound thread."""
    if not config.thread_policies:
        return 0.0
    bound = sum(1 for p in config.thread_policies.values() if p.bound)
    return bound / len(config.thread_policies)


def binding_of(config: SimConfig) -> str:
    """The manifest-style binding label this config corresponds to."""
    frac = _bound_fraction(config)
    if frac == 0.0:
        return "unbound"
    if frac == 1.0:
        return "bound"
    return "mixed"


def trace_class(stats: TraceStats) -> str:
    """Coarse behaviour class of a trace, from its own statistics.

    The models' bias depends strongly on how lock-dominated a workload
    is (a contended producer/consumer queue vs. barrier-phased compute),
    so margins are calibrated per class.  The class is a pure function
    of :class:`TraceStats`, hence available identically at calibration
    and at estimate time.  Buckets are log-scale on the locks' total
    hold time relative to compute.
    """
    held = sum(lock.held_us for lock in stats.locks)
    intensity = held / max(stats.compute_us, 1)
    if intensity >= 0.1:
        return "lock-heavy"
    if intensity >= 0.001:
        return "lock-light"
    return "lock-free"


def margin_key_for(stats: TraceStats, config: SimConfig) -> List[str]:
    """Margin lookup chain for *stats* under *config*, most specific first.

    ``class/scheduler/binding/Ncpu`` → ``class/scheduler/binding`` →
    ``scheduler/binding/Ncpu`` → ``scheduler/binding`` → ``scheduler``
    → ``default``.  Calibration aggregates observed DES/model ratios at
    every level, so off-grid configurations and unseen behaviour classes
    still get (wider) margins.
    """
    sched = config.scheduler
    binding = binding_of(config)
    cls = trace_class(stats)
    return [
        f"{cls}/{sched}/{binding}/{config.cpus}cpu",
        f"{cls}/{sched}/{binding}",
        f"{sched}/{binding}/{config.cpus}cpu",
        f"{sched}/{binding}",
        sched,
        "default",
    ]


def _effective_parallelism(stats: TraceStats, config: SimConfig) -> int:
    """How many of the machine's CPUs the trace can actually occupy."""
    limit = min(config.cpus, max(1, stats.n_threads))
    if config.lwps is not None and _bound_fraction(config) < 1.0:
        # unbound threads multiplex a fixed LWP pool
        limit = min(limit, config.lwps)
    return max(1, limit)


def _op_cost_us(stats: TraceStats, config: SimConfig) -> float:
    """The cost model's total per-operation charge for this trace."""
    costs = config.costs
    frac_bound = _bound_fraction(config)
    total = 0.0
    for name, count in stats.primitive_calls:
        try:
            prim = Primitive(name)
        except ValueError:
            continue
        unbound = costs.op_cost(prim, bound=False)
        if frac_bound > 0.0:
            bound = costs.op_cost(prim, bound=True)
            total += count * (frac_bound * bound + (1.0 - frac_bound) * unbound)
        else:
            total += count * unbound
    return total


def model_points(stats: TraceStats, config: SimConfig) -> Dict[str, float]:
    """Each model's raw (uncalibrated) makespan point estimate, in µs."""
    p = _effective_parallelism(stats, config)
    work = float(stats.compute_us) + _op_cost_us(stats, config)
    span = float(max(stats.span_us, 1))
    serial = min(float(stats.serial_us), work)

    t_ws = max(span, work / p)
    t_am = max(t_ws, serial + (work - serial) / p)

    # queueing correction: a lock's critical sections serialise; with p
    # threads the chance another holder is inside scales with the
    # lock's share of the parallel work
    queue = 0.0
    hottest = 0.0
    for lock in stats.locks:
        demand = float(lock.held_us)
        hottest = max(hottest, demand)
        if p > 1 and work > 0:
            collide = min(1.0, (p - 1) * demand / work)
            queue += demand * collide
    t_lq = max(t_am + queue, hottest if p > 1 else 0.0, t_am)

    # comm-delay scaling: recorded wake-ups cross CPUs with
    # probability (p-1)/p, each delivery then arriving comm_delay later
    cross = stats.wakeups * (p - 1) / p if p > 1 else 0.0
    t_cs = t_lq + cross * config.comm_delay_us

    return {
        "work_span": t_ws,
        "amdahl": t_am,
        "lock_queue": t_lq,
        "comm_scale": t_cs,
    }


def estimate_makespan(
    stats: TraceStats, config: SimConfig, profile
) -> MakespanInterval:
    """Calibrated ``[lo, hi]`` makespan interval for *stats* under *config*.

    *profile* is an :class:`~repro.analytic.profile.AnalyticProfile`.
    Each model contributes its point estimate scaled by its calibrated
    ratio margins; the final interval is the intersection (every model's
    margins bracket the DES on the calibration suite, so the
    intersection does too).  Should the intersection be empty on inputs
    far outside the calibrated envelope, the union is returned instead —
    wider, never narrower.
    """
    points = model_points(stats, config)
    chain = margin_key_for(stats, config)
    per_model: List[Tuple[str, Tuple[int, int]]] = []
    used_key = "default"
    los: List[int] = []
    his: List[int] = []
    for name in MODEL_NAMES:
        point = points[name]
        lo_m, hi_m, key = profile.margin(name, chain)
        used_key = key
        lo = int(point * lo_m)
        hi = int(point * hi_m) + 1
        per_model.append((name, (lo, hi)))
        los.append(lo)
        his.append(hi)
    lo, hi = max(los), min(his)
    if hi < lo:  # disjoint margins: fall back to the envelope
        lo, hi = min(los), max(his)
    point = int(points["comm_scale"])
    point = min(max(point, lo), hi)
    return MakespanInterval(
        lo_us=lo,
        hi_us=hi,
        point_us=max(point, 1),
        per_model=tuple(per_model),
        margin_key=used_key,
    )
