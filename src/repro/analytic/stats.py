"""One-pass trace statistics: the analytical tier's entire input.

:func:`extract_stats` walks each thread's event list exactly the way the
predictor's compiler does (the burst before a call is CPU demand, the
call→return span is time inside the threads library) and reuses the lint
substrate's :func:`repro.analysis.lint.locks.sweep` for per-lock hold
times and contention.  The result is a :class:`TraceStats` — a compact,
JSON-safe, fingerprintable profile from which the closed-form models in
:mod:`repro.analytic.models` estimate makespans for *any* configuration
without touching the simulator.

Everything here is derived from the monitored uni-processor log alone,
so one extraction serves every cell of a what-if grid; the worker keeps
extracted profiles in a per-process LRU next to its plan cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.core.events import Phase, Primitive
from repro.core.ids import MAIN_THREAD_ID
from repro.core.trace import Trace

__all__ = [
    "STATS_VERSION",
    "ThreadProfile",
    "LockProfile",
    "TraceStats",
    "extract_stats",
]

#: Version of the extraction semantics, baked into every stats
#: fingerprint (and, transitively, every analytic job fingerprint).
#: Bump whenever the decomposition rules change.
STATS_VERSION = 1

#: Call→return spans counted as synchronisation time.
_SYNC_PRIMS = frozenset(
    {
        Primitive.MUTEX_LOCK,
        Primitive.MUTEX_TRYLOCK,
        Primitive.MUTEX_UNLOCK,
        Primitive.SEMA_INIT,
        Primitive.SEMA_WAIT,
        Primitive.SEMA_TRYWAIT,
        Primitive.SEMA_POST,
        Primitive.COND_WAIT,
        Primitive.COND_TIMEDWAIT,
        Primitive.COND_SIGNAL,
        Primitive.COND_BROADCAST,
        Primitive.RW_RDLOCK,
        Primitive.RW_WRLOCK,
        Primitive.RW_TRYRDLOCK,
        Primitive.RW_TRYWRLOCK,
        Primitive.RW_UNLOCK,
        Primitive.THR_JOIN,
    }
)

_MARKERS = frozenset(
    {Primitive.START_COLLECT, Primitive.END_COLLECT, Primitive.THREAD_START}
)

#: Calls that hand another thread work to wake up on (the operations a
#: multiprocessor replay may have to propagate across CPUs).
_WAKEUPS = frozenset(
    {Primitive.SEMA_POST, Primitive.COND_SIGNAL, Primitive.COND_BROADCAST}
)


@dataclass(frozen=True)
class ThreadProfile:
    """One thread's time decomposition on the monitored run."""

    tid: int
    compute_us: int
    sync_us: int
    io_us: int
    overhead_us: int
    calls: int

    @property
    def busy_us(self) -> int:
        return self.compute_us + self.sync_us + self.io_us + self.overhead_us

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tid": self.tid,
            "compute_us": self.compute_us,
            "sync_us": self.sync_us,
            "io_us": self.io_us,
            "overhead_us": self.overhead_us,
            "calls": self.calls,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ThreadProfile":
        return cls(
            tid=int(data["tid"]),
            compute_us=int(data["compute_us"]),
            sync_us=int(data["sync_us"]),
            io_us=int(data["io_us"]),
            overhead_us=int(data["overhead_us"]),
            calls=int(data["calls"]),
        )


@dataclass(frozen=True)
class LockProfile:
    """Aggregate hold/contention statistics for one lock-like object."""

    name: str
    kind: str
    acquisitions: int
    contended: int
    blocked_us: int
    held_us: int
    max_held_us: int
    owners: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "blocked_us": self.blocked_us,
            "held_us": self.held_us,
            "max_held_us": self.max_held_us,
            "owners": self.owners,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LockProfile":
        return cls(
            name=str(data["name"]),
            kind=str(data["kind"]),
            acquisitions=int(data["acquisitions"]),
            contended=int(data["contended"]),
            blocked_us=int(data["blocked_us"]),
            held_us=int(data["held_us"]),
            max_held_us=int(data["max_held_us"]),
            owners=int(data["owners"]),
        )


@dataclass(frozen=True)
class TraceStats:
    """The analytical tier's view of one trace (config-independent).

    Distinct from :class:`repro.core.trace.TraceStats`, which summarises
    the *log* (event counts, bytes); this one summarises the *program
    behaviour* the log recorded.
    """

    program: str
    trace_fingerprint: str
    n_threads: int
    n_events: int
    duration_us: int
    probe_overhead_us: int
    #: total CPU demand: per-thread bursts between library calls
    compute_us: int
    #: total time inside blocking-sync calls on the monitored run
    sync_us: int
    io_us: int
    overhead_us: int
    #: single-threaded head + tail (before the first create / after the
    #: last event of any other thread) — the Amdahl serial portion
    serial_us: int
    #: the longest single thread's CPU demand — a critical-path floor
    span_us: int
    forks: int
    joins: int
    barriers: int
    wakeups: int
    #: per-primitive CALL counts, sorted by primitive value
    primitive_calls: Tuple[Tuple[str, int], ...]
    threads: Tuple[ThreadProfile, ...]
    locks: Tuple[LockProfile, ...]

    # -- derived views --------------------------------------------------

    @property
    def busy_us(self) -> int:
        return self.compute_us + self.sync_us + self.io_us + self.overhead_us

    @property
    def compute_ratio(self) -> float:
        busy = self.busy_us
        return self.compute_us / busy if busy else 0.0

    @property
    def sync_ratio(self) -> float:
        busy = self.busy_us
        return self.sync_us / busy if busy else 0.0

    @property
    def hottest_lock_held_us(self) -> int:
        return max((l.held_us for l in self.locks), default=0)

    def sync_calls(self) -> int:
        return sum(
            n for name, n in self.primitive_calls
            if Primitive(name) in _SYNC_PRIMS
        )

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stats_version": STATS_VERSION,
            "program": self.program,
            "trace_fingerprint": self.trace_fingerprint,
            "n_threads": self.n_threads,
            "n_events": self.n_events,
            "duration_us": self.duration_us,
            "probe_overhead_us": self.probe_overhead_us,
            "compute_us": self.compute_us,
            "sync_us": self.sync_us,
            "io_us": self.io_us,
            "overhead_us": self.overhead_us,
            "serial_us": self.serial_us,
            "span_us": self.span_us,
            "forks": self.forks,
            "joins": self.joins,
            "barriers": self.barriers,
            "wakeups": self.wakeups,
            "compute_ratio": round(self.compute_ratio, 6),
            "sync_ratio": round(self.sync_ratio, 6),
            "primitive_calls": [[name, n] for name, n in self.primitive_calls],
            "threads": [t.to_dict() for t in self.threads],
            "locks": [l.to_dict() for l in self.locks],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceStats":
        return cls(
            program=str(data.get("program", "")),
            trace_fingerprint=str(data["trace_fingerprint"]),
            n_threads=int(data["n_threads"]),
            n_events=int(data["n_events"]),
            duration_us=int(data["duration_us"]),
            probe_overhead_us=int(data.get("probe_overhead_us", 0)),
            compute_us=int(data["compute_us"]),
            sync_us=int(data["sync_us"]),
            io_us=int(data["io_us"]),
            overhead_us=int(data["overhead_us"]),
            serial_us=int(data["serial_us"]),
            span_us=int(data["span_us"]),
            forks=int(data["forks"]),
            joins=int(data["joins"]),
            barriers=int(data["barriers"]),
            wakeups=int(data["wakeups"]),
            primitive_calls=tuple(
                (str(name), int(n)) for name, n in data.get("primitive_calls", [])
            ),
            threads=tuple(
                ThreadProfile.from_dict(t) for t in data.get("threads", [])
            ),
            locks=tuple(LockProfile.from_dict(l) for l in data.get("locks", [])),
        )

    def fingerprint(self) -> str:
        """Stable content hash of the profile (hex SHA-256)."""
        text = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(
            f"vppb-stats:v{STATS_VERSION}:{text}".encode("utf-8")
        ).hexdigest()


def _classify(prim: Primitive) -> str:
    if prim in _SYNC_PRIMS:
        return "sync"
    if prim is Primitive.IO_WAIT:
        return "io"
    return "overhead"


def extract_stats(trace: Trace) -> TraceStats:
    """One pass over *trace* producing the analytical profile.

    Burst attribution mirrors :func:`repro.core.predictor.compile_trace`:
    on a one-LWP monitored run a thread holds the processor between its
    return from one library call and its entry into the next, so
    per-thread timestamp deltas are CPU demand.
    """
    from repro.analysis.lint.locks import sweep

    threads: List[ThreadProfile] = []
    counts: Dict[str, int] = {}
    forks = joins = barriers = wakeups = 0

    for tid, records in sorted(trace.per_thread().items(), key=lambda kv: int(kv[0])):
        compute = sync = io = overhead = calls = 0
        prev_resume = None
        i, n = 0, len(records)
        while i < n:
            rec = records[i]
            if rec.primitive in _MARKERS:
                if rec.primitive is not Primitive.END_COLLECT:
                    prev_resume = rec.time_us
                i += 1
                continue
            if rec.phase is not Phase.CALL:
                # a stray return (salvaged log): treat its time as resume
                prev_resume = rec.time_us
                i += 1
                continue
            call = rec
            ret = None
            if call.primitive is not Primitive.THR_EXIT and i + 1 < n:
                nxt = records[i + 1]
                if nxt.phase is Phase.RET and nxt.primitive is call.primitive:
                    ret = nxt
            if prev_resume is not None:
                compute += max(0, call.time_us - prev_resume)
            calls += 1
            prim = call.primitive
            counts[prim.value] = counts.get(prim.value, 0) + 1
            if prim is Primitive.THR_CREATE:
                forks += 1
            elif prim is Primitive.THR_JOIN:
                joins += 1
            elif prim is Primitive.COND_BROADCAST:
                barriers += 1
            if prim in _WAKEUPS:
                wakeups += 1
            if ret is not None:
                span = max(0, ret.time_us - call.time_us)
                bucket = _classify(prim)
                if bucket == "sync":
                    sync += span
                elif bucket == "io":
                    io += span
                else:
                    overhead += span
                prev_resume = ret.time_us
                i += 2
            else:
                prev_resume = call.time_us
                i += 1
        threads.append(
            ThreadProfile(
                tid=int(tid),
                compute_us=compute,
                sync_us=sync,
                io_us=io,
                overhead_us=overhead,
                calls=calls,
            )
        )

    # serial head/tail: time with only the main thread active
    t_start = trace.start_us
    t_end = trace.end_us
    first_create = None
    last_other = None
    for rec in trace:
        if rec.primitive is Primitive.THR_CREATE and rec.phase is Phase.CALL:
            if first_create is None:
                first_create = rec.time_us
        if int(rec.tid) != int(MAIN_THREAD_ID):
            last_other = rec.time_us
    if first_create is None:
        serial = max(0, t_end - t_start)
    else:
        head = max(0, first_create - t_start)
        tail = max(0, t_end - last_other) if last_other is not None else 0
        serial = head + tail

    analysis = sweep(
        trace, block_threshold_us=4 * trace.meta.probe_overhead_us
    )
    locks = tuple(
        LockProfile(
            name=usage.obj.name,
            kind=usage.obj.kind,
            acquisitions=usage.acquisitions,
            contended=usage.blocked_acquisitions,
            blocked_us=usage.total_blocked_us,
            held_us=usage.total_held_us,
            max_held_us=usage.max_held_us,
            owners=len(usage.owners),
        )
        for _, usage in sorted(
            analysis.lock_usage.items(), key=lambda kv: (kv[0].kind, kv[0].name)
        )
    )

    return TraceStats(
        program=trace.meta.program,
        trace_fingerprint=trace.fingerprint(),
        n_threads=len(threads),
        n_events=len(trace.records),
        duration_us=trace.duration_us,
        probe_overhead_us=trace.meta.probe_overhead_us,
        compute_us=sum(t.compute_us for t in threads),
        sync_us=sum(t.sync_us for t in threads),
        io_us=sum(t.io_us for t in threads),
        overhead_us=sum(t.overhead_us for t in threads),
        serial_us=serial,
        span_us=max((t.compute_us for t in threads), default=0),
        forks=forks,
        joins=joins,
        barriers=barriers,
        wakeups=wakeups,
        primitive_calls=tuple(sorted(counts.items())),
        threads=tuple(threads),
        locks=locks,
    )
