"""The analytical prediction tier: speedup bounds without replay.

The full predictor answers "how does this trace behave on N CPUs?" by
replaying every event through the discrete-event simulator.  This
package answers the same question *analytically* — closed-form models
over one-pass trace statistics — in microseconds per configuration,
with an explicit ``[lo, hi]`` makespan interval instead of a point
value.  The three layers:

* :mod:`repro.analytic.stats` — a :class:`TraceStats` extractor: one
  sweep over the log (sharing the lint substrate in
  :mod:`repro.analysis.lint.locks`) produces per-thread compute/sync
  decompositions, fork/join/barrier counts and per-lock hold and
  contention aggregates, all in a compact fingerprintable profile;
* :mod:`repro.analytic.models` — closed-form bound models (work/span
  critical-path, Amdahl serial fraction, a lock-contention queueing
  correction, comm-delay scaling) mapping ``TraceStats`` + ``SimConfig``
  to a makespan interval;
* :mod:`repro.analytic.profile` / :mod:`repro.analytic.calibrate` — the
  versioned :class:`AnalyticProfile` artifact holding per-model interval
  margins fitted against DES ground truth over a deterministic workload
  suite (the same ``calib/`` measurement machinery the cost-model fit
  uses), so the intervals are *calibrated error bars*, not guesses.

The tiering policy that puts this in front of the simulator (escalating
only interval-straddling cells) lives in :mod:`repro.jobs.tiering`.
"""

from repro.analytic.calibrate import (
    DEFAULT_GRID_CPUS,
    DEFAULT_PAD,
    calibrate_analytic,
    calibration_configs,
    default_analytic_suite,
    verify_profile,
)
from repro.analytic.models import (
    MODEL_NAMES,
    MakespanInterval,
    binding_of,
    estimate_makespan,
    margin_key_for,
    model_points,
    trace_class,
)
from repro.analytic.profile import (
    ANALYTIC_PROFILE_FORMAT,
    ANALYTIC_PROFILE_VERSION,
    AnalyticProfile,
    default_profile_path,
    load_default_profile,
)
from repro.analytic.stats import STATS_VERSION, LockProfile, ThreadProfile, TraceStats, extract_stats

__all__ = [
    "ANALYTIC_PROFILE_FORMAT",
    "ANALYTIC_PROFILE_VERSION",
    "AnalyticProfile",
    "DEFAULT_GRID_CPUS",
    "DEFAULT_PAD",
    "LockProfile",
    "MODEL_NAMES",
    "MakespanInterval",
    "STATS_VERSION",
    "ThreadProfile",
    "TraceStats",
    "binding_of",
    "calibrate_analytic",
    "calibration_configs",
    "default_analytic_suite",
    "default_profile_path",
    "estimate_makespan",
    "extract_stats",
    "load_default_profile",
    "margin_key_for",
    "model_points",
    "trace_class",
    "verify_profile",
]
