"""Fit analytic interval margins against DES ground truth.

The analytical models are deliberately crude — a handful of arithmetic
operations — so their raw points are biased in ways that depend on the
scheduler backend, the binding mode and the CPU count.  Calibration
turns that bias into *error bars*: over a deterministic workload suite
(recorded with the same :mod:`repro.calib.measure` machinery the
cost-model fit uses) and a configuration grid, every cell's DES makespan
is computed once through the :class:`~repro.jobs.engine.JobEngine`
(content-addressed, so refits are cache reads), and for every margin key
and model the observed ``DES / model_point`` ratio range — padded by a
safety factor — becomes the ``(lo, hi)`` band stored in the
:class:`~repro.analytic.profile.AnalyticProfile`.

By construction the resulting intervals bracket the DES makespan on
100 % of the calibration cells; :func:`verify_profile` re-checks that
invariant (CI's ``analytic-gate`` runs it against the committed
profile) and reports any violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SimConfig, ThreadPolicy
from repro.core.errors import CalibrationError
from repro.calib.measure import WorkloadSpec
from repro.jobs.fingerprint import ENGINE_VERSION

from repro.analytic.models import (
    MODEL_NAMES,
    estimate_makespan,
    margin_key_for,
    model_points,
)
from repro.analytic.profile import ANALYTIC_PROFILE_VERSION, AnalyticProfile
from repro.analytic.stats import TraceStats, extract_stats

__all__ = [
    "DEFAULT_GRID_CPUS",
    "default_analytic_suite",
    "calibration_configs",
    "calibrate_analytic",
    "verify_profile",
]

DEFAULT_GRID_CPUS = (1, 2, 4, 8)
DEFAULT_BINDINGS = ("unbound", "bound")

#: Pad beyond the observed ratio range: generalisation headroom for
#: traces outside the calibration suite, at the cost of wider intervals
#: (more escalations) everywhere.  Bracketing on the calibration cells
#: themselves holds for any pad >= 0 — each cell's own ratio lies inside
#: its min/max band by construction.
DEFAULT_PAD = 0.02


def default_analytic_suite() -> List[WorkloadSpec]:
    """Workloads the stock margins are fitted against.

    Spans the behaviour space the models must cover: a compute/sync mix
    (synthetic), lock + semaphore hand-off (prodcons) and barrier-phased
    numeric work (fft).  All seeded, so the suite is bit-reproducible.
    The scalable workloads use 8 threads so their speed-up curves keep
    rising across the whole CPU grid — with 4 threads the 4- and 8-CPU
    cells tie exactly and every sound tiering policy must replay both.
    """
    return [
        WorkloadSpec(name="synthetic", threads=8, scale=1.0),
        WorkloadSpec(name="prodcons", threads=4, scale=0.05),
        WorkloadSpec(name="fft", threads=8, scale=0.05),
    ]


@dataclass(frozen=True)
class _GridCell:
    """One calibration point: a config plus its exact margin key."""

    config: SimConfig
    key: str  # "scheduler/binding/Ncpu"
    label: str


def calibration_configs(
    trace_thread_ids: Sequence[int],
    *,
    cpus: Sequence[int] = DEFAULT_GRID_CPUS,
    bindings: Sequence[str] = DEFAULT_BINDINGS,
    schedulers: Optional[Sequence[str]] = None,
) -> List[_GridCell]:
    """Expand the calibration grid for one trace's thread set."""
    if schedulers is None:
        from repro.sched import available_backends

        schedulers = available_backends()
    bound_policies = {int(t): ThreadPolicy(bound=True) for t in trace_thread_ids}
    cells: List[_GridCell] = []
    for sched in schedulers:
        for binding in bindings:
            policies = bound_policies if binding == "bound" else {}
            for n in cpus:
                cells.append(
                    _GridCell(
                        config=SimConfig(
                            cpus=n,
                            thread_policies=policies,
                            scheduler=sched,
                        ),
                        key=f"{sched}/{binding}/{n}cpu",
                        label=f"{n}cpu/{binding}/{sched}",
                    )
                )
    return cells


def _record_suite(
    specs: Sequence[WorkloadSpec],
    progress: Optional[Callable[[str], None]] = None,
):
    """Record each spec's monitored trace (deterministic, fast)."""
    from repro.program.uniexec import record_program
    from repro.workloads import get_workload

    out = []
    for spec in specs:
        if progress:
            progress(
                f"recording {spec.name} (threads={spec.threads}, "
                f"scale={spec.scale})"
            )
        program = get_workload(spec.name).make_program(
            spec.threads, spec.scale, seed=spec.seed
        )
        recording = record_program(program, overhead_us=spec.probe_overhead_us)
        out.append((spec, recording.trace))
    return out


def calibrate_analytic(
    specs: Optional[Sequence[WorkloadSpec]] = None,
    engine=None,
    *,
    cpus: Sequence[int] = DEFAULT_GRID_CPUS,
    bindings: Sequence[str] = DEFAULT_BINDINGS,
    schedulers: Optional[Sequence[str]] = None,
    pad: float = DEFAULT_PAD,
    use_cache: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> AnalyticProfile:
    """Fit interval margins over *specs* × the configuration grid."""
    from repro.jobs.engine import JobEngine
    from repro.jobs.model import TraceRef

    if pad < 0:
        raise CalibrationError(f"pad must be >= 0, got {pad}")
    specs = list(specs) if specs is not None else default_analytic_suite()
    if not specs:
        raise CalibrationError("empty analytic calibration suite")
    own_engine = engine is None
    if own_engine:
        engine = JobEngine(mode="inline")

    try:
        recorded = _record_suite(specs, progress)
        stats_by_name: Dict[str, TraceStats] = {
            spec.name: extract_stats(trace) for spec, trace in recorded
        }

        # one batch of DES ground-truth cells across the whole matrix
        matrix: List[Tuple[object, SimConfig, str]] = []
        cell_meta: List[Tuple[str, _GridCell]] = []
        for spec, trace in recorded:
            ref = TraceRef.from_trace(trace)
            for cell in calibration_configs(
                [int(t) for t in trace.thread_ids()],
                cpus=cpus,
                bindings=bindings,
                schedulers=schedulers,
            ):
                matrix.append((ref, cell.config, f"{spec.name}:{cell.label}"))
                cell_meta.append((spec.name, cell))
        if progress:
            progress(f"simulating {len(matrix)} ground-truth cells")
        outcomes = engine.makespan_matrix(matrix, use_cache=use_cache)

        # observed DES/model ratios, binned per margin level
        ratios: Dict[str, Dict[str, List[float]]] = {}
        for (name, cell), outcome in zip(cell_meta, outcomes):
            if not outcome.ok or not outcome.complete:
                raise CalibrationError(
                    f"ground-truth cell {outcome.label} failed: "
                    f"{outcome.error or outcome.status}"
                )
            stats = stats_by_name[name]
            points = model_points(stats, cell.config)
            # each cell contributes evidence to every level of its own
            # lookup chain, so estimate-time fallbacks stay sound
            keys = margin_key_for(stats, cell.config)
            for model in MODEL_NAMES:
                point = points[model]
                if point <= 0:
                    raise CalibrationError(
                        f"model {model} produced a non-positive estimate "
                        f"on {outcome.label}"
                    )
                ratio = outcome.makespan_us / point
                for key in keys:
                    ratios.setdefault(key, {}).setdefault(model, []).append(ratio)

        margins = {
            key: {
                model: (
                    min(values) * (1.0 - pad),
                    max(values) * (1.0 + pad),
                )
                for model, values in table.items()
            }
            for key, table in ratios.items()
        }

        profile = AnalyticProfile(
            margins=margins,
            suite=tuple(s.to_dict() for s in specs),
            grid={
                "cpus": list(cpus),
                "bindings": list(bindings),
                "schedulers": list(
                    schedulers
                    if schedulers is not None
                    else sorted({c.config.scheduler for _, c in cell_meta})
                ),
            },
            samples=len(matrix),
            pad=pad,
            engine_version=ENGINE_VERSION,
            analytic_version=ANALYTIC_PROFILE_VERSION,
            created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )

        violations = verify_profile(
            profile,
            engine=engine,
            use_cache=use_cache,
            recorded=recorded,
            outcomes=list(zip(cell_meta, outcomes)),
        )
        if violations:
            raise CalibrationError(
                "calibrated intervals failed to bracket their own suite: "
                + "; ".join(violations[:5])
            )
        return profile
    finally:
        if own_engine:
            engine.close()


def verify_profile(
    profile: AnalyticProfile,
    *,
    engine=None,
    use_cache: bool = True,
    recorded=None,
    outcomes=None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[str]:
    """Check the bracketing invariant on the profile's own suite.

    Re-records the suite and re-simulates the grid (cache-served when
    warm), then asserts ``lo <= DES <= hi`` for every cell.  Returns a
    list of human-readable violations — empty means the profile is
    sound.  *recorded*/*outcomes* let :func:`calibrate_analytic` reuse
    the work it just did.
    """
    from repro.jobs.engine import JobEngine
    from repro.jobs.model import TraceRef

    own_engine = engine is None
    if own_engine:
        engine = JobEngine(mode="inline")
    try:
        if recorded is None:
            specs = [WorkloadSpec.from_dict(s) for s in profile.suite]
            recorded = _record_suite(specs, progress)
        stats_by_name = {
            spec.name: extract_stats(trace) for spec, trace in recorded
        }
        if outcomes is None:
            grid = profile.grid
            matrix = []
            cell_meta = []
            for spec, trace in recorded:
                ref = TraceRef.from_trace(trace)
                for cell in calibration_configs(
                    [int(t) for t in trace.thread_ids()],
                    cpus=grid.get("cpus", DEFAULT_GRID_CPUS),
                    bindings=grid.get("bindings", DEFAULT_BINDINGS),
                    schedulers=grid.get("schedulers"),
                ):
                    matrix.append((ref, cell.config, f"{spec.name}:{cell.label}"))
                    cell_meta.append((spec.name, cell))
            if progress:
                progress(f"verifying {len(matrix)} cells against the DES")
            outcomes = list(
                zip(cell_meta, engine.makespan_matrix(matrix, use_cache=use_cache))
            )

        violations: List[str] = []
        for (name, cell), outcome in outcomes:
            if not outcome.ok or not outcome.complete:
                violations.append(f"{outcome.label}: DES failed ({outcome.status})")
                continue
            interval = estimate_makespan(stats_by_name[name], cell.config, profile)
            if not interval.brackets(outcome.makespan_us):
                violations.append(
                    f"{outcome.label}: DES {outcome.makespan_us}us outside "
                    f"[{interval.lo_us}, {interval.hi_us}]us"
                )
        return violations
    finally:
        if own_engine:
            engine.close()
