"""The versioned analytic-calibration artifact: interval margins on disk.

An :class:`AnalyticProfile` is to the analytical tier what a
:class:`~repro.calib.profile.CalibrationProfile` is to the cost model:
the durable, auditable output of a calibration run.  It records, per
margin key (``scheduler/binding/Ncpu`` down to ``default``) and per
model, the ``(lo, hi)`` ratio band such that

    ``lo * model_point  <=  DES makespan  <=  hi * model_point``

held (with a safety pad) on every cell of the calibration grid, plus the
workload suite and grid that produced the evidence.  Profiles are
deterministic — the suite's programs are seeded and the DES is exact —
so CI can re-derive the same margins and fail if the models drift.

Structural problems (wrong format marker, unknown version, malformed
margins) raise :class:`~repro.core.errors.CalibrationError`, mirroring
the cost-model profile's contract.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import CalibrationError

__all__ = [
    "ANALYTIC_PROFILE_FORMAT",
    "ANALYTIC_PROFILE_VERSION",
    "AnalyticProfile",
    "default_profile_path",
    "load_default_profile",
]

ANALYTIC_PROFILE_FORMAT = "vppb-analytic-profile"
ANALYTIC_PROFILE_VERSION = 1

#: Margin table type: margin key → model name → (lo, hi) ratio band.
Margins = Dict[str, Dict[str, Tuple[float, float]]]


@dataclass(frozen=True)
class AnalyticProfile:
    """Calibrated per-model interval margins plus their provenance."""

    margins: Margins
    #: workload specs (dicts, :class:`~repro.calib.measure.WorkloadSpec`
    #: shape) the margins were fitted against
    suite: Tuple[Dict[str, Any], ...]
    #: the calibration grid axes (cpus / bindings / schedulers)
    grid: Dict[str, Any] = field(default_factory=dict)
    #: calibration cells measured (suite × grid)
    samples: int = 0
    #: relative safety pad applied beyond the observed ratio range
    pad: float = 0.0
    engine_version: int = 0
    analytic_version: int = 0
    created: str = ""
    version: int = ANALYTIC_PROFILE_VERSION

    def __post_init__(self) -> None:
        if not self.margins:
            raise CalibrationError("analytic profile has no margin tables")
        if "default" not in self.margins:
            raise CalibrationError(
                "analytic profile is missing the 'default' margin table"
            )
        for key, table in self.margins.items():
            for model, band in table.items():
                lo, hi = band
                if not (0.0 < lo <= hi):
                    raise CalibrationError(
                        f"bad margin band for {key!r}/{model!r}: "
                        f"({lo!r}, {hi!r})"
                    )

    # ------------------------------------------------------------------

    def margin(
        self, model: str, key_chain: Sequence[str]
    ) -> Tuple[float, float, str]:
        """``(lo, hi, key)`` for *model*, trying *key_chain* in order."""
        for key in key_chain:
            table = self.margins.get(key)
            if table is not None and model in table:
                lo, hi = table[model]
                return lo, hi, key
        table = self.margins["default"]
        if model not in table:
            raise CalibrationError(
                f"analytic profile has no margins for model {model!r}"
            )
        lo, hi = table[model]
        return lo, hi, "default"

    def fingerprint(self) -> str:
        """Content hash — part of every analytic job's fingerprint, so
        re-calibrating invalidates previously cached analytic answers."""
        text = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": ANALYTIC_PROFILE_FORMAT,
            "version": self.version,
            "engine_version": self.engine_version,
            "analytic_version": self.analytic_version,
            "created": self.created,
            "pad": self.pad,
            "samples": self.samples,
            "grid": self.grid,
            "suite": list(self.suite),
            "margins": {
                key: {model: list(band) for model, band in sorted(table.items())}
                for key, table in sorted(self.margins.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnalyticProfile":
        if not isinstance(data, dict):
            raise CalibrationError("analytic profile must be a JSON object")
        if data.get("format") != ANALYTIC_PROFILE_FORMAT:
            raise CalibrationError(
                f"not an analytic profile (format {data.get('format')!r}, "
                f"expected {ANALYTIC_PROFILE_FORMAT!r})"
            )
        version = data.get("version")
        if version != ANALYTIC_PROFILE_VERSION:
            raise CalibrationError(
                f"unsupported analytic profile version {version!r} "
                f"(this build reads version {ANALYTIC_PROFILE_VERSION})"
            )
        raw_margins = data.get("margins")
        if not isinstance(raw_margins, dict):
            raise CalibrationError("analytic profile 'margins' must be an object")
        margins: Margins = {}
        for key, table in raw_margins.items():
            if not isinstance(table, dict):
                raise CalibrationError(f"margin table {key!r} must be an object")
            out: Dict[str, Tuple[float, float]] = {}
            for model, band in table.items():
                try:
                    lo, hi = float(band[0]), float(band[1])
                except (TypeError, ValueError, IndexError) as exc:
                    raise CalibrationError(
                        f"bad margin band for {key!r}/{model!r}: {band!r}"
                    ) from exc
                out[str(model)] = (lo, hi)
            margins[str(key)] = out
        return cls(
            margins=margins,
            suite=tuple(dict(s) for s in data.get("suite", [])),
            grid=dict(data.get("grid", {})),
            samples=int(data.get("samples", 0)),
            pad=float(data.get("pad", 0.0)),
            engine_version=int(data.get("engine_version", 0)),
            analytic_version=int(data.get("analytic_version", 0)),
            created=str(data.get("created", "")),
            version=int(version),
        )

    @classmethod
    def from_json(cls, text: str) -> "AnalyticProfile":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise CalibrationError(f"analytic profile is not valid JSON: {exc}")
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "AnalyticProfile":
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CalibrationError(f"cannot read analytic profile {path}: {exc}")
        return cls.from_json(text)


def default_profile_path() -> Optional[Path]:
    """Where the stock analytic profile lives, if anywhere.

    ``VPPB_ANALYTIC_PROFILE`` overrides; otherwise the repo-checkout
    location ``profiles/analytic.json`` is probed.
    """
    env = os.environ.get("VPPB_ANALYTIC_PROFILE")
    if env:
        return Path(env)
    candidate = Path(__file__).resolve().parents[3] / "profiles" / "analytic.json"
    return candidate if candidate.is_file() else None


def load_default_profile() -> Optional[AnalyticProfile]:
    """The committed/stock profile, or ``None`` when not available."""
    path = default_profile_path()
    if path is None or not path.is_file():
        return None
    return AnalyticProfile.load(path)
