"""``vppb serve`` — a local batch-prediction service over the job engine.

Stdlib-only (``http.server``): a :class:`ThreadingHTTPServer` whose
request threads submit jobs to the shared :class:`JobEngine`, so the
engine's backpressure bound is the service's admission control — when
the pool is saturated, request threads block in ``submit`` and clients
see latency, never an unbounded in-memory queue.

API (all bodies JSON unless noted):

``POST /traces``
    Body: a raw VPPB log file.  Parses it (400 on malformed logs),
    spools it under its content fingerprint, returns
    ``{"trace": <fingerprint>, "events": n, "threads": n}``.  Uploading
    the same trace twice is idempotent.
``POST /predict``
    Body: ``{"trace": <fingerprint>}`` (previously uploaded) or
    ``{"log": <raw log text>}`` (one-shot), plus optional ``cpus``
    (list, default ``[2, 4, 8]``), ``lwps``, ``comm_delay_us`` and
    ``binding`` (``"unbound"``/``"bound"``).  Returns the speed-up
    predictions; repeated requests are served from the result cache.
``GET /metrics``
    Engine + cache + service counters (queue depth, jobs
    completed/failed, cache hit rate, latency percentiles).
``GET /healthz``
    Liveness probe.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.core.config import SimConfig, ThreadPolicy
from repro.core.errors import ConfigError, VppbError
from repro.jobs.engine import JobEngine
from repro.jobs.model import TraceRef

__all__ = ["PredictionService", "make_server", "serve"]

_MAX_BODY_BYTES = 64 * 1024 * 1024  # a §4-sized log is ~15 MB


class ServiceError(Exception):
    """Maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class PredictionService:
    """The service state: an engine, a trace spool, request counters."""

    def __init__(self, engine: JobEngine, *, spool_dir: Optional[Path] = None):
        import tempfile

        self.engine = engine
        self.spool_dir = Path(
            spool_dir if spool_dir is not None else tempfile.mkdtemp(prefix="vppb-spool-")
        )
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self._traces: Dict[str, Path] = {}
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0

    # ------------------------------------------------------------------

    def store_trace(self, text: str) -> Dict[str, Any]:
        from repro.recorder import logfile

        try:
            trace = logfile.loads(text)
        except VppbError as exc:
            raise ServiceError(400, f"malformed log: {exc}")
        ref = TraceRef.from_trace(trace)
        path = self.spool_dir / f"{ref.fingerprint}.log"
        if not path.exists():
            path.write_text(text, encoding="utf-8")
        with self._lock:
            self._traces[ref.fingerprint] = path
        return {
            "trace": ref.fingerprint,
            "events": len(trace),
            "threads": len(trace.thread_ids()),
            "program": trace.meta.program,
        }

    def _resolve_trace(self, request: Dict[str, Any]) -> Tuple[TraceRef, Any]:
        from repro.recorder import logfile

        if "log" in request:
            try:
                trace = logfile.loads(request["log"])
            except VppbError as exc:
                raise ServiceError(400, f"malformed log: {exc}")
            return TraceRef.from_trace(trace), trace
        fp = request.get("trace")
        if not fp:
            raise ServiceError(400, "request needs 'trace' (fingerprint) or 'log'")
        with self._lock:
            path = self._traces.get(fp)
        if path is None:
            raise ServiceError(404, f"unknown trace {fp!r}; POST it to /traces first")
        trace = logfile.load(path)
        return TraceRef(fingerprint=fp, path=str(path)), trace

    def predict(self, request: Dict[str, Any]) -> Dict[str, Any]:
        ref, trace = self._resolve_trace(request)
        cpus = request.get("cpus", [2, 4, 8])
        if not isinstance(cpus, list) or not cpus:
            raise ServiceError(400, "'cpus' must be a non-empty list")
        try:
            cpus = [int(n) for n in cpus]
        except (TypeError, ValueError):
            raise ServiceError(400, f"bad 'cpus' list: {cpus!r}")
        binding = request.get("binding", "unbound")
        if binding not in ("unbound", "bound"):
            raise ServiceError(400, f"unknown binding {binding!r}")
        policies = (
            {int(t): ThreadPolicy(bound=True) for t in trace.thread_ids()}
            if binding == "bound"
            else {}
        )
        try:
            base = SimConfig(
                lwps=request.get("lwps"),
                comm_delay_us=int(request.get("comm_delay_us", 0)),
                thread_policies=policies,
            )
        except (ConfigError, TypeError, ValueError) as exc:
            raise ServiceError(400, f"bad configuration: {exc}")
        try:
            predictions = self.engine.predict_speedups(
                trace, cpus, base_config=base, trace_ref=ref
            )
        except VppbError as exc:
            raise ServiceError(422, f"prediction failed: {exc}")
        return {
            "trace": ref.fingerprint,
            "program": trace.meta.program,
            "binding": binding,
            "predictions": [
                {
                    "cpus": p.cpus,
                    "speedup": round(p.speedup, 6),
                    "makespan_us": p.makespan_us,
                    "uniprocessor_us": p.uniprocessor_us,
                }
                for p in predictions
            ],
        }

    def metrics(self) -> Dict[str, Any]:
        snapshot = self.engine.metrics.snapshot(self.engine.cache.stats())
        with self._lock:
            snapshot["service"] = {
                "requests": self.requests,
                "errors": self.errors,
                "traces_spooled": len(self._traces),
            }
        return snapshot

    def count_request(self, *, error: bool) -> None:
        with self._lock:
            self.requests += 1
            if error:
                self.errors += 1


class _Handler(BaseHTTPRequestHandler):
    server: "_Server"

    # -- plumbing -------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise ServiceError(413, f"body larger than {_MAX_BODY_BYTES} bytes")
        return self.rfile.read(length)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        try:
            if method == "GET" and self.path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif method == "GET" and self.path == "/metrics":
                self._send_json(200, service.metrics())
            elif method == "POST" and self.path == "/traces":
                text = self._read_body().decode("utf-8", errors="replace")
                self._send_json(200, service.store_trace(text))
            elif method == "POST" and self.path == "/predict":
                try:
                    request = json.loads(self._read_body() or b"{}")
                except ValueError as exc:
                    raise ServiceError(400, f"body is not valid JSON: {exc}")
                self._send_json(200, service.predict(request))
            else:
                raise ServiceError(404, f"no such endpoint: {method} {self.path}")
        except ServiceError as exc:
            service.count_request(error=True)
            self._send_json(exc.status, {"error": exc.message})
            return
        service.count_request(error=False)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


class _Server(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, service: PredictionService, *, verbose: bool = False):
        self.service = service
        self.verbose = verbose
        super().__init__(address, _Handler)


def make_server(
    service: PredictionService,
    *,
    host: str = "127.0.0.1",
    port: int = 8123,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bind the service (``port=0`` picks a free port; see ``server_port``)."""
    return _Server((host, port), service, verbose=verbose)


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8123,
    engine: Optional[JobEngine] = None,
    spool_dir: Optional[Path] = None,
    verbose: bool = True,
) -> None:
    """Run the service until interrupted (the ``vppb serve`` entry point)."""
    engine = engine or JobEngine()
    service = PredictionService(engine, spool_dir=spool_dir)
    server = make_server(service, host=host, port=port, verbose=verbose)
    print(
        f"vppb serve: listening on http://{host}:{server.server_port} "
        f"({engine.mode} engine, {engine.workers} workers); Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("vppb serve: shutting down")
    finally:
        server.server_close()
        engine.close()
