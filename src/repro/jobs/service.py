"""The prediction-service core, plus the legacy threaded front end.

:class:`PredictionService` owns everything transport-independent —
trace spool, request parsing, the deadline/breaker-aware ``predict``
path, error envelopes, counters — and is shared by both front ends:
the asyncio server in :mod:`repro.jobs.service_async` (the ``vppb
serve`` default: admission control, streaming ingest, graceful drain)
and the stdlib ``http.server`` one kept here (``vppb serve --legacy``).
Because the core is shared, both speak identical HTTP: same status
codes, same JSON bodies, same ``Retry-After`` semantics.

API (all bodies JSON unless noted):

``POST /traces``
    Body: a raw VPPB log file.  Parses it (400 on malformed logs),
    spools it under its content fingerprint, returns
    ``{"trace": <fingerprint>, "events": n, "threads": n}``.  Uploading
    the same trace twice is idempotent.  (The async front end parses
    this leniently via salvage, and streams.)
``POST /predict``
    Body: ``{"trace": <fingerprint>}`` (previously uploaded) or
    ``{"log": <raw log text>}`` (one-shot), plus optional ``cpus``
    (list, default ``[2, 4, 8]``), ``lwps``, ``comm_delay_us``,
    ``binding`` (``"unbound"``/``"bound"``) and ``scheduler`` (a
    backend name, default ``"solaris"``).  Returns the speed-up
    predictions; repeated requests are served from the result cache.
    With a deadline (``deadline_s`` key, or front-end default), expiry
    returns 504 carrying a partial-result envelope.
    Optional ``tier`` (``"sim"`` default / ``"analytic"`` / ``"auto"``)
    answers cells from the calibrated analytic screen instead of — or,
    for ``auto``, in front of — full simulation; needs the stock
    calibration profile (``vppb calibrate-analytic``).  Tiered
    responses add per-cell ``tier``/``interval`` fields and a
    ``decisions`` block (best cell, per-group knee at the optional
    ``target`` fraction).  A tiered request's deadline covers its
    simulated cells (baseline + escalations) exactly like ``tier=sim``;
    analytic cells are arithmetic and never time out.
``POST /lint``
    Body: ``{"trace": <fingerprint>}`` or ``{"log": <raw text>}``, plus
    optional ``select``/``ignore`` rule lists and an optional ``whatif``
    grid (``cpus``/``bindings``/``lwps``/``comm_delay_us``).  Returns
    the static synchronisation findings — with a ``whatif`` grid, each
    race/deadlock is additionally tagged with the machine configs it
    concretely manifests under (content-addressed lint probes through
    the same engine and cache as predictions).
``GET /metrics``
    Engine + cache + service counters (queue depth, jobs
    completed/failed, cache hit rate, latency percentiles, breaker
    state, shed/deadline/body-cap counts, lint requests/probes).
``GET /healthz``
    Liveness probe.  (Readiness lives on the async front end.)
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import SimConfig, ThreadPolicy
from repro.core.errors import ConfigError, VppbError
from repro.jobs.engine import JobEngine
from repro.jobs.model import JobOutcome, TraceRef

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "DeadlineExceeded",
    "PredictionService",
    "ServiceError",
    "default_max_body_bytes",
    "make_server",
    "serve",
]

#: Default request-body cap; a §4-sized log is ~15 MB.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024


def default_max_body_bytes() -> int:
    """``$VPPB_MAX_BODY_BYTES`` (bytes), else :data:`DEFAULT_MAX_BODY_BYTES`."""
    env = os.environ.get("VPPB_MAX_BODY_BYTES")
    if env:
        try:
            value = int(env)
            if value >= 1:
                return value
        except ValueError:
            pass
    return DEFAULT_MAX_BODY_BYTES


class ServiceError(Exception):
    """Maps straight to an HTTP error response.

    ``retry_after_s`` (for 429/503) becomes a ``Retry-After`` header;
    ``extra`` keys are merged into the JSON error body.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        retry_after_s: Optional[float] = None,
        extra: Optional[Dict[str, Any]] = None,
    ):
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s
        self.extra = extra
        super().__init__(message)

    def body(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"error": self.message}
        if self.extra:
            payload.update(self.extra)
        return payload


class DeadlineExceeded(ServiceError):
    """A per-request deadline ran out; 504 with a partial-result envelope.

    ``partial`` carries whatever the watchdog salvaged: predictions for
    the grid cells that completed inside the budget, plus the simulated
    progress of the cells that did not.
    """

    def __init__(self, message: str, *, partial: Optional[Dict[str, Any]] = None):
        super().__init__(
            504, message, extra={"partial": partial} if partial else None
        )
        self.partial = partial


class PredictionService:
    """The service state: an engine, a trace spool, request counters.

    Shared by both front ends — the legacy threaded server below and
    the asyncio server in :mod:`repro.jobs.service_async` — so HTTP
    semantics (status codes, error bodies, deadline envelopes) are
    identical regardless of transport.
    """

    def __init__(
        self,
        engine: JobEngine,
        *,
        spool_dir: Optional[Path] = None,
        max_body_bytes: Optional[int] = None,
    ):
        import tempfile

        self.engine = engine
        self.max_body_bytes = (
            max_body_bytes if max_body_bytes is not None else default_max_body_bytes()
        )
        self.spool_dir = Path(
            spool_dir if spool_dir is not None else tempfile.mkdtemp(prefix="vppb-spool-")
        )
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self._traces: Dict[str, Path] = {}
        self._lock = threading.Lock()
        #: lazily resolved stock AnalyticProfile (False = not yet tried)
        self._analytic_profile: Any = False
        self.requests = 0
        self.errors = 0
        self.requests_shed = 0
        self.deadline_timeouts = 0
        self.bodies_rejected = 0
        self.streamed_uploads = 0
        self.lint_requests = 0

    # ------------------------------------------------------------------

    def _spool(self, ref: TraceRef, text: str) -> Path:
        path = self.spool_dir / f"{ref.fingerprint}.log"
        if not path.exists():
            path.write_text(text, encoding="utf-8")
        with self._lock:
            self._traces[ref.fingerprint] = path
        return path

    def store_trace(self, text: str) -> Dict[str, Any]:
        from repro.recorder import logfile

        try:
            trace = logfile.loads(text)
        except VppbError as exc:
            raise ServiceError(400, f"malformed log: {exc}")
        ref = TraceRef.from_trace(trace)
        self._spool(ref, text)
        return {
            "trace": ref.fingerprint,
            "events": len(trace),
            "threads": len(trace.thread_ids()),
            "program": trace.meta.program,
        }

    def store_salvaged(self, result) -> Dict[str, Any]:
        """Spool a streamed-and-salvaged upload (a :class:`SalvageResult`).

        The streaming ingest path parses leniently — a damaged log is
        accepted if anything is replayable, and the response reports
        every repair count so the client knows what it uploaded.
        """
        from repro.recorder import logfile

        trace = result.trace
        if len(trace) == 0:
            raise ServiceError(
                400,
                "nothing salvageable in the uploaded log: "
                + result.report.summary(),
            )
        text = logfile.dumps(trace)
        ref = TraceRef.from_trace(trace)
        self._spool(ref, text)
        with self._lock:
            self.streamed_uploads += 1
        return {
            "trace": ref.fingerprint,
            "events": len(trace),
            "threads": len(trace.thread_ids()),
            "program": trace.meta.program,
            "salvage": {
                "clean": result.report.clean,
                "repairs": len(result.report.repairs),
                "records_kept": result.report.records_kept,
                "counts": result.report.counts_by_kind(),
            },
        }

    def _resolve_trace(self, request: Dict[str, Any]) -> Tuple[TraceRef, Any]:
        from repro.recorder import logfile

        if "log" in request:
            try:
                trace = logfile.loads(request["log"])
            except VppbError as exc:
                raise ServiceError(400, f"malformed log: {exc}")
            return TraceRef.from_trace(trace), trace
        fp = request.get("trace")
        if not fp:
            raise ServiceError(400, "request needs 'trace' (fingerprint) or 'log'")
        with self._lock:
            path = self._traces.get(fp)
        if path is None:
            raise ServiceError(404, f"unknown trace {fp!r}; POST it to /traces first")
        trace = logfile.load(path)
        return TraceRef(fingerprint=fp, path=str(path)), trace

    def _parse_predict(
        self, request: Dict[str, Any], trace
    ) -> Tuple[List[int], str, SimConfig]:
        cpus = request.get("cpus", [2, 4, 8])
        if not isinstance(cpus, list) or not cpus:
            raise ServiceError(400, "'cpus' must be a non-empty list")
        try:
            cpus = [int(n) for n in cpus]
        except (TypeError, ValueError):
            raise ServiceError(400, f"bad 'cpus' list: {cpus!r}")
        binding = request.get("binding", "unbound")
        if binding not in ("unbound", "bound"):
            raise ServiceError(400, f"unknown binding {binding!r}")
        policies = (
            {int(t): ThreadPolicy(bound=True) for t in trace.thread_ids()}
            if binding == "bound"
            else {}
        )
        try:
            base = SimConfig(
                lwps=request.get("lwps"),
                comm_delay_us=int(request.get("comm_delay_us", 0)),
                thread_policies=policies,
                scheduler=request.get("scheduler", "solaris"),
            )
        except (ConfigError, TypeError, ValueError) as exc:
            raise ServiceError(400, f"bad configuration: {exc}")
        return cpus, binding, base

    def analytic_profile(self):
        """The calibration profile backing tiered requests, or a 400.

        Resolved once per service from ``VPPB_ANALYTIC_PROFILE`` / the
        repo's committed ``profiles/analytic.json`` (see
        :func:`repro.analytic.profile.load_default_profile`).
        """
        from repro.analytic.profile import load_default_profile
        from repro.core.errors import CalibrationError

        with self._lock:
            if self._analytic_profile is False:
                try:
                    self._analytic_profile = load_default_profile()
                except CalibrationError as exc:
                    raise ServiceError(400, f"bad analytic profile: {exc}")
            profile = self._analytic_profile
        if profile is None:
            raise ServiceError(
                400,
                "tiered prediction needs an analytic calibration profile; "
                "run 'vppb calibrate-analytic' or set VPPB_ANALYTIC_PROFILE",
            )
        return profile

    def check_breaker(self) -> None:
        """503 + ``Retry-After`` while the engine's breaker refuses work."""
        breaker = self.engine.breaker
        if breaker is None:
            return
        retry_after = breaker.reject_for()
        if retry_after is not None:
            raise ServiceError(
                503,
                "service unavailable: circuit breaker open after repeated "
                "worker crashes",
                retry_after_s=max(0.1, retry_after),
                extra={"breaker": breaker.snapshot()},
            )

    def predict(
        self, request: Dict[str, Any], *, deadline_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """Answer one prediction request.

        With *deadline_s* set, every simulation cell runs under a
        watchdog wall budget of the remaining deadline; cells the
        watchdog had to cut short surface as a
        :class:`DeadlineExceeded` (HTTP 504) carrying the partial
        envelope rather than a silent half-answer.
        """
        ref, trace = self._resolve_trace(request)
        cpus, binding, base = self._parse_predict(request, trace)
        tier = request.get("tier", "sim")
        if tier not in ("sim", "analytic", "auto"):
            raise ServiceError(
                400, f"unknown tier {tier!r}: expected 'sim', 'analytic' or 'auto'"
            )
        self.check_breaker()
        if tier != "sim":
            return self._predict_tiered(
                ref, trace, cpus, binding, base, tier, request, deadline_s
            )
        if deadline_s is None:
            try:
                predictions = self.engine.predict_speedups(
                    trace, cpus, base_config=base, trace_ref=ref
                )
            except VppbError as exc:
                raise ServiceError(422, f"prediction failed: {exc}")
            return {
                "trace": ref.fingerprint,
                "program": trace.meta.program,
                "binding": binding,
                "predictions": [
                    {
                        "cpus": p.cpus,
                        "speedup": round(p.speedup, 6),
                        "makespan_us": p.makespan_us,
                        "uniprocessor_us": p.uniprocessor_us,
                    }
                    for p in predictions
                ],
            }
        return self._predict_with_deadline(
            ref, trace, cpus, binding, base, deadline_s
        )

    def _predict_with_deadline(
        self, ref, trace, cpus, binding, base, deadline_s
    ) -> Dict[str, Any]:
        from repro.program.uniexec import uniprocessor_config

        if deadline_s <= 0:
            raise ServiceError(400, f"bad deadline {deadline_s!r}: must be > 0")
        configs = [uniprocessor_config(base)] + [base.with_cpus(n) for n in cpus]
        labels = ["baseline"] + [f"{n}cpu" for n in cpus]
        max_events = self.engine.job_budget[0]
        outcomes = self.engine.makespans(
            ref, configs, labels=labels, budget=(max_events, deadline_s)
        )
        broken = [o for o in outcomes if not o.ok]
        if broken:
            rejected = [
                o for o in broken if o.status == JobOutcome.BREAKER_OPEN
            ]
            if rejected:
                # While half-open the breaker admits a single probe, so
                # the other grid cells come back BREAKER_OPEN even when
                # the probe succeeds (closing the breaker).  That is a
                # transient refusal, never a client error: always answer
                # 503 + Retry-After so the client retries the full grid.
                self.check_breaker()  # raises with the live cooldown while open
                breaker = self.engine.breaker
                raise ServiceError(
                    503,
                    "service unavailable: circuit breaker refused "
                    + ", ".join(o.label for o in rejected)
                    + " while recovering from worker crashes; retry shortly",
                    retry_after_s=1.0,
                    extra=(
                        {"breaker": breaker.snapshot()}
                        if breaker is not None
                        else None
                    ),
                )
            raise ServiceError(
                422,
                "prediction failed: "
                + "; ".join(f"{o.label}: {o.error}" for o in broken),
            )
        baseline, rest = outcomes[0], outcomes[1:]
        partial_cells = [o for o in outcomes if not o.complete]
        if not partial_cells:
            return {
                "trace": ref.fingerprint,
                "program": trace.meta.program,
                "binding": binding,
                "predictions": [
                    {
                        "cpus": n,
                        "speedup": round(baseline.makespan_us / o.makespan_us, 6)
                        if o.makespan_us
                        else None,
                        "makespan_us": o.makespan_us,
                        "uniprocessor_us": baseline.makespan_us,
                    }
                    for n, o in zip(cpus, rest)
                ],
            }
        # the watchdog salvaged at least one cell: 504 + what we have
        with self._lock:
            self.deadline_timeouts += 1
        envelope: Dict[str, Any] = {
            "trace": ref.fingerprint,
            "program": trace.meta.program,
            "binding": binding,
            "deadline_s": deadline_s,
            "predictions": [
                {
                    "cpus": n,
                    "speedup": round(baseline.makespan_us / o.makespan_us, 6),
                    "makespan_us": o.makespan_us,
                    "uniprocessor_us": baseline.makespan_us,
                }
                for n, o in zip(cpus, rest)
                if o.complete and baseline.complete and o.makespan_us
            ],
            "incomplete": [
                {
                    "label": o.label,
                    "status": o.status,
                    "reason": o.reason,
                    "simulated_us": o.makespan_us,
                    "engine_events": o.engine_events,
                }
                for o in partial_cells
            ],
        }
        raise DeadlineExceeded(
            f"deadline of {deadline_s}s exceeded; "
            f"{len(partial_cells)}/{len(outcomes)} cells salvaged as partial",
            partial=envelope,
        )

    def _predict_tiered(
        self, ref, trace, cpus, binding, base, tier, request, deadline_s
    ) -> Dict[str, Any]:
        """Tiered ``/predict``: analytic intervals, simulate only to decide.

        The baseline is always simulated (every speed-up divides by it);
        grid cells are answered analytically and, under ``tier=auto``,
        escalated to simulation only where the intervals cannot decide
        the best-cell and knee queries (:mod:`repro.jobs.tiering`).  A
        deadline applies to the simulated cells just like ``tier=sim``:
        timed-out cells surface as a 504 partial envelope.
        """
        from repro.jobs.model import AnalyticJob
        from repro.jobs.tiering import (
            DEFAULT_TARGET_FRACTION,
            TierCell,
            decide,
            escalation_labels,
        )
        from repro.program.uniexec import uniprocessor_config

        if deadline_s is not None and deadline_s <= 0:
            raise ServiceError(400, f"bad deadline {deadline_s!r}: must be > 0")
        target = request.get("target", DEFAULT_TARGET_FRACTION)
        try:
            target = float(target)
        except (TypeError, ValueError):
            raise ServiceError(400, f"bad 'target' {target!r}: must be a number")
        if not 0.0 < target <= 1.0:
            raise ServiceError(400, f"bad 'target' {target!r}: must be in (0, 1]")
        profile = self.analytic_profile()

        budget = (
            (self.engine.job_budget[0], deadline_s) if deadline_s is not None else None
        )
        baseline_job_outcomes = self.engine.makespans(
            ref, [uniprocessor_config(base)], labels=["baseline"], budget=budget
        )
        baseline = baseline_job_outcomes[0]
        if not baseline.ok:
            raise ServiceError(422, f"prediction failed: baseline: {baseline.error}")
        if not baseline.complete:
            with self._lock:
                self.deadline_timeouts += 1
            raise DeadlineExceeded(
                f"deadline of {deadline_s}s exceeded while replaying the "
                "uniprocessor baseline; no cells answered",
                partial={
                    "trace": ref.fingerprint,
                    "program": trace.meta.program,
                    "binding": binding,
                    "deadline_s": deadline_s,
                    "predictions": [],
                    "incomplete": [
                        {
                            "label": baseline.label,
                            "status": baseline.status,
                            "reason": baseline.reason,
                            "simulated_us": baseline.makespan_us,
                            "engine_events": baseline.engine_events,
                        }
                    ],
                },
            )

        ana_jobs = [
            AnalyticJob(
                trace=ref,
                config=base.with_cpus(n),
                profile=profile,
                label=f"{n}cpu",
            )
            for n in cpus
        ]
        ana_outcomes = self.engine.run(ana_jobs)
        cells: Dict[str, Dict[str, Any]] = {}
        tier_cells: List[TierCell] = []
        for n, outcome in zip(cpus, ana_outcomes):
            if not outcome.ok:
                raise ServiceError(
                    422, f"prediction failed: {outcome.label}: {outcome.error}"
                )
            lo = int(outcome.payload["lo_us"])
            hi = int(outcome.payload["hi_us"])
            cells[outcome.label] = {
                "cpus": n,
                "makespan_us": outcome.makespan_us,
                "tier": "analytic",
                "interval": [lo, hi],
            }
            tier_cells.append(
                TierCell(
                    label=outcome.label,
                    group=binding,
                    cpus=n,
                    lo_us=lo,
                    hi_us=hi,
                    point_us=outcome.makespan_us,
                    exact=False,
                )
            )

        escalated: List[str] = []
        if tier == "auto":
            escalated = escalation_labels(
                tier_cells, baseline.makespan_us, target_fraction=target
            )
            if escalated:
                by_label = {f"{n}cpu": n for n in cpus}
                sim_outcomes = self.engine.makespans(
                    ref,
                    [base.with_cpus(by_label[lbl]) for lbl in escalated],
                    labels=escalated,
                    budget=budget,
                )
                broken = [o for o in sim_outcomes if not o.ok]
                if broken:
                    raise ServiceError(
                        422,
                        "prediction failed: "
                        + "; ".join(f"{o.label}: {o.error}" for o in broken),
                    )
                partial = [o for o in sim_outcomes if not o.complete]
                if partial:
                    with self._lock:
                        self.deadline_timeouts += 1
                    raise DeadlineExceeded(
                        f"deadline of {deadline_s}s exceeded while escalating "
                        f"{len(partial)}/{len(escalated)} undecidable cells",
                        partial={
                            "trace": ref.fingerprint,
                            "program": trace.meta.program,
                            "binding": binding,
                            "deadline_s": deadline_s,
                            "predictions": [
                                dict(
                                    cells[lbl],
                                    speedup=round(
                                        baseline.makespan_us
                                        / cells[lbl]["makespan_us"],
                                        6,
                                    )
                                    if cells[lbl]["makespan_us"]
                                    else None,
                                    uniprocessor_us=baseline.makespan_us,
                                )
                                for lbl in cells
                            ],
                            "incomplete": [
                                {
                                    "label": o.label,
                                    "status": o.status,
                                    "reason": o.reason,
                                    "simulated_us": o.makespan_us,
                                    "engine_events": o.engine_events,
                                }
                                for o in partial
                            ],
                        },
                    )
                for outcome in sim_outcomes:
                    cell = cells[outcome.label]
                    cell["makespan_us"] = outcome.makespan_us
                    cell["tier"] = "escalated"
        self.engine.metrics.tier_outcome(
            analytic_hits=len(cells) - len(escalated),
            escalations=len(escalated),
        )

        final_cells = [
            TierCell(
                label=lbl,
                group=binding,
                cpus=cell["cpus"],
                lo_us=cell["makespan_us"]
                if cell["tier"] == "escalated"
                else cell["interval"][0],
                hi_us=cell["makespan_us"]
                if cell["tier"] == "escalated"
                else cell["interval"][1],
                point_us=cell["makespan_us"],
                exact=cell["tier"] == "escalated",
            )
            for lbl, cell in cells.items()
        ]
        return {
            "trace": ref.fingerprint,
            "program": trace.meta.program,
            "binding": binding,
            "tier": tier,
            "predictions": [
                {
                    "cpus": cell["cpus"],
                    "speedup": round(
                        baseline.makespan_us / cell["makespan_us"], 6
                    )
                    if cell["makespan_us"]
                    else None,
                    "makespan_us": cell["makespan_us"],
                    "uniprocessor_us": baseline.makespan_us,
                    "tier": cell["tier"],
                    "interval": cell["interval"],
                }
                for cell in cells.values()
            ],
            "decisions": decide(
                final_cells, baseline.makespan_us, target_fraction=target
            ),
        }

    def lint(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one lint request, optionally predictive.

        Request: ``trace`` (fingerprint) or ``log`` (raw text), optional
        ``select``/``ignore`` rule-id lists, optional ``whatif`` — a
        sweep-manifest grid (``cpus``, ``bindings``, ``lwps``,
        ``comm_delay_us``; no ``trace`` key needed) whose configs each
        finding is probed under via the engine's cached lint jobs.
        """
        from repro.analysis.lint import run_lint, whatif_lint
        from repro.core.errors import AnalysisError

        ref, trace = self._resolve_trace(request)
        try:
            report = run_lint(
                trace,
                select=request.get("select"),
                ignore=request.get("ignore"),
            )
        except AnalysisError as exc:
            raise ServiceError(400, f"bad lint request: {exc}")

        body: Dict[str, Any] = {"trace": ref.fingerprint}
        grid_spec = request.get("whatif")
        if grid_spec is not None:
            from repro.jobs.manifest import SweepManifest

            if not isinstance(grid_spec, dict):
                raise ServiceError(
                    400, "'whatif' must be an object (a sweep-manifest grid)"
                )
            data = dict(grid_spec)
            data.setdefault("trace", f"{ref.fingerprint}.log")
            try:
                manifest = SweepManifest.from_dict(data)
            except AnalysisError as exc:
                raise ServiceError(400, f"bad 'whatif' grid: {exc}")
            self.check_breaker()
            try:
                result = whatif_lint(
                    trace, manifest, report=report, engine=self.engine
                )
            except VppbError as exc:
                raise ServiceError(422, f"lint grid failed: {exc}")
            report = result.report
            body["grid"] = [c.to_dict() for c in result.cells]
        body.update(report.to_dict())
        with self._lock:
            self.lint_requests += 1
        return body

    def metrics(self) -> Dict[str, Any]:
        snapshot = self.engine.snapshot()
        with self._lock:
            snapshot["service"] = {
                "requests": self.requests,
                "errors": self.errors,
                "traces_spooled": len(self._traces),
                "requests_shed": self.requests_shed,
                "deadline_timeouts": self.deadline_timeouts,
                "bodies_rejected": self.bodies_rejected,
                "streamed_uploads": self.streamed_uploads,
                "lint_requests": self.lint_requests,
            }
        return snapshot

    def count_request(self, *, error: bool) -> None:
        with self._lock:
            self.requests += 1
            if error:
                self.errors += 1

    def count_shed(self) -> None:
        with self._lock:
            self.requests_shed += 1

    def count_rejected_body(self) -> None:
        with self._lock:
            self.bodies_rejected += 1


class _Handler(BaseHTTPRequestHandler):
    server: "_Server"

    # -- plumbing -------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _read_body(self) -> bytes:
        cap = self.server.service.max_body_bytes
        raw = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw)
        except ValueError:
            raise ServiceError(400, f"bad Content-Length: {raw!r}")
        if length < 0:
            raise ServiceError(400, f"bad Content-Length: {raw!r}")
        if length > cap:
            self.server.service.count_rejected_body()
            raise ServiceError(
                413, f"body of {length} bytes exceeds the {cap}-byte cap"
            )
        return self.rfile.read(length)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        *,
        retry_after_s: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", str(max(1, round(retry_after_s))))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        try:
            if method == "GET" and self.path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif method == "GET" and self.path == "/metrics":
                self._send_json(200, service.metrics())
            elif method == "POST" and self.path == "/traces":
                text = self._read_body().decode("utf-8", errors="replace")
                self._send_json(200, service.store_trace(text))
            elif method == "POST" and self.path == "/predict":
                try:
                    request = json.loads(self._read_body() or b"{}")
                except ValueError as exc:
                    raise ServiceError(400, f"body is not valid JSON: {exc}")
                self._send_json(200, service.predict(request))
            elif method == "POST" and self.path == "/lint":
                try:
                    request = json.loads(self._read_body() or b"{}")
                except ValueError as exc:
                    raise ServiceError(400, f"body is not valid JSON: {exc}")
                self._send_json(200, service.lint(request))
            else:
                raise ServiceError(404, f"no such endpoint: {method} {self.path}")
        except ServiceError as exc:
            service.count_request(error=True)
            self._send_json(exc.status, exc.body(), retry_after_s=exc.retry_after_s)
            return
        service.count_request(error=False)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


class _Server(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, service: PredictionService, *, verbose: bool = False):
        self.service = service
        self.verbose = verbose
        super().__init__(address, _Handler)


def make_server(
    service: PredictionService,
    *,
    host: str = "127.0.0.1",
    port: int = 8123,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bind the service (``port=0`` picks a free port; see ``server_port``)."""
    return _Server((host, port), service, verbose=verbose)


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8123,
    engine: Optional[JobEngine] = None,
    spool_dir: Optional[Path] = None,
    verbose: bool = True,
) -> None:
    """Run the service until interrupted (the ``vppb serve`` entry point)."""
    engine = engine or JobEngine()
    service = PredictionService(engine, spool_dir=spool_dir)
    server = make_server(service, host=host, port=port, verbose=verbose)
    print(
        f"vppb serve: listening on http://{host}:{server.server_port} "
        f"({engine.mode} engine, {engine.workers} workers); Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("vppb serve: shutting down")
    finally:
        server.server_close()
        engine.close()
