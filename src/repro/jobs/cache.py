"""Content-addressed result cache: disk store with an in-memory LRU front.

Layout: ``<root>/<fp[:2]>/<fp>.json`` — one JSON document per job
fingerprint, fanned out over 256 subdirectories so a directory never
holds millions of entries.  Each document carries the cache format
version; a version bump makes every old entry unreadable (and the
engine-version component of the fingerprint already re-keys results
whenever simulation semantics change, see
:mod:`repro.jobs.fingerprint`).

The LRU front bounds memory, not correctness: an eviction only costs a
disk read on the next hit.  Writes go through a same-directory temp
file + ``os.replace`` so a crashed writer can never leave a torn entry
for a concurrent reader.

A disk entry that exists but cannot be decoded (truncated JSON, a
mismatched fingerprint, a torn write from a foreign tool) is
*quarantined*: moved to ``<root>/corrupt/`` so it never poisons another
read, counted in :meth:`ResultCache.stats`, and treated as a miss — the
job simply re-runs.

Only *successful* outcomes (complete or partial simulations) are
cached; a failed job (``error`` set) is always retried next time.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

from repro.jobs.model import JobOutcome

__all__ = ["CACHE_FORMAT_VERSION", "ResultCache", "default_cache_dir"]

#: Version of the on-disk entry format.  Bump when the JSON layout of an
#: entry changes; readers ignore entries written under any other version.
CACHE_FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """``$VPPB_CACHE_DIR``, else ``$XDG_CACHE_HOME/vppb``, else ``~/.cache/vppb``."""
    env = os.environ.get("VPPB_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "vppb"


class ResultCache:
    """Job-outcome store keyed by job fingerprint.

    Parameters
    ----------
    root:
        Cache directory (created on first write).  ``None`` makes the
        cache memory-only — useful for tests and for callers that want
        request-scoped dedup without touching disk.
    max_memory_entries:
        Size of the LRU front.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        *,
        max_memory_entries: int = 4096,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError(f"max_memory_entries must be >= 1, got {max_memory_entries}")
        self.root = Path(root) if root is not None else None
        self.max_memory_entries = max_memory_entries
        self._lru: "OrderedDict[str, JobOutcome]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_quarantined = 0

    # ------------------------------------------------------------------

    def _path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[JobOutcome]:
        """The cached outcome for *fingerprint*, or None (counted)."""
        cached = self._lru.get(fingerprint)
        if cached is not None:
            self._lru.move_to_end(fingerprint)
            self.hits += 1
            return cached
        if self.root is not None:
            entry = self._read_disk(fingerprint)
            if entry is not None:
                self._remember(fingerprint, entry)
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def put(self, outcome: JobOutcome) -> None:
        """Store a successful outcome (failed outcomes are not cached)."""
        if not outcome.ok:
            return
        self.stores += 1
        self._remember(outcome.fingerprint, outcome)
        if self.root is None:
            return
        path = self._path_for(outcome.fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "format_version": CACHE_FORMAT_VERSION,
            "outcome": outcome.to_dict(),
        }
        # atomic publish: a reader sees the old entry or the new one,
        # never a partial write
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(document, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------

    def _read_disk(self, fingerprint: str) -> Optional[JobOutcome]:
        path = self._path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except OSError:
            return None  # plain miss: no entry
        except ValueError:
            self._quarantine(path, "undecodable JSON")
            return None
        if not isinstance(document, dict):
            self._quarantine(path, "entry is not a JSON object")
            return None
        if document.get("format_version") != CACHE_FORMAT_VERSION:
            return None  # old format: ignorable, not damage
        try:
            outcome = JobOutcome.from_dict(document["outcome"], from_cache=True)
        except (KeyError, TypeError, ValueError):
            self._quarantine(path, "entry does not decode to a JobOutcome")
            return None
        if outcome.fingerprint != fingerprint:
            self._quarantine(path, "fingerprint mismatch (misplaced entry)")
            return None
        return outcome

    def _quarantine(self, path: Path, why: str) -> None:
        """Move a damaged entry aside so it is diagnosed once, not re-read."""
        dest_dir = self.root / "corrupt"
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest_dir / path.name)
        except OSError:
            # a concurrent reader may have quarantined it first; losing
            # the race (or an unwritable cache) must still read as a miss
            pass
        self.corrupt_quarantined += 1

    def flush(self) -> int:
        """Persist every in-memory entry missing from disk; return count.

        Normal ``put`` writes through immediately, so this only writes
        entries the disk lost underneath us (a cleaned cache directory,
        a quarantined entry whose job later succeeded elsewhere).  The
        graceful-shutdown path calls it so a drained service leaves a
        complete cache behind.  Memory-only caches flush nothing.
        """
        if self.root is None:
            return 0
        written = 0
        for fingerprint, outcome in list(self._lru.items()):
            if self._path_for(fingerprint).exists():
                continue
            self.put(outcome)
            written += 1
        return written

    def _remember(self, fingerprint: str, outcome: JobOutcome) -> None:
        # cached reads must report from_cache=True even when the entry
        # was populated by this process's own put()
        self._lru[fingerprint] = (
            outcome if outcome.from_cache else JobOutcome.from_dict(
                outcome.to_dict(), from_cache=True
            )
        )
        self._lru.move_to_end(fingerprint)
        while len(self._lru) > self.max_memory_entries:
            self._lru.popitem(last=False)

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
            "memory_entries": len(self._lru),
            "persistent": self.root is not None,
            "corrupt_quarantined": self.corrupt_quarantined,
        }
