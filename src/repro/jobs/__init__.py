"""Batch simulation service: content-addressed jobs over a worker pool.

The answer to "how would this trace behave on N CPUs?" is a pure
function of *(trace, configuration, engine version)* — so prediction
workloads batch and cache perfectly.  This package provides the three
layers that exploit that:

* :mod:`repro.jobs.model` / :mod:`repro.jobs.fingerprint` — the job
  model: a :class:`SimJob` is one *(trace, config)* pair with a
  deterministic content fingerprint;
* :mod:`repro.jobs.engine` / :mod:`repro.jobs.cache` — the
  :class:`JobEngine`: a process pool with backpressure, per-job
  watchdog budgets, crash retry, and a disk-backed LRU
  :class:`ResultCache` in front;
* :mod:`repro.jobs.manifest` / :mod:`repro.jobs.service` /
  :mod:`repro.jobs.service_async` / :mod:`repro.jobs.client` — the user
  surfaces: ``vppb batch`` sweep manifests, the ``vppb serve`` HTTP
  service (asyncio front end with admission control, deadlines and a
  circuit breaker — primitives in :mod:`repro.jobs.resilience`), and
  the retrying ``vppb client``.

The analysis sweeps (:func:`repro.analysis.whatif.speedup_curve` and
friends) route through :func:`default_engine`, so library callers share
one cache — and one pool, when ``VPPB_WORKERS`` asks for it.
"""

from repro.jobs.cache import CACHE_FORMAT_VERSION, ResultCache, default_cache_dir
from repro.jobs.client import ClientError, ServiceClient
from repro.jobs.engine import JobEngine, default_engine
from repro.jobs.fingerprint import (
    ANALYTIC_VERSION,
    ENGINE_VERSION,
    LINT_VERSION,
    analytic_job_fingerprint,
    canonical_config,
    config_fingerprint,
    job_fingerprint,
    lint_job_fingerprint,
    trace_fingerprint,
)
from repro.jobs.manifest import BatchReport, ScenarioResult, SweepManifest, run_manifest
from repro.jobs.metrics import EngineMetrics
from repro.jobs.model import AnalyticJob, JobOutcome, LintJob, SimJob, TraceRef
from repro.jobs.tiering import (
    DEFAULT_TARGET_FRACTION,
    TierCell,
    decide,
    escalation_labels,
)
from repro.jobs.resilience import (
    AdmissionGate,
    BreakerOpenError,
    CircuitBreaker,
    Deadline,
    backoff_delays,
    retry_call,
)
from repro.jobs.service import PredictionService, make_server, serve
from repro.jobs.service_async import AsyncPredictionServer, serve_async

__all__ = [
    "CACHE_FORMAT_VERSION",
    "ANALYTIC_VERSION",
    "ENGINE_VERSION",
    "LINT_VERSION",
    "DEFAULT_TARGET_FRACTION",
    "AdmissionGate",
    "AnalyticJob",
    "AsyncPredictionServer",
    "BatchReport",
    "BreakerOpenError",
    "CircuitBreaker",
    "ClientError",
    "Deadline",
    "EngineMetrics",
    "JobEngine",
    "JobOutcome",
    "LintJob",
    "PredictionService",
    "ResultCache",
    "ServiceClient",
    "ScenarioResult",
    "SimJob",
    "SweepManifest",
    "TierCell",
    "TraceRef",
    "analytic_job_fingerprint",
    "backoff_delays",
    "canonical_config",
    "config_fingerprint",
    "decide",
    "default_cache_dir",
    "default_engine",
    "escalation_labels",
    "job_fingerprint",
    "lint_job_fingerprint",
    "make_server",
    "retry_call",
    "run_manifest",
    "serve",
    "serve_async",
    "trace_fingerprint",
]
