"""Engine/service observability: counters plus latency percentiles.

One :class:`EngineMetrics` instance is shared by a
:class:`~repro.jobs.engine.JobEngine` and (when serving) the HTTP
``/metrics`` endpoint, so the numbers a sweep prints and the numbers an
operator scrapes are the same numbers.  All updates are lock-protected —
the service handles requests on multiple threads.

Latencies are kept in a bounded ring (most recent
:data:`LATENCY_WINDOW` job executions) and summarised as p50/p90/p99 on
demand; for a local batch service exact order statistics over a recent
window beat a streaming sketch in both simplicity and debuggability.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["LATENCY_WINDOW", "EngineMetrics"]

LATENCY_WINDOW = 1024


def _percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


class EngineMetrics:
    """Thread-safe counters for one engine (and the service wrapping it)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_partial = 0
        self.worker_crashes = 0
        self.retries = 0
        self.jobs_rejected_breaker = 0
        self.lint_probes = 0
        #: analytic-tier jobs executed (the "analytic" job kind)
        self.analytic_jobs = 0
        #: tiered queries answered without touching the simulator
        self.analytic_hits = 0
        #: tiered queries whose interval straddled the decision and had
        #: to fall back to a full replay
        self.escalations = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: per-scheduler-backend breakdown: jobs finished and plan-cache
        #: traffic attributed to the backend the job simulated under
        self.by_scheduler: Dict[str, Dict[str, int]] = {}
        self._queue_depth = 0
        self._latencies_s: Deque[float] = deque(maxlen=LATENCY_WINDOW)

    # -- engine notifications ------------------------------------------

    def submitted(self) -> None:
        with self._lock:
            self.jobs_submitted += 1
            self._queue_depth += 1

    def finished(
        self,
        *,
        ok: bool,
        partial: bool,
        elapsed_s: Optional[float],
        plan_cache_hits: int = 0,
        plan_cache_misses: int = 0,
        lint_probe: bool = False,
        analytic: bool = False,
        scheduler: Optional[str] = None,
    ) -> None:
        with self._lock:
            self._queue_depth = max(0, self._queue_depth - 1)
            if ok:
                self.jobs_completed += 1
                if partial:
                    self.jobs_partial += 1
            else:
                self.jobs_failed += 1
            if lint_probe:
                self.lint_probes += 1
            if analytic:
                self.analytic_jobs += 1
            self.plan_cache_hits += plan_cache_hits
            self.plan_cache_misses += plan_cache_misses
            if scheduler is not None:
                per = self.by_scheduler.setdefault(
                    scheduler,
                    {"jobs": 0, "plan_cache_hits": 0, "plan_cache_misses": 0},
                )
                per["jobs"] += 1
                per["plan_cache_hits"] += plan_cache_hits
                per["plan_cache_misses"] += plan_cache_misses
            if elapsed_s is not None:
                self._latencies_s.append(elapsed_s)

    def crashed(self, *, retried: bool) -> None:
        with self._lock:
            self.worker_crashes += 1
            if retried:
                self.retries += 1

    def breaker_rejected(self) -> None:
        """A job was refused outright because the circuit breaker is open."""
        with self._lock:
            self.jobs_rejected_breaker += 1

    def tier_outcome(self, *, analytic_hits: int = 0, escalations: int = 0) -> None:
        """Account one tiered query's per-cell resolution split.

        Called by the tiering policy (batch runner or service), not the
        engine: the engine sees jobs, the policy sees *queries* — a cell
        counts as a hit only when the analytic interval decided it.
        """
        with self._lock:
            self.analytic_hits += analytic_hits
            self.escalations += escalations

    # -- views ----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queue_depth

    def latency_percentiles(self) -> Dict[str, float]:
        with self._lock:
            values = sorted(self._latencies_s)
        return {
            "p50_s": round(_percentile(values, 0.50), 6),
            "p90_s": round(_percentile(values, 0.90), 6),
            "p99_s": round(_percentile(values, 0.99), 6),
        }

    def snapshot(
        self,
        cache_stats: Optional[Dict] = None,
        *,
        breaker: Optional[Dict] = None,
    ) -> Dict:
        """One JSON-safe dict with everything (`/metrics` body)."""
        with self._lock:
            out = {
                "jobs_submitted": self.jobs_submitted,
                "jobs_completed": self.jobs_completed,
                "jobs_failed": self.jobs_failed,
                "jobs_partial": self.jobs_partial,
                "worker_crashes": self.worker_crashes,
                "retries": self.retries,
                "jobs_rejected_breaker": self.jobs_rejected_breaker,
                # predictive-lint manifestation probes executed (the
                # "lint" job kind; cache hits show under cache stats)
                "lint_probes": self.lint_probes,
                # tiered prediction: analytic jobs executed, and the
                # per-cell split between interval-decided cells and
                # escalations to full simulation
                "analytic_jobs": self.analytic_jobs,
                "analytic_hits": self.analytic_hits,
                "escalations": self.escalations,
                "queue_depth": self._queue_depth,
                # worker-side compile amortisation (plan LRU, see
                # repro.jobs.worker): hits mean the sweep reused a
                # compiled plan instead of re-parsing the trace
                "plan_cache": {
                    "hits": self.plan_cache_hits,
                    "misses": self.plan_cache_misses,
                },
                # jobs and plan-cache traffic per kernel scheduler
                # backend (cross-OS sweeps run the same trace under
                # several kernels; this shows where the work went)
                "schedulers": {
                    name: dict(per)
                    for name, per in sorted(self.by_scheduler.items())
                },
            }
        out["latency"] = self.latency_percentiles()
        if cache_stats is not None:
            out["cache"] = cache_stats
        if breaker is not None:
            out["breaker"] = breaker
        return out
