"""Worker-side job execution (runs inside pool processes *and* inline).

The engine submits :func:`run_payload` with a plain dict payload so the
pickled work item stays small and version-skew-tolerant.  The function
never raises for job-level problems — an unparseable trace, a diverging
replay, an exhausted budget all come back as a result dict the engine
turns into a :class:`~repro.jobs.model.JobOutcome`.  Only a genuine
worker death (signal, ``os._exit``) surfaces as a broken pool, which
the engine handles with a retry.

Each worker process keeps a tiny plan cache keyed by trace fingerprint:
a CPU sweep sends the same trace to the pool N times, and compiling the
replay plan once per *process* instead of once per *job* is most of the
win of batching.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.core.engine import Watchdog
from repro.core.errors import VppbError
from repro.core.predictor import compile_trace
from repro.core.simulator import Simulator

__all__ = ["run_payload", "CRASH_SENTINEL"]

#: Trace text that makes the worker die abruptly instead of returning —
#: the fault-injection hook behind the engine's crash-retry tests.  A
#: real recorder can never emit it (log lines start with '#' or a
#: timestamp).
CRASH_SENTINEL = "#!vppb-faultinject-worker-crash\n"

#: (trace fingerprint -> compiled ReplayPlan), per process.
_PLAN_CACHE: "OrderedDict[str, Any]" = OrderedDict()
_PLAN_CACHE_MAX = 4


def _plan_for(fingerprint: str, path: Optional[str], text: Optional[str]):
    plan = _PLAN_CACHE.get(fingerprint)
    if plan is not None:
        _PLAN_CACHE.move_to_end(fingerprint)
        return plan
    from repro.recorder import logfile

    trace = logfile.load(path) if path is not None else logfile.loads(text)
    plan = compile_trace(trace)
    _PLAN_CACHE[fingerprint] = plan
    while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
    return plan


def run_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one job payload; always returns a result dict.

    Payload keys: ``fingerprint``, ``trace_fp``, ``trace_path`` /
    ``trace_text`` (one required), ``config`` (a pickled
    :class:`~repro.core.config.SimConfig`), ``budget`` (an optional
    ``(max_events, max_wall_s)`` pair) and ``label``.
    """
    text = payload.get("trace_text")
    if text == CRASH_SENTINEL:
        os._exit(3)  # simulate a segfaulting worker, not an exception

    started = time.perf_counter()
    base = {
        "fingerprint": payload["fingerprint"],
        "label": payload.get("label", ""),
    }
    try:
        plan = _plan_for(
            payload["trace_fp"], payload.get("trace_path"), text
        )
        watchdog = _watchdog_from(payload.get("budget"))
        sim = Simulator(payload["config"], watchdog=watchdog, strict=False)
        result = sim.run_replay(plan)
    except VppbError as exc:
        base.update(
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - started,
        )
        return base
    base.update(
        status=result.status.value,
        makespan_us=result.makespan_us,
        engine_events=result.engine_events,
        reason=(
            result.incompleteness.describe() if result.incompleteness else None
        ),
        elapsed_s=time.perf_counter() - started,
    )
    return base


def _watchdog_from(budget: Optional[Tuple[Optional[int], Optional[float]]]):
    if budget is None:
        return None
    max_events, max_wall_s = budget
    if max_events is None and max_wall_s is None:
        return None
    return Watchdog(max_events=max_events, max_wall_s=max_wall_s)
