"""Worker-side job execution (runs inside pool processes *and* inline).

The engine submits :func:`run_payload` with a plain dict payload so the
pickled work item stays small and version-skew-tolerant.  The function
never raises for job-level problems — an unparseable trace, a diverging
replay, an exhausted budget all come back as a result dict the engine
turns into a :class:`~repro.jobs.model.JobOutcome`.  Only a genuine
worker death (signal, ``os._exit``) surfaces as a broken pool, which
the engine handles with a retry.

Each worker process keeps a tiny plan cache keyed by trace fingerprint:
a CPU sweep sends the same trace to the pool N times, and compiling the
replay plan once per *process* instead of once per *job* is most of the
win of batching.  ``VPPB_PLAN_CACHE`` sizes the LRU (default 4 plans);
every result dict reports whether its plan came from the cache
(``plan_cache_hits`` / ``plan_cache_misses``, 0-or-1 per job) so
``/metrics`` and ``vppb batch`` can show compile amortisation.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.core.engine import Watchdog
from repro.core.errors import VppbError
from repro.core.predictor import compile_trace
from repro.core.simulator import Simulator

__all__ = ["run_payload", "CRASH_SENTINEL"]

#: Trace text that makes the worker die abruptly instead of returning —
#: the fault-injection hook behind the engine's crash-retry tests.  A
#: real recorder can never emit it (log lines start with '#' or a
#: timestamp).
CRASH_SENTINEL = "#!vppb-faultinject-worker-crash\n"

#: (trace fingerprint -> compiled ReplayPlan), per process.
_PLAN_CACHE: "OrderedDict[str, Any]" = OrderedDict()
_DEFAULT_PLAN_CACHE_MAX = 4

#: (trace fingerprint -> (Trace, lint probe context)), per process: a
#: predictive-lint grid sends the same trace through N configs, and the
#: lint pass + access indexing are identical for all N.  Sized with the
#: plan cache — the two caches cover the same working set.
_LINT_CACHE: "OrderedDict[str, Tuple[Any, Dict[str, Any]]]" = OrderedDict()

#: (trace fingerprint -> extracted TraceStats), per process: an analytic
#: grid asks about the same trace under N configs, and the one-pass
#: extraction is the only non-trivial cost — the models themselves are a
#: handful of arithmetic operations per config.
_STATS_CACHE: "OrderedDict[str, Any]" = OrderedDict()


def _plan_cache_max() -> int:
    """LRU capacity, configurable via ``VPPB_PLAN_CACHE`` (default 4).

    Read per call rather than at import: worker processes inherit the
    parent's environment, and tests (or a long-lived service) may adjust
    the knob between batches.  Invalid or non-positive values fall back
    to the default rather than erroring inside a worker.
    """
    raw = os.environ.get("VPPB_PLAN_CACHE")
    if raw is None:
        return _DEFAULT_PLAN_CACHE_MAX
    try:
        size = int(raw)
    except ValueError:
        return _DEFAULT_PLAN_CACHE_MAX
    return size if size >= 1 else _DEFAULT_PLAN_CACHE_MAX


def _plan_for(
    fingerprint: str, path: Optional[str], text: Optional[str], *, trace=None
):
    """Return ``(plan, cache_hit)`` for the trace, via the process LRU.

    Pass an already-loaded *trace* to skip the parse on a miss (the lint
    probe path holds one anyway).
    """
    plan = _PLAN_CACHE.get(fingerprint)
    if plan is not None:
        _PLAN_CACHE.move_to_end(fingerprint)
        return plan, True
    if trace is None:
        from repro.recorder import logfile

        trace = logfile.load(path) if path is not None else logfile.loads(text)
    plan = compile_trace(trace)
    _PLAN_CACHE[fingerprint] = plan
    limit = _plan_cache_max()
    while len(_PLAN_CACHE) > limit:
        _PLAN_CACHE.popitem(last=False)
    return plan, False


def run_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one job payload; always returns a result dict.

    Payload keys: ``fingerprint``, ``trace_fp``, ``trace_path`` /
    ``trace_text`` (one required), ``config`` (a pickled
    :class:`~repro.core.config.SimConfig`), ``budget`` (an optional
    ``(max_events, max_wall_s)`` pair), ``label`` and ``kind`` —
    ``"sim"`` (default: one replay, makespan out), ``"lint"`` (one
    predictive-lint manifestation probe, verdicts in ``payload``) or
    ``"analytic"`` (closed-form makespan bounds, interval in
    ``payload``, needs ``analytic_profile``).
    """
    text = payload.get("trace_text")
    if text == CRASH_SENTINEL:
        os._exit(3)  # simulate a segfaulting worker, not an exception

    started = time.perf_counter()
    base = {
        "fingerprint": payload["fingerprint"],
        "label": payload.get("label", ""),
    }
    kind = payload.get("kind", "sim")
    if kind == "lint":
        return _run_lint_probe(payload, base, started)
    if kind == "analytic":
        return _run_analytic(payload, base, started)
    try:
        plan, cache_hit = _plan_for(
            payload["trace_fp"], payload.get("trace_path"), text
        )
        watchdog = _watchdog_from(payload.get("budget"))
        sim = Simulator(payload["config"], watchdog=watchdog, strict=False)
        result = sim.run_replay(plan)
    except VppbError as exc:
        base.update(
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - started,
            # a job that failed before (or during) compilation amortised
            # nothing — count it as a plan-cache miss
            plan_cache_hits=0,
            plan_cache_misses=1,
        )
        return base
    base.update(
        status=result.status.value,
        makespan_us=result.makespan_us,
        engine_events=result.engine_events,
        reason=(
            result.incompleteness.describe() if result.incompleteness else None
        ),
        elapsed_s=time.perf_counter() - started,
        plan_cache_hits=1 if cache_hit else 0,
        plan_cache_misses=0 if cache_hit else 1,
    )
    return base


def _lint_context_for(fingerprint: str, path: Optional[str], text: Optional[str]):
    """Return ``(trace, probe context, cache_hit)`` via the process LRU."""
    entry = _LINT_CACHE.get(fingerprint)
    if entry is not None:
        _LINT_CACHE.move_to_end(fingerprint)
        return entry[0], entry[1], True
    from repro.analysis.lint.predictive import lint_probe_context
    from repro.recorder import logfile

    trace = logfile.load(path) if path is not None else logfile.loads(text)
    context = lint_probe_context(trace)
    _LINT_CACHE[fingerprint] = (trace, context)
    limit = _plan_cache_max()
    while len(_LINT_CACHE) > limit:
        _LINT_CACHE.popitem(last=False)
    return trace, context, False


def _run_lint_probe(
    payload: Dict[str, Any], base: Dict[str, Any], started: float
) -> Dict[str, Any]:
    """One predictive-lint probe: lint + unperturbed replay + verdicts.

    The probe itself completing is what ``status="complete"`` means here
    — a replay that deadlocks under the probed config is a *successful*
    probe (that's the prediction!), carried in the result payload, so
    the engine caches it like any other complete outcome.
    """
    from repro.analysis.lint.predictive import probe_trace

    try:
        trace, context, lint_hit = _lint_context_for(
            payload["trace_fp"], payload.get("trace_path"), payload.get("trace_text")
        )
        plan, plan_hit = _plan_for(payload["trace_fp"], None, None, trace=trace)
        budget = payload.get("budget")
        max_events = 50_000_000
        if budget is not None and budget[0] is not None:
            max_events = budget[0]
        probe = probe_trace(
            trace,
            payload["config"],
            plan=plan,
            context=context,
            max_events=max_events,
            watchdog=_watchdog_from(budget),
        )
    except VppbError as exc:
        base.update(
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - started,
            plan_cache_hits=0,
            plan_cache_misses=1,
        )
        return base
    base.update(
        status="complete",
        makespan_us=int(probe.pop("makespan_us", 0)),
        engine_events=int(probe.pop("engine_events", 0)),
        reason=probe.get("replay_reason"),
        elapsed_s=time.perf_counter() - started,
        plan_cache_hits=1 if (plan_hit and lint_hit) else 0,
        plan_cache_misses=0 if (plan_hit and lint_hit) else 1,
        payload=probe,
    )
    return base


def _stats_for(fingerprint: str, path: Optional[str], text: Optional[str]):
    """Return ``(TraceStats, cache_hit)`` via the process LRU."""
    stats = _STATS_CACHE.get(fingerprint)
    if stats is not None:
        _STATS_CACHE.move_to_end(fingerprint)
        return stats, True
    from repro.analytic.stats import extract_stats
    from repro.recorder import logfile

    trace = logfile.load(path) if path is not None else logfile.loads(text)
    stats = extract_stats(trace)
    _STATS_CACHE[fingerprint] = stats
    limit = _plan_cache_max()
    while len(_STATS_CACHE) > limit:
        _STATS_CACHE.popitem(last=False)
    return stats, False


def _run_analytic(
    payload: Dict[str, Any], base: Dict[str, Any], started: float
) -> Dict[str, Any]:
    """One analytical estimate: calibrated ``[lo, hi]`` makespan bounds.

    ``makespan_us`` carries the calibrated point estimate so downstream
    consumers that only read makespans keep working; the interval and
    per-model detail travel in ``payload``.  ``engine_events`` stays 0 —
    nothing was replayed, which is the whole point.
    """
    from repro.analytic.models import estimate_makespan
    from repro.analytic.profile import AnalyticProfile

    try:
        stats, cache_hit = _stats_for(
            payload["trace_fp"], payload.get("trace_path"), payload.get("trace_text")
        )
        profile = AnalyticProfile.from_dict(payload["analytic_profile"])
        interval = estimate_makespan(stats, payload["config"], profile)
    except VppbError as exc:
        base.update(
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - started,
            plan_cache_hits=0,
            plan_cache_misses=1,
        )
        return base
    result_payload = interval.to_dict()
    result_payload["kind"] = "analytic"
    result_payload["stats_fingerprint"] = stats.fingerprint()
    base.update(
        status="complete",
        makespan_us=interval.point_us,
        engine_events=0,
        elapsed_s=time.perf_counter() - started,
        plan_cache_hits=1 if cache_hit else 0,
        plan_cache_misses=0 if cache_hit else 1,
        payload=result_payload,
    )
    return base


def _watchdog_from(budget: Optional[Tuple[Optional[int], Optional[float]]]):
    if budget is None:
        return None
    max_events, max_wall_s = budget
    if max_events is None and max_wall_s is None:
        return None
    return Watchdog(max_events=max_events, max_wall_s=max_wall_s)
