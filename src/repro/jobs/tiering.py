"""The tiering policy: when does an interval answer, when do we simulate?

The analytical tier (:mod:`repro.analytic`) answers a grid cell with a
calibrated ``[lo, hi]`` makespan interval in microseconds of compute; the
simulator answers with an exact point at replay cost.  This module holds
the policy glueing them together, used identically by ``vppb batch
--tier auto`` (:func:`repro.jobs.manifest.run_manifest`) and the
service's ``POST /predict``:

1. the **baseline** (uniprocessor replay) is always simulated — every
   speed-up figure divides by it, so an interval there would poison
   every decision;
2. every grid cell gets an analytic interval, giving per-cell *speed-up
   bounds* ``[baseline/hi, baseline/lo]``;
3. :func:`escalation_labels` picks the cells whose intervals cannot
   decide the queries — the best-of-grid winner and the per-group knee —
   and only those are replayed;
4. :func:`decide` then produces decisions **provably identical** to a
   fully simulated grid.

Why the guarantee holds (given intervals that bracket the true
makespan, which calibration enforces on its suite): a cell is only left
analytic when its speed-up upper bound is *strictly below* the best
cell's lower bound (so it cannot be the winner, nor tie with it), and
when it falls decidedly on one side of every knee threshold it
participates in.  All remaining comparisons happen between simulated —
exact — values, so the winner, its ties, and each group's knee come out
the same as if everything had been replayed.  :func:`decide` works on
the mixed grid using each analytic cell's point estimate; because the
point lies inside ``[lo, hi]``, the decided-cell inequalities above
transfer to it unchanged.

The knee query mirrors the paper's §4 what-if workflow: "how many CPUs
until adding more stops paying?", formalised as the smallest CPU count
in a group reaching ``target_fraction`` of that group's best speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["DEFAULT_TARGET_FRACTION", "TierCell", "escalation_labels", "decide"]

#: A knee at 80% of the group's best speed-up: past it, the curve has
#: visibly flattened (the paper's Fig. 8 knee reads at about this level).
DEFAULT_TARGET_FRACTION = 0.8


@dataclass(frozen=True)
class TierCell:
    """One grid cell as the tiering policy sees it.

    A simulated cell has ``lo_us == hi_us == point_us`` and
    ``exact=True``; an analytic cell carries its calibrated interval.
    ``group`` keys the speed-up curve the cell belongs to (one curve per
    binding/lwps/comm-delay/scheduler combination — the cpus axis is the
    curve), so knees are computed per group.
    """

    label: str
    group: str
    cpus: int
    lo_us: int
    hi_us: int
    point_us: int
    exact: bool

    def speedup_bounds(self, baseline_us: int) -> Tuple[float, float]:
        """``(lo_sp, hi_sp)``: slowest and fastest this cell can be."""
        return (
            baseline_us / self.hi_us if self.hi_us else 0.0,
            baseline_us / self.lo_us if self.lo_us else 0.0,
        )

    def speedup_point(self, baseline_us: int) -> float:
        return baseline_us / self.point_us if self.point_us else 0.0


def _by_group(cells: Sequence[TierCell]) -> Dict[str, List[TierCell]]:
    groups: Dict[str, List[TierCell]] = {}
    for cell in cells:
        groups.setdefault(cell.group, []).append(cell)
    return groups


def escalation_labels(
    cells: Sequence[TierCell],
    baseline_us: int,
    *,
    target_fraction: float = DEFAULT_TARGET_FRACTION,
) -> List[str]:
    """Labels of the cells whose intervals cannot decide the queries.

    Three escalation triggers, each necessary for exactness:

    * **global-best contenders** — cells whose speed-up upper bound
      reaches the highest lower bound anywhere on the grid.  Everything
      else is strictly slower than the eventual winner and can stay
      analytic;
    * **group-best contenders** — same test within each group: the
      knee threshold is a fraction of the group's best speed-up, so
      that best must be exact;
    * **knee straddlers** — cells whose speed-up interval overlaps
      ``[t * Mlo_g, t * Mhi_g]`` (the group-best bounds scaled by the
      target fraction): the interval cannot say which side of the knee
      threshold they land on.

    Already-exact cells never escalate.  Order follows *cells*.
    """
    if baseline_us <= 0:
        return [c.label for c in cells if not c.exact]
    if not 0.0 < target_fraction <= 1.0:
        raise ValueError(
            f"target_fraction must be in (0, 1], got {target_fraction}"
        )
    bounds = {c.label: c.speedup_bounds(baseline_us) for c in cells}
    max_lo = max((lo for lo, _ in bounds.values()), default=0.0)

    escalate: List[str] = []
    seen = set()

    def mark(cell: TierCell) -> None:
        if not cell.exact and cell.label not in seen:
            seen.add(cell.label)
            escalate.append(cell.label)

    for cell in cells:
        if bounds[cell.label][1] >= max_lo:
            mark(cell)

    for group_cells in _by_group(cells).values():
        g_lo = max(bounds[c.label][0] for c in group_cells)
        g_hi = max(bounds[c.label][1] for c in group_cells)
        knee_lo = target_fraction * g_lo
        knee_hi = target_fraction * g_hi
        for cell in group_cells:
            lo_sp, hi_sp = bounds[cell.label]
            if hi_sp >= g_lo:
                mark(cell)  # group-best contender
            elif not (lo_sp >= knee_hi or hi_sp < knee_lo):
                mark(cell)  # knee straddler
    return escalate


def decide(
    cells: Sequence[TierCell],
    baseline_us: Optional[int],
    *,
    target_fraction: float = DEFAULT_TARGET_FRACTION,
) -> Dict[str, Any]:
    """The grid's decisions: best cell overall, knee CPU count per group.

    Works on exact, mixed (post-escalation) and all-analytic grids
    alike, using each cell's point estimate; on a post-escalation grid
    the result equals the fully simulated grid's (see module docstring).
    The winner is the first cell in *cells* order achieving the maximum
    speed-up, the knee the smallest CPU count in the group reaching
    ``target_fraction`` of the group's best — both deterministic.
    """
    if baseline_us is None or baseline_us <= 0 or not cells:
        return {}
    speedups = {c.label: c.speedup_point(baseline_us) for c in cells}
    best = max(cells, key=lambda c: speedups[c.label])

    knees: Dict[str, Optional[int]] = {}
    for group, group_cells in sorted(_by_group(cells).items()):
        threshold = target_fraction * max(speedups[c.label] for c in group_cells)
        at_knee = [
            c for c in group_cells if speedups[c.label] >= threshold
        ]
        knees[group] = min(c.cpus for c in at_knee) if at_knee else None

    return {
        "best": best.label,
        "best_speedup": round(speedups[best.label], 4),
        "knees": knees,
        "target_fraction": target_fraction,
    }
