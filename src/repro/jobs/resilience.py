"""Reusable resilience primitives for the service layer.

Everything a front end needs to degrade gracefully instead of failing
hard, with no policy baked in:

* :class:`CircuitBreaker` — trip after consecutive failures, fail fast
  while open, half-open with probe requests after a cooldown;
* :func:`backoff_delays` / :func:`retry_call` — exponential backoff
  with deterministic full jitter (an explicit RNG, so tests replay the
  exact schedule);
* :class:`Deadline` — a wall-clock budget carried through a request;
* :class:`AdmissionGate` — a bounded in-flight counter that sheds load
  once a watermark is crossed, instead of queueing unboundedly.

All clocks and sleeps are injectable; nothing here touches the network
or the event loop, so the same primitives serve the asyncio front end
(:mod:`repro.jobs.service_async`), the pool-rebuild logic in
:class:`~repro.jobs.engine.JobEngine`, and the ``vppb client`` retry
loop.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.core.errors import VppbError

__all__ = [
    "AdmissionGate",
    "BreakerOpenError",
    "CircuitBreaker",
    "Deadline",
    "backoff_delays",
    "retry_call",
]


class BreakerOpenError(VppbError):
    """Raised when work is refused because a circuit breaker is open.

    ``retry_after_s`` is the caller-facing hint: how long until the
    breaker will half-open and admit a probe.
    """

    def __init__(self, message: str, *, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Trip on consecutive failures; half-open with probes after cooldown.

    States:

    * **closed** — everything is admitted; consecutive failures are
      counted and a success resets the count;
    * **open** — entered when the count reaches ``failure_threshold``;
      :meth:`allow` refuses everything until ``cooldown_s`` has passed;
    * **half-open** — after the cooldown one caller is admitted as a
      *probe* (further callers are refused while it is in flight); a
      recorded success closes the breaker, a failure re-opens it and
      restarts the cooldown.

    Thread-safe.  ``clock`` defaults to :func:`time.monotonic` and is
    injectable so state transitions are testable without sleeping.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self.trips = 0  # lifetime count of closed/half-open -> open

    # -- state transitions (callers hold no lock) -----------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = self.HALF_OPEN
            self._probe_in_flight = False
        return self._state

    def allow(self) -> bool:
        """May the caller proceed?  In half-open, admits one probe."""
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def reject_for(self) -> Optional[float]:
        """Seconds until a retry could be admitted, or None if admitting.

        A non-mutating admission check (does not consume the half-open
        probe slot): returns ``None`` when a call would be allowed, the
        remaining cooldown while open, and the full cooldown while a
        half-open probe is already in flight.
        """
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return None
            if state == self.HALF_OPEN:
                return self.cooldown_s if self._probe_in_flight else None
            elapsed = self._clock() - (self._opened_at or self._clock())
            return max(0.0, self.cooldown_s - elapsed)

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            self._state = self.CLOSED
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            self._consecutive_failures += 1
            if state == self.HALF_OPEN:
                # the probe failed: straight back to open
                self._trip_locked()
            elif (
                state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip_locked()
            elif state == self.OPEN:
                self._opened_at = self._clock()

    def _trip_locked(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._probe_in_flight = False
        self.trips += 1

    def snapshot(self) -> dict:
        with self._lock:
            state = self._state_locked()
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
            }


# ---------------------------------------------------------------------------
# retry with exponential backoff and jitter
# ---------------------------------------------------------------------------


def backoff_delays(
    attempts: int,
    *,
    base_s: float = 0.05,
    cap_s: float = 5.0,
    rng: Optional[random.Random] = None,
) -> Iterator[float]:
    """Delays between retries: capped exponential with full jitter.

    Yields ``attempts - 1`` delays (no delay follows the final attempt).
    Each is drawn uniformly from ``[0, min(cap_s, base_s * 2**n)]`` —
    AWS-style *full jitter*, which desynchronises retry herds better
    than equal or decorrelated jitter for the same mean delay.  Pass a
    seeded ``rng`` for a reproducible schedule; ``None`` uses module
    randomness.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if base_s < 0 or cap_s < 0:
        raise ValueError("base_s and cap_s must be >= 0")
    draw = (rng or random).uniform
    for n in range(attempts - 1):
        yield draw(0.0, min(cap_s, base_s * (2.0 ** n)))


def retry_call(
    fn: Callable,
    *,
    attempts: int = 3,
    base_s: float = 0.05,
    cap_s: float = 5.0,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> object:
    """Call *fn* up to *attempts* times, backing off between failures.

    Retries only exceptions matching *retry_on*; anything else (and the
    final failure) propagates.  ``on_retry(attempt, exc, delay_s)`` is
    invoked before each sleep — the hook the CLI uses to narrate
    retries.
    """
    delays = backoff_delays(attempts, base_s=base_s, cap_s=cap_s, rng=rng)
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt == attempts:
                raise
            delay = next(delays)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


class Deadline:
    """A wall-clock budget carried through one request.

    ``Deadline.after(5.0)`` expires five seconds from now; ``None``
    budgets never expire (``remaining()`` is ``None``).
    """

    __slots__ = ("_expires_at", "_clock", "budget_s")

    def __init__(
        self,
        budget_s: Optional[float],
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError(f"deadline budget must be > 0, got {budget_s}")
        self.budget_s = budget_s
        self._clock = clock
        self._expires_at = None if budget_s is None else clock() + budget_s

    @classmethod
    def after(cls, budget_s: Optional[float], **kw) -> "Deadline":
        return cls(budget_s, **kw)

    def remaining(self) -> Optional[float]:
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class AdmissionGate:
    """Bounded in-flight counter: admit until the watermark, then shed.

    Unlike a semaphore, :meth:`try_enter` never blocks — a request over
    the watermark is *shed* (the caller turns that into a 429 with a
    ``Retry-After``), which keeps queueing delay bounded and visible
    instead of silently growing.  ``retry_after_s`` is the hint handed
    to shed clients.
    """

    def __init__(self, capacity: int, *, retry_after_s: float = 1.0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._inflight = 0
        self.admitted = 0
        self.shed = 0

    def try_enter(self) -> bool:
        with self._lock:
            if self._inflight >= self.capacity:
                self.shed += 1
                return False
            self._inflight += 1
            self.admitted += 1
            return True

    def leave(self) -> None:
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1

    @property
    def depth(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def headroom(self) -> int:
        with self._lock:
            return max(0, self.capacity - self._inflight)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "in_flight": self._inflight,
                "admitted": self.admitted,
                "shed": self.shed,
            }
