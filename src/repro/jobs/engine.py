"""The batch execution engine: a process pool with a cache in front.

:class:`JobEngine` turns a list of :class:`~repro.jobs.model.SimJob`
into :class:`~repro.jobs.model.JobOutcome`, in order, with:

* **content-addressed caching** — every job is looked up in the
  :class:`~repro.jobs.cache.ResultCache` first and stored on success,
  so re-running a sweep is mostly disk reads;
* **in-flight dedup** — jobs with equal fingerprints inside one batch
  execute once and share the result (a CPU sweep's 1-CPU point and its
  uniprocessor baseline often collide);
* **backpressure** — at most ``max_pending`` jobs are in the pool at a
  time; further submissions block the submitting thread instead of
  buffering unboundedly (a service under load degrades to queueing at
  the socket, not to memory growth);
* **deadline budgets** — each job runs under a
  :class:`~repro.core.engine.Watchdog`; an over-budget replay comes
  back as a *partial* outcome (``status="budget-exhausted"``), not an
  error;
* **crash containment** — a job that kills its worker process breaks
  the pool; the engine rebuilds the pool (with exponential-backoff +
  jitter between rebuild attempts), retries the job once, and degrades
  it to a ``worker-crashed`` outcome if it crashes again.  A poisoned
  job therefore never takes the rest of the sweep down with it;
* **circuit breaking** — consecutive worker crashes trip a
  :class:`~repro.jobs.resilience.CircuitBreaker` around the pool; while
  it is open, jobs come back immediately as ``breaker-open`` outcomes
  instead of being fed to a dying pool, and after a cooldown one job is
  admitted as a probe (success closes the breaker again).

``mode="inline"`` runs the identical worker code path in-process — the
degenerate pool used for tiny traces, tests, and determinism checks
(inline, pooled and cached execution must agree bit for bit).
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SimConfig
from repro.core.errors import SimulationError
from repro.core.predictor import SpeedupPrediction
from repro.core.trace import Trace
from repro.jobs.cache import ResultCache
from repro.jobs.metrics import EngineMetrics
from repro.jobs.model import JobOutcome, SimJob, TraceRef
from repro.jobs.resilience import CircuitBreaker, backoff_delays
from repro.jobs.worker import run_payload

__all__ = ["JobEngine", "default_engine"]

#: A per-call watchdog budget: (max_events, max_wall_s).
Budget = Tuple[Optional[int], Optional[float]]


class JobEngine:
    """Run simulation jobs on a worker pool behind a result cache.

    Parameters
    ----------
    workers:
        Pool size (``None`` = ``os.cpu_count()``, capped at 8 — replay
        is CPU-bound and a local service should not starve the machine).
    mode:
        ``"process"`` (default) or ``"inline"``.
    cache:
        A :class:`ResultCache`; ``None`` gives a memory-only cache.
        Pass ``use_cache=False`` per call to bypass lookups entirely.
    max_pending:
        Backpressure bound on jobs submitted but not yet finished.
    job_max_events / job_max_wall_s:
        Per-job watchdog budgets (``None`` disables that budget).
    breaker:
        The :class:`CircuitBreaker` guarding the pool.  ``None`` (the
        default) builds one that trips after 4 consecutive worker
        crashes and half-opens after 10 s; pass ``breaker=False`` to
        disable circuit breaking entirely.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        mode: str = "process",
        cache: Optional[ResultCache] = None,
        max_pending: int = 64,
        job_max_events: Optional[int] = 50_000_000,
        job_max_wall_s: Optional[float] = None,
        breaker=None,
        retry_sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if mode not in ("process", "inline"):
            raise ValueError(f"mode must be 'process' or 'inline', got {mode!r}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        import os

        self.mode = mode
        self.workers = workers or min(8, os.cpu_count() or 1)
        self.cache = cache if cache is not None else ResultCache(None)
        self.metrics = EngineMetrics()
        if breaker is None:
            breaker = CircuitBreaker(failure_threshold=4, cooldown_s=10.0)
        self.breaker: Optional[CircuitBreaker] = breaker or None
        self._budget = (job_max_events, job_max_wall_s)
        self._slots = threading.BoundedSemaphore(max_pending)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._closed = False
        self._retry_sleep = retry_sleep
        # deterministic jitter: every engine replays the same backoff
        # schedule, so crash-retry tests are reproducible
        self._retry_rng = random.Random(0x5EED)

    @property
    def job_budget(self) -> Budget:
        """The engine-level per-job watchdog budget."""
        return self._budget

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------

    def _get_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def _discard_pool(self, broken: ProcessPoolExecutor) -> None:
        """Drop a broken pool so the next submit builds a fresh one."""
        with self._pool_lock:
            if self._pool is broken:
                self._pool = None
        broken.shutdown(wait=False)

    def close(self) -> None:
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "JobEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _payload(self, job: SimJob, budget: Optional[Budget] = None) -> Dict:
        payload = {
            "fingerprint": job.fingerprint,
            "trace_fp": job.trace.fingerprint,
            "trace_path": job.trace.path,
            "trace_text": job.trace.text if job.trace.path is None else None,
            "config": job.config,
            "budget": budget if budget is not None else self._budget,
            "label": job.label,
            "kind": getattr(job, "kind", "sim"),
        }
        if payload["kind"] == "analytic":
            # ship the margins by value: worker processes must not
            # depend on a profile file existing on their side
            payload["analytic_profile"] = job.profile.to_dict()
        return payload

    def _run_inline(self, job: SimJob, budget: Optional[Budget]) -> JobOutcome:
        return JobOutcome.from_dict(run_payload(self._payload(job, budget)))

    def _breaker_open_outcome(self, job: SimJob) -> JobOutcome:
        self.metrics.breaker_rejected()
        retry_after = self.breaker.reject_for() if self.breaker else None
        hint = (
            f"; retry in {retry_after:.1f}s" if retry_after else ""
        )
        return JobOutcome(
            fingerprint=job.fingerprint,
            status=JobOutcome.BREAKER_OPEN,
            error=f"circuit breaker open after repeated worker crashes{hint}",
            attempts=0,
            label=job.label,
        )

    def _submit(self, job: SimJob, budget: Optional[Budget]) -> Future:
        """Submit under backpressure; the slot frees when the job ends."""
        self._slots.acquire()
        self.metrics.submitted()
        try:
            future = self._get_pool().submit(run_payload, self._payload(job, budget))
        except BaseException:
            self._slots.release()
            raise
        future.add_done_callback(lambda _f: self._slots.release())
        return future

    def _collect(self, job: SimJob, future: Future, budget: Optional[Budget]) -> JobOutcome:
        """Resolve one future, retrying once across a pool rebuild.

        Rebuild attempts back off with deterministic jitter so a burst
        of crashing jobs does not hammer pool reconstruction; every
        crash is reported to the circuit breaker, every normal
        resolution resets it.
        """
        attempts = 1
        delays = backoff_delays(
            4, base_s=0.05, cap_s=1.0, rng=self._retry_rng
        )
        while True:
            try:
                outcome = JobOutcome.from_dict(future.result())
            except BrokenProcessPool:
                if self.breaker is not None:
                    self.breaker.record_failure()
                with self._pool_lock:
                    broken = self._pool
                if broken is not None:
                    self._discard_pool(broken)
                if attempts >= 2:
                    self.metrics.crashed(retried=False)
                    return JobOutcome(
                        fingerprint=job.fingerprint,
                        status=JobOutcome.CRASHED,
                        error="worker crashed twice; job abandoned",
                        attempts=attempts,
                        label=job.label,
                    )
                self.metrics.crashed(retried=True)
                attempts += 1
                delay = next(delays, 0.0)
                if delay > 0:
                    self._retry_sleep(delay)
                self._slots.acquire()
                try:
                    future = self._get_pool().submit(
                        run_payload, self._payload(job, budget)
                    )
                except BaseException:
                    self._slots.release()
                    raise
                future.add_done_callback(lambda _f: self._slots.release())
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                return outcome

    def run(
        self,
        jobs: Sequence[SimJob],
        *,
        use_cache: bool = True,
        budget: Optional[Budget] = None,
    ) -> List[JobOutcome]:
        """Execute *jobs*, returning outcomes in submission order.

        Never raises for job-level failures; inspect each outcome's
        ``error``/``status``.  *budget* overrides the engine-level
        watchdog budget for this call only (a per-request deadline);
        partial results produced under a per-call budget are **not**
        cached — they reflect the caller's deadline, not the work.
        """
        jobs = list(jobs)
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

        # cache front + in-flight dedup
        pending: Dict[str, List[int]] = {}
        for i, job in enumerate(jobs):
            fp = job.fingerprint
            cached = self.cache.get(fp) if use_cache else None
            if cached is not None:
                outcomes[i] = cached.with_label(job.label)
            else:
                pending.setdefault(fp, []).append(i)

        if self.mode == "inline":
            resolved = {}
            for fp, indices in pending.items():
                self.metrics.submitted()
                resolved[fp] = self._run_inline(jobs[indices[0]], budget)
                self._account(resolved[fp], jobs[indices[0]])
        else:
            futures: Dict[str, Future] = {}
            rejected: Dict[str, JobOutcome] = {}
            for fp, indices in pending.items():
                if self.breaker is not None and not self.breaker.allow():
                    rejected[fp] = self._breaker_open_outcome(jobs[indices[0]])
                else:
                    futures[fp] = self._submit(jobs[indices[0]], budget)
            resolved = dict(rejected)
            for fp, indices in pending.items():
                if fp in futures:
                    resolved[fp] = self._collect(
                        jobs[indices[0]], futures[fp], budget
                    )
                    self._account(resolved[fp], jobs[indices[0]])

        for fp, indices in pending.items():
            outcome = resolved[fp]
            if use_cache and (budget is None or outcome.complete):
                self.cache.put(outcome)
            for i in indices:
                outcomes[i] = outcome.with_label(jobs[i].label)
        return outcomes  # type: ignore[return-value]

    def _account(self, outcome: JobOutcome, job) -> None:
        self.metrics.finished(
            ok=outcome.ok,
            partial=outcome.ok and not outcome.complete,
            elapsed_s=outcome.elapsed_s if outcome.ok else None,
            plan_cache_hits=outcome.plan_cache_hits,
            plan_cache_misses=outcome.plan_cache_misses,
            lint_probe=bool(
                outcome.payload and outcome.payload.get("kind") == "lint"
            ),
            analytic=getattr(job, "kind", "sim") == "analytic",
            scheduler=job.config.scheduler,
        )

    def snapshot(self) -> Dict:
        """Engine + cache + breaker state in one JSON-safe dict."""
        return self.metrics.snapshot(
            self.cache.stats(),
            breaker=self.breaker.snapshot() if self.breaker else None,
        )

    # ------------------------------------------------------------------
    # sweep helpers (the engine-backed analysis entry points)
    # ------------------------------------------------------------------

    def makespans(
        self,
        trace_ref: TraceRef,
        configs: Sequence[SimConfig],
        *,
        labels: Optional[Sequence[str]] = None,
        use_cache: bool = True,
        budget: Optional[Budget] = None,
    ) -> List[JobOutcome]:
        """One job per config over a fixed trace."""
        labels = labels or [""] * len(configs)
        jobs = [
            SimJob(trace=trace_ref, config=cfg, label=lbl)
            for cfg, lbl in zip(configs, labels)
        ]
        return self.run(jobs, use_cache=use_cache, budget=budget)

    def makespan_matrix(
        self,
        cells: Sequence[Tuple[TraceRef, SimConfig, str]],
        *,
        use_cache: bool = True,
    ) -> List[JobOutcome]:
        """One job per *(trace, config, label)* cell, in cell order.

        The multi-trace counterpart of :meth:`makespans`: a calibration
        objective evaluates one parameter vector against *every*
        workload's trace at once, so the whole matrix is submitted as a
        single batch — cross-workload cells run concurrently on the
        pool, and content addressing makes a refit over previously
        visited parameter vectors a pure cache read.
        """
        jobs = [
            SimJob(trace=ref, config=cfg, label=lbl) for ref, cfg, lbl in cells
        ]
        return self.run(jobs, use_cache=use_cache)

    def predict_speedups(
        self,
        trace: Trace,
        cpu_counts: Sequence[int],
        *,
        base_config: Optional[SimConfig] = None,
        trace_ref: Optional[TraceRef] = None,
        use_cache: bool = True,
        allow_partial: bool = False,
    ) -> List[SpeedupPrediction]:
        """Engine-backed :func:`repro.core.predictor.predict_speedup` sweep.

        Identical numbers to the serial path: the baseline is the
        replayed uni-processor execution of the same base config, and
        the simulator itself is deterministic.  Raises
        :class:`SimulationError` if any job failed — including partial
        replays (deadlock, budget), matching the serial strict
        behaviour, unless ``allow_partial`` accepts them.
        """
        from repro.program.uniexec import uniprocessor_config

        base = base_config or SimConfig()
        ref = trace_ref or TraceRef.from_trace(trace)
        configs = [uniprocessor_config(base)] + [
            base.with_cpus(n) for n in cpu_counts
        ]
        labels = ["baseline"] + [f"{n}cpu" for n in cpu_counts]
        outcomes = self.makespans(ref, configs, labels=labels, use_cache=use_cache)
        for outcome in outcomes:
            if not outcome.ok:
                raise SimulationError(
                    f"batch job {outcome.label or outcome.fingerprint[:12]} "
                    f"failed: {outcome.error}"
                )
            if not outcome.complete and not allow_partial:
                raise SimulationError(
                    f"batch job {outcome.label or outcome.fingerprint[:12]} "
                    f"came back partial ({outcome.status}): {outcome.reason}"
                )
        baseline_us = outcomes[0].makespan_us
        return [
            SpeedupPrediction(
                cpus=n, uniprocessor_us=baseline_us, makespan_us=out.makespan_us
            )
            for n, out in zip(cpu_counts, outcomes[1:])
        ]

    def speedup_curve(
        self,
        trace: Trace,
        max_cpus: int,
        *,
        base_config: Optional[SimConfig] = None,
        use_cache: bool = True,
        allow_partial: bool = False,
    ) -> List[SpeedupPrediction]:
        if max_cpus < 1:
            raise ValueError(f"max_cpus must be >= 1, got {max_cpus}")
        return self.predict_speedups(
            trace,
            list(range(1, max_cpus + 1)),
            base_config=base_config,
            use_cache=use_cache,
            allow_partial=allow_partial,
        )


# ---------------------------------------------------------------------------
# the shared default engine
# ---------------------------------------------------------------------------

_DEFAULT_ENGINE: Optional[JobEngine] = None
_DEFAULT_LOCK = threading.Lock()


def default_engine() -> JobEngine:
    """The process-wide engine behind the analysis convenience functions.

    Inline (no worker processes) with a memory-only cache by default, so
    library callers get result dedup for free without surprise
    subprocesses.  Set ``VPPB_WORKERS=N`` (N >= 2) to make the default
    engine a real pool — every existing sweep then parallelises without
    a code change.
    """
    global _DEFAULT_ENGINE
    with _DEFAULT_LOCK:
        if _DEFAULT_ENGINE is None:
            import os

            workers = int(os.environ.get("VPPB_WORKERS", "0") or 0)
            if workers >= 2:
                _DEFAULT_ENGINE = JobEngine(workers=workers, mode="process")
            else:
                _DEFAULT_ENGINE = JobEngine(mode="inline")
        return _DEFAULT_ENGINE
