"""Content addressing for simulation work.

A prediction is a pure function of *(trace, configuration, engine
version)* — the simulator is deterministic by construction (the engine
breaks event-queue ties by insertion order).  That purity is what makes
batch prediction cacheable: two jobs with the same fingerprint are the
same job, whether they run inline, in a worker process, or in another
process next week.

* :func:`trace_fingerprint` hashes the canonical text serialisation of a
  trace (the log-file format is itself canonical: one record per line in
  time order, sorted header tables);
* :func:`canonical_config` lowers a :class:`~repro.core.config.SimConfig`
  to a JSON-safe dict with sorted keys, covering every field that can
  change a simulation outcome (costs, dispatch table, per-thread
  policies included);
* :func:`job_fingerprint` combines both with :data:`ENGINE_VERSION`, so
  bumping the version invalidates every cached result at once.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from repro.core.config import SimConfig, ThreadPolicy
from repro.core.trace import Trace

__all__ = [
    "ENGINE_VERSION",
    "LINT_VERSION",
    "ANALYTIC_VERSION",
    "trace_fingerprint",
    "canonical_config",
    "config_fingerprint",
    "job_fingerprint",
    "lint_job_fingerprint",
    "analytic_job_fingerprint",
]

#: Version of the prediction engine baked into every job fingerprint.
#: Bump on any change that can alter a simulation outcome (scheduler
#: semantics, cost model defaults, replay rules): every previously
#: cached result then misses and is recomputed.
#: v2: canonical configs gained the scheduler-backend axis.
ENGINE_VERSION = 2

#: Version of the lint rule set + manifestation probe baked into every
#: lint-job fingerprint.  Bump whenever a rule, the happens-before
#: analysis, or the manifestation criteria change — predictive-lint grid
#: results cached under the old semantics then stop being served.
LINT_VERSION = 1

#: Version of the analytical tier (stats extractor + closed-form models)
#: baked into every analytic-job fingerprint.  Bump when the extraction
#: or model arithmetic changes; re-calibration alone re-keys through the
#: profile fingerprint instead.
ANALYTIC_VERSION = 1


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def trace_fingerprint(trace: Trace) -> str:
    """Stable content hash of a trace (hex SHA-256).

    Uses the canonical log-file serialisation, so a trace has the same
    fingerprint in memory, on disk, and after a dump/load round trip.
    """
    from repro.recorder.logfile import dumps

    return _sha256(dumps(trace))


def _canonical_policy(policy: ThreadPolicy) -> Dict[str, Any]:
    return {
        "bound": policy.bound,
        "cpu": policy.cpu,
        "priority": policy.priority,
        "rt_priority": policy.rt_priority,
    }


def canonical_config(config: SimConfig) -> Dict[str, Any]:
    """JSON-safe canonical form of a :class:`SimConfig`.

    Every simulation-relevant field appears, in a representation that is
    independent of dict ordering and enum identity, so equal configs
    serialise to byte-identical JSON.
    """
    from repro.sched import backend_version

    costs = config.costs
    dispatch = config.dispatch
    return {
        # the backend's own version is part of the address: evolving one
        # backend's semantics re-keys its jobs without touching the rest
        "scheduler": {
            "name": config.scheduler,
            "version": backend_version(config.scheduler),
        },
        "cpus": config.cpus,
        "lwps": config.lwps,
        "comm_delay_us": config.comm_delay_us,
        "time_slicing": config.time_slicing,
        "rt_quantum_us": config.rt_quantum_us,
        "thread_policies": {
            str(tid): _canonical_policy(pol)
            for tid, pol in sorted(config.thread_policies.items())
        },
        "costs": {
            "base_costs": {
                prim.value: cost
                for prim, cost in sorted(
                    costs.base_costs.items(), key=lambda kv: kv[0].value
                )
            },
            "bound_create_factor": costs.bound_create_factor,
            "bound_sync_factor": costs.bound_sync_factor,
            "thread_switch_us": costs.thread_switch_us,
            "lwp_switch_us": costs.lwp_switch_us,
        },
        "dispatch": [
            [e.quantum_us, e.tqexp, e.slpret, e.maxwait_us, e.lwait]
            for e in dispatch.entries()
        ],
    }


def config_fingerprint(config: SimConfig) -> str:
    """Hex SHA-256 of the canonical configuration."""
    text = json.dumps(canonical_config(config), sort_keys=True, separators=(",", ":"))
    return _sha256(text)


def job_fingerprint(trace_fp: str, config: SimConfig) -> str:
    """Fingerprint of one unit of simulation work.

    ``sha256(engine_version || trace_fp || config_fp)`` — the content
    address under which the job's result is cached.
    """
    return _sha256(f"vppb-job:v{ENGINE_VERSION}:{trace_fp}:{config_fingerprint(config)}")


def lint_job_fingerprint(trace_fp: str, config: SimConfig) -> str:
    """Fingerprint of one predictive-lint probe (trace × grid config).

    Separate namespace and version from plain simulation jobs: a lint
    probe's result embeds rule semantics, so it must re-key when either
    the prediction engine *or* the lint rule set changes.
    """
    return _sha256(
        f"vppb-lint:v{LINT_VERSION}:e{ENGINE_VERSION}:"
        f"{trace_fp}:{config_fingerprint(config)}"
    )


def analytic_job_fingerprint(
    trace_fp: str, config: SimConfig, profile_fp: str
) -> str:
    """Fingerprint of one analytical estimate (trace × config × profile).

    Includes the calibration profile's content hash: re-calibrating
    changes the margins, so previously cached analytic answers must stop
    being served even though trace and config are unchanged.
    """
    return _sha256(
        f"vppb-analytic:v{ANALYTIC_VERSION}:e{ENGINE_VERSION}:{profile_fp}:"
        f"{trace_fp}:{config_fingerprint(config)}"
    )
