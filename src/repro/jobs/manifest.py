"""Sweep manifests: a declarative grid of prediction scenarios.

A manifest is a small JSON document describing everything ``vppb
batch`` should simulate from one trace::

    {
      "trace": "prodcons.log",
      "cpus": [1, 2, 3, 4, 5, 6, 7, 8],
      "bindings": ["unbound", "bound"],
      "lwps": [null],
      "comm_delay_us": [0],
      "schedulers": ["solaris", "clutch", "cfs"]
    }

``cpus`` may also be a ``{"min": 1, "max": 8}`` range.  The grid is the
cross product of all five axes; every cell becomes one content-addressed
job plus one shared uniprocessor-baseline job, so speed-ups match the
serial :func:`repro.analysis.whatif.speedup_curve` exactly.

``bindings`` values: ``"unbound"`` replays threads on the shared LWP
pool as recorded; ``"bound"`` gives every thread its own LWP (the §3.2
all-threads-bound manipulation, with the paper's bound-thread cost
multipliers applied).

``schedulers`` selects kernel scheduler backends (cross-OS what-if):
any names registered in :mod:`repro.sched`.  Defaults to
``["solaris"]``; cell labels carry a ``/<scheduler>`` suffix only for
non-default backends, so single-kernel manifests keep their labels.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import SimConfig, ThreadPolicy
from repro.core.errors import AnalysisError, ConfigError
from repro.core.trace import Trace
from repro.jobs.engine import JobEngine
from repro.jobs.model import JobOutcome, SimJob, TraceRef
from repro.jobs.tiering import (
    DEFAULT_TARGET_FRACTION,
    TierCell,
    decide,
    escalation_labels,
)
from repro.program.uniexec import uniprocessor_config

__all__ = ["SweepManifest", "ScenarioResult", "BatchReport", "run_manifest"]

_BINDINGS = ("unbound", "bound")

_MANIFEST_KEYS = (
    "trace", "cpus", "bindings", "lwps", "comm_delay_us", "schedulers",
)


def _parse_cpus(value: Any) -> List[int]:
    if isinstance(value, dict):
        try:
            lo, hi = int(value["min"]), int(value["max"])
        except (KeyError, TypeError, ValueError):
            raise AnalysisError(f"bad cpus range {value!r} (need min/max ints)")
        if not 1 <= lo <= hi:
            raise AnalysisError(f"bad cpus range {lo}..{hi}")
        return list(range(lo, hi + 1))
    if isinstance(value, list) and value:
        try:
            cpus = [int(v) for v in value]
        except (TypeError, ValueError):
            raise AnalysisError(f"bad cpus list {value!r}")
        if any(n < 1 for n in cpus):
            raise AnalysisError(f"bad cpus list {value!r}: counts must be >= 1")
        return cpus
    raise AnalysisError(f"manifest 'cpus' must be a non-empty list or min/max, got {value!r}")


@dataclass(frozen=True)
class SweepManifest:
    """A validated sweep description (see module docstring for format)."""

    trace_path: Path
    cpus: Sequence[int]
    bindings: Sequence[str] = ("unbound",)
    lwps: Sequence[Optional[int]] = (None,)
    comm_delays_us: Sequence[int] = (0,)
    schedulers: Sequence[str] = ("solaris",)

    @classmethod
    def from_dict(
        cls,
        data: Dict[str, Any],
        *,
        base_dir: Optional[Path] = None,
        source: Optional[str] = None,
    ) -> "SweepManifest":
        if not isinstance(data, dict):
            raise AnalysisError("manifest must be a JSON object")
        if "trace" not in data:
            raise AnalysisError("manifest is missing the 'trace' key")
        unknown = sorted(set(data) - set(_MANIFEST_KEYS))
        if unknown:
            # a typo'd axis silently shrinking the grid is the worst
            # failure mode a sweep can have — reject, locate, suggest
            parts = []
            for key in unknown:
                close = difflib.get_close_matches(key, _MANIFEST_KEYS, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                parts.append(f"{key!r}{hint}")
            where = f"{source}: " if source else ""
            raise ConfigError(
                f"{where}unknown manifest key{'s' if len(parts) > 1 else ''} "
                f"{', '.join(parts)}; valid keys: {', '.join(_MANIFEST_KEYS)}"
            )
        trace_path = Path(data["trace"])
        if base_dir is not None and not trace_path.is_absolute():
            trace_path = base_dir / trace_path
        bindings = tuple(data.get("bindings", ["unbound"]))
        for b in bindings:
            if b not in _BINDINGS:
                raise AnalysisError(
                    f"unknown binding {b!r} (expected one of {_BINDINGS})"
                )
        lwps_raw = data.get("lwps", [None])
        lwps: List[Optional[int]] = []
        for v in lwps_raw:
            if v is None:
                lwps.append(None)
            else:
                try:
                    lwps.append(int(v))
                except (TypeError, ValueError):
                    raise AnalysisError(f"bad lwps value {v!r}")
        delays = [int(v) for v in data.get("comm_delay_us", [0])]
        from repro.sched import available_backends

        schedulers = tuple(data.get("schedulers", ["solaris"]))
        known = available_backends()
        for s in schedulers:
            if s not in known:
                raise AnalysisError(
                    f"unknown scheduler {s!r} (expected one of {known})"
                )
        if not bindings or not lwps or not delays or not schedulers:
            raise AnalysisError("manifest axes must be non-empty")
        return cls(
            trace_path=trace_path,
            cpus=tuple(_parse_cpus(data.get("cpus", [2, 4, 8]))),
            bindings=bindings,
            lwps=tuple(lwps),
            comm_delays_us=tuple(delays),
            schedulers=schedulers,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepManifest":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise AnalysisError(f"cannot read manifest {path}: {exc}")
        except ValueError as exc:
            raise AnalysisError(f"manifest {path} is not valid JSON: {exc}")
        return cls.from_dict(data, base_dir=path.parent, source=str(path))

    # ------------------------------------------------------------------

    def grid_size(self) -> int:
        return (
            len(self.cpus) * len(self.bindings)
            * len(self.lwps) * len(self.comm_delays_us)
            * len(self.schedulers)
        )

    def configs(self, trace: Trace) -> List["_Cell"]:
        """Expand the grid; needs the trace for the all-bound policy."""
        tids = [int(t) for t in trace.thread_ids()]
        bound_policies = {t: ThreadPolicy(bound=True) for t in tids}
        cells = []
        for scheduler in self.schedulers:
            for binding in self.bindings:
                policies = bound_policies if binding == "bound" else {}
                for lwps in self.lwps:
                    for delay in self.comm_delays_us:
                        for cpus in self.cpus:
                            label = f"{cpus}cpu/{binding}"
                            if lwps is not None:
                                label += f"/lwps={lwps}"
                            if delay:
                                label += f"/comm={delay}us"
                            if scheduler != "solaris":
                                label += f"/{scheduler}"
                            cells.append(
                                _Cell(
                                    label=label,
                                    cpus=cpus,
                                    binding=binding,
                                    lwps=lwps,
                                    comm_delay_us=delay,
                                    scheduler=scheduler,
                                    config=SimConfig(
                                        cpus=cpus,
                                        lwps=lwps,
                                        comm_delay_us=delay,
                                        thread_policies=policies,
                                        scheduler=scheduler,
                                    ),
                                )
                            )
        return cells


@dataclass(frozen=True)
class _Cell:
    label: str
    cpus: int
    binding: str
    lwps: Optional[int]
    comm_delay_us: int
    config: SimConfig
    scheduler: str = "solaris"


@dataclass(frozen=True)
class ScenarioResult:
    """One grid cell's outcome, with its speed-up when computable.

    ``tier`` records how the cell was answered: ``"sim"`` (replayed),
    ``"analytic"`` (interval decided it) or ``"escalated"`` (interval
    straddled a decision, so it was replayed after all).  Analytic and
    escalated cells keep the ``[lo, hi]`` makespan ``interval`` the
    models produced.
    """

    label: str
    cpus: int
    binding: str
    lwps: Optional[int]
    comm_delay_us: int
    outcome: JobOutcome
    speedup: Optional[float]
    scheduler: str = "solaris"
    tier: str = "sim"
    interval: Optional[Tuple[int, int]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "cpus": self.cpus,
            "binding": self.binding,
            "lwps": self.lwps,
            "comm_delay_us": self.comm_delay_us,
            "scheduler": self.scheduler,
            "status": self.outcome.status,
            "makespan_us": self.outcome.makespan_us,
            "speedup": self.speedup,
            "tier": self.tier,
            "interval": list(self.interval) if self.interval else None,
            "from_cache": self.outcome.from_cache,
            "error": self.outcome.error,
            "reason": self.outcome.reason,
            "fingerprint": self.outcome.fingerprint,
        }


@dataclass
class BatchReport:
    """Everything ``vppb batch`` emits: rows plus engine metrics."""

    program: str
    trace_fingerprint: str
    baseline_us: Optional[int]
    scenarios: List[ScenarioResult]
    metrics: Dict[str, Any]
    #: which tier the sweep ran under ("sim", "analytic" or "auto")
    tier: str = "sim"
    #: the grid's decisions (best cell, per-group knees) — identical
    #: across tiers by the escalation policy's construction
    decisions: Dict[str, Any] = field(default_factory=dict)

    @property
    def failed(self) -> List[ScenarioResult]:
        return [s for s in self.scenarios if not s.outcome.ok]

    def status_counts(self) -> Dict[str, int]:
        """Scenario count per outcome status (complete, worker-crashed, ...)."""
        counts: Dict[str, int] = {}
        for s in self.scenarios:
            counts[s.outcome.status] = counts.get(s.outcome.status, 0) + 1
        return counts

    def cache_hit_rate(self) -> float:
        served = [s for s in self.scenarios if s.outcome.ok]
        if not served:
            return 0.0
        return sum(1 for s in served if s.outcome.from_cache) / len(served)

    def schedulers(self) -> List[str]:
        """Distinct backends in this report, in first-seen order."""
        seen: List[str] = []
        for s in self.scenarios:
            if s.scheduler not in seen:
                seen.append(s.scheduler)
        return seen

    def to_json(self) -> str:
        by_scheduler = {
            sched: [s.to_dict() for s in self.scenarios if s.scheduler == sched]
            for sched in self.schedulers()
        }
        return json.dumps(
            {
                "program": self.program,
                "trace_fingerprint": self.trace_fingerprint,
                "baseline_us": self.baseline_us,
                "tier": self.tier,
                "decisions": self.decisions,
                "scenarios": [s.to_dict() for s in self.scenarios],
                # per-backend nesting of the same cells, so cross-OS
                # consumers can index report["by_scheduler"]["cfs"]
                # without re-filtering the flat list
                "by_scheduler": by_scheduler,
                "metrics": self.metrics,
            },
            indent=2,
        )

    def format_table(self) -> str:
        multi = len(self.schedulers()) > 1
        tiered = self.tier != "sim"
        header = f"{'scenario':<28} "
        if multi:
            header += f"{'sched':<8} "
        if tiered:
            header += f"{'tier':<10} "
        header += f"{'status':<18} {'makespan':>12} {'speedup':>8}  src"
        lines = [
            f"batch sweep of {self.program} "
            f"({len(self.scenarios)} scenarios, trace {self.trace_fingerprint[:12]})",
            header,
        ]
        for s in self.scenarios:
            sched_col = f"{s.scheduler:<8} " if multi else ""
            tier_col = f"{s.tier:<10} " if tiered else ""
            if not s.outcome.ok:
                # distinct failure modes stay distinct per cell:
                # "failed" (the job raised), "worker-crashed" (retry
                # exhausted), "breaker-open" (never attempted)
                lines.append(
                    f"{s.label:<28} {sched_col}{tier_col}"
                    f"{s.outcome.status.upper():<18} "
                    f"{'-':>12} {'-':>8}  {s.outcome.error}"
                )
                continue
            speed = f"{s.speedup:.2f}" if s.speedup is not None else "-"
            src = "cache" if s.outcome.from_cache else "run"
            lines.append(
                f"{s.label:<28} {sched_col}{tier_col}{s.outcome.status:<18} "
                f"{s.outcome.makespan_us:>10}us {speed:>8}  {src}"
            )
        if self.failed:
            by_status: Dict[str, int] = {}
            for s in self.failed:
                by_status[s.outcome.status] = by_status.get(s.outcome.status, 0) + 1
            lines.append(
                "unanswered cells: "
                + ", ".join(f"{n}x {st}" for st, n in sorted(by_status.items()))
            )
        m = self.metrics
        cache = m.get("cache", {})
        lines.append(
            f"jobs: {m.get('jobs_completed', 0)} ok, {m.get('jobs_failed', 0)} failed, "
            f"{m.get('jobs_partial', 0)} partial; cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses (hit rate {cache.get('hit_rate', 0.0):.0%}); "
            f"scenario hit rate {self.cache_hit_rate():.0%}"
        )
        plan_cache = m.get("plan_cache", {})
        if plan_cache:
            lines.append(
                f"plan cache: {plan_cache.get('hits', 0)} hits / "
                f"{plan_cache.get('misses', 0)} misses "
                "(compiled replay plans reused across worker jobs)"
            )
        per_sched = m.get("schedulers", {})
        if len(per_sched) > 1:
            lines.append(
                "per scheduler: "
                + "; ".join(
                    f"{name}: {per['jobs']} jobs, "
                    f"{per['plan_cache_hits']} plan-cache hits"
                    for name, per in sorted(per_sched.items())
                )
            )
        if tiered:
            analytic = sum(1 for s in self.scenarios if s.tier == "analytic")
            escalated = sum(1 for s in self.scenarios if s.tier == "escalated")
            total = len(self.scenarios)
            lines.append(
                f"tier: {analytic}/{total} cells answered analytically, "
                f"{escalated} escalated to simulation"
            )
        if self.decisions:
            knees = ", ".join(
                f"{group or 'grid'}: {cpus if cpus is not None else '-'}cpu"
                for group, cpus in sorted(self.decisions.get("knees", {}).items())
            )
            lines.append(
                f"decisions: best {self.decisions.get('best')} "
                f"(speedup {self.decisions.get('best_speedup')}); knee at "
                f"{self.decisions.get('target_fraction'):.0%} of best: {knees}"
            )
        return "\n".join(lines)


def _cell_group(cell: _Cell) -> str:
    """One speed-up curve per binding/lwps/comm/scheduler combination."""
    group = cell.binding
    if cell.lwps is not None:
        group += f"/lwps={cell.lwps}"
    if cell.comm_delay_us:
        group += f"/comm={cell.comm_delay_us}us"
    if cell.scheduler != "solaris":
        group += f"/{cell.scheduler}"
    return group


def run_manifest(
    manifest: SweepManifest,
    engine: JobEngine,
    *,
    use_cache: bool = True,
    tier: str = "sim",
    analytic_profile=None,
    target_fraction: float = DEFAULT_TARGET_FRACTION,
) -> BatchReport:
    """Execute a sweep manifest through *engine* and assemble the report.

    *tier* selects how grid cells are answered: ``"sim"`` replays every
    cell; ``"analytic"`` answers every cell from the closed-form models
    (needs *analytic_profile*, an
    :class:`~repro.analytic.profile.AnalyticProfile`); ``"auto"`` starts
    analytic and escalates to simulation exactly the cells whose
    intervals cannot decide the sweep's queries (best cell, per-group
    knee at *target_fraction* of the group's best speed-up) — decisions
    then match a full ``"sim"`` run while replaying only the escalated
    subset.  The uniprocessor baseline is always simulated.
    """
    from repro.recorder import logfile

    if tier not in ("sim", "analytic", "auto"):
        raise AnalysisError(
            f"unknown tier {tier!r} (expected 'sim', 'analytic' or 'auto')"
        )
    if tier != "sim" and analytic_profile is None:
        raise AnalysisError(
            f"tier {tier!r} needs an analytic profile — run "
            "'vppb calibrate-analytic' or pass --analytic-profile"
        )

    trace = logfile.load(manifest.trace_path)
    ref = TraceRef(fingerprint=trace.fingerprint(), path=str(manifest.trace_path))
    cells = manifest.configs(trace)

    # one shared uniprocessor baseline: uniprocessor_config() is
    # invariant across the grid axes we expose (binding/lwps/comm
    # delay, and scheduler — the baseline models the *recorded* Solaris
    # uniprocessor run), so a single job anchors every speed-up figure
    # and cross-backend speed-ups stay comparable
    baseline_job = SimJob(
        trace=ref, config=uniprocessor_config(SimConfig()), label="baseline"
    )

    if tier == "sim":
        jobs = [baseline_job] + [
            SimJob(trace=ref, config=cell.config, label=cell.label)
            for cell in cells
        ]
        outcomes = engine.run(jobs, use_cache=use_cache)
        baseline = outcomes[0]
        cell_outcomes = {
            cell.label: (outcome, "sim", None)
            for cell, outcome in zip(cells, outcomes[1:])
        }
    else:
        from repro.jobs.model import AnalyticJob

        jobs = [baseline_job] + [
            AnalyticJob(
                trace=ref,
                config=cell.config,
                profile=analytic_profile,
                label=cell.label,
            )
            for cell in cells
        ]
        outcomes = engine.run(jobs, use_cache=use_cache)
        baseline = outcomes[0]
        cell_outcomes = {}
        for cell, outcome in zip(cells, outcomes[1:]):
            interval = None
            if outcome.ok and outcome.payload:
                interval = (
                    int(outcome.payload["lo_us"]),
                    int(outcome.payload["hi_us"]),
                )
            cell_outcomes[cell.label] = (outcome, "analytic", interval)

        if tier == "auto" and baseline.ok and baseline.makespan_us:
            tier_cells = []
            undecidable = []  # failed analytic answers must replay too
            for cell in cells:
                outcome, _, interval = cell_outcomes[cell.label]
                if interval is None:
                    undecidable.append(cell.label)
                    continue
                tier_cells.append(
                    TierCell(
                        label=cell.label,
                        group=_cell_group(cell),
                        cpus=cell.cpus,
                        lo_us=interval[0],
                        hi_us=interval[1],
                        point_us=outcome.makespan_us,
                        exact=False,
                    )
                )
            escalate = set(undecidable) | set(
                escalation_labels(
                    tier_cells,
                    baseline.makespan_us,
                    target_fraction=target_fraction,
                )
            )
            to_sim = [cell for cell in cells if cell.label in escalate]
            if to_sim:
                sim_outcomes = engine.run(
                    [
                        SimJob(trace=ref, config=cell.config, label=cell.label)
                        for cell in to_sim
                    ],
                    use_cache=use_cache,
                )
                for cell, outcome in zip(to_sim, sim_outcomes):
                    interval = cell_outcomes[cell.label][2]
                    cell_outcomes[cell.label] = (outcome, "escalated", interval)
        engine.metrics.tier_outcome(
            analytic_hits=sum(
                1 for o, t, _ in cell_outcomes.values() if t == "analytic" and o.ok
            ),
            escalations=sum(
                1 for _, t, _ in cell_outcomes.values() if t == "escalated"
            ),
        )

    baseline_us = baseline.makespan_us if baseline.ok else None
    scenarios = []
    tier_cells_final = []
    for cell in cells:
        outcome, cell_tier, interval = cell_outcomes[cell.label]
        speedup = None
        if outcome.ok and baseline_us and outcome.makespan_us:
            speedup = baseline_us / outcome.makespan_us
        scenarios.append(
            ScenarioResult(
                label=cell.label,
                cpus=cell.cpus,
                binding=cell.binding,
                lwps=cell.lwps,
                comm_delay_us=cell.comm_delay_us,
                outcome=outcome,
                speedup=speedup,
                scheduler=cell.scheduler,
                tier=cell_tier,
                interval=interval,
            )
        )
        if outcome.ok and outcome.makespan_us:
            exact = cell_tier != "analytic"
            tier_cells_final.append(
                TierCell(
                    label=cell.label,
                    group=_cell_group(cell),
                    cpus=cell.cpus,
                    lo_us=interval[0] if (interval and not exact) else outcome.makespan_us,
                    hi_us=interval[1] if (interval and not exact) else outcome.makespan_us,
                    point_us=outcome.makespan_us,
                    exact=exact,
                )
            )
    decisions = decide(
        tier_cells_final, baseline_us, target_fraction=target_fraction
    )
    return BatchReport(
        program=trace.meta.program,
        trace_fingerprint=ref.fingerprint,
        baseline_us=baseline_us,
        scenarios=scenarios,
        metrics=engine.snapshot(),
        tier=tier,
        decisions=decisions,
    )
