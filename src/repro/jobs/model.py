"""The unit of batch work: one simulation of one trace under one config.

A :class:`SimJob` pairs a :class:`TraceRef` (a log file on disk, or the
canonical text of an in-memory trace) with a
:class:`~repro.core.config.SimConfig`.  Its fingerprint is the content
address of the result; equal fingerprints mean equal work, so the cache
and the worker-side plan cache both key on it.

A :class:`JobOutcome` is deliberately flat and JSON-safe — it crosses
process boundaries (worker → engine) and lives in the on-disk cache, so
it carries scalars, not simulator objects.  The simulator's graceful
degradation surfaces here: a partial replay arrives as a normal outcome
with ``status`` set to the :class:`~repro.core.result.RunStatus` value
and ``reason`` describing the :class:`~repro.core.result.Incompleteness`;
only a job that produced *no* result (unparseable trace, crashed worker)
has ``error`` set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.core.config import SimConfig
from repro.core.result import RunStatus
from repro.core.trace import Trace
from repro.jobs.fingerprint import (
    analytic_job_fingerprint,
    job_fingerprint,
    lint_job_fingerprint,
    trace_fingerprint,
)

__all__ = ["TraceRef", "SimJob", "LintJob", "AnalyticJob", "JobOutcome"]


@dataclass(frozen=True)
class TraceRef:
    """A trace by content: a path to a log file and/or its canonical text.

    ``fingerprint`` is always set; ``path`` and ``text`` are alternative
    ways for a worker to materialise the trace.  Prefer ``path`` when one
    exists — it keeps the per-job pickle payload small.
    """

    fingerprint: str
    path: Optional[str] = None
    text: Optional[str] = None

    def __post_init__(self) -> None:
        if self.path is None and self.text is None:
            raise ValueError("TraceRef needs a path or inline text")

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceRef":
        from repro.recorder.logfile import dumps

        return cls(fingerprint=trace.fingerprint(), text=dumps(trace))

    @classmethod
    def from_path(cls, path: str) -> "TraceRef":
        """Reference a log file on disk (reads it once to fingerprint)."""
        from repro.recorder.logfile import load

        return cls(fingerprint=trace_fingerprint(load(path)), path=str(path))

    def load(self) -> Trace:
        from repro.recorder import logfile

        if self.path is not None:
            return logfile.load(self.path)
        return logfile.loads(self.text)


@dataclass(frozen=True)
class SimJob:
    """One simulation request: replay *trace* under *config*.

    ``label`` is a human-readable scenario name carried through to
    reports ("8cpu/bound"); it does not participate in the fingerprint.
    """

    trace: TraceRef
    config: SimConfig
    label: str = ""

    #: Worker-side dispatch key (see :func:`repro.jobs.worker.run_payload`).
    kind = "sim"

    @property
    def fingerprint(self) -> str:
        return job_fingerprint(self.trace.fingerprint, self.config)

    @classmethod
    def for_trace(
        cls, trace: Trace, config: SimConfig, *, label: str = ""
    ) -> "SimJob":
        return cls(trace=TraceRef.from_trace(trace), config=config, label=label)


@dataclass(frozen=True)
class LintJob:
    """One predictive-lint probe: does each hazard *manifest* when the
    trace replays under *config*?

    Same shape as :class:`SimJob` (the engine treats both uniformly) but
    a different fingerprint namespace — the result embeds lint-rule
    semantics, not just simulation output, so it re-keys when either
    version bumps.  The worker answers with a ``payload`` dict mapping
    finding fingerprints to a manifested bool (see
    :func:`repro.analysis.lint.predictive.probe_trace`).
    """

    trace: TraceRef
    config: SimConfig
    label: str = ""

    kind = "lint"

    @property
    def fingerprint(self) -> str:
        return lint_job_fingerprint(self.trace.fingerprint, self.config)

    @classmethod
    def for_trace(
        cls, trace: Trace, config: SimConfig, *, label: str = ""
    ) -> "LintJob":
        return cls(trace=TraceRef.from_trace(trace), config=config, label=label)


@dataclass(frozen=True)
class AnalyticJob:
    """One analytical estimate: closed-form makespan bounds, no replay.

    Same engine-facing shape as :class:`SimJob`, a third fingerprint
    namespace.  *profile* is an
    :class:`~repro.analytic.profile.AnalyticProfile` (typed loosely here
    to keep :mod:`repro.jobs.model` import-light; only its
    ``fingerprint()``/``to_dict()`` surface is used).  The worker answers
    with ``makespan_us`` set to the calibrated point estimate and a
    ``payload`` carrying the full ``[lo, hi]`` interval
    (see :func:`repro.jobs.worker.run_payload`).
    """

    trace: TraceRef
    config: SimConfig
    profile: Any
    label: str = ""

    kind = "analytic"

    @property
    def fingerprint(self) -> str:
        return analytic_job_fingerprint(
            self.trace.fingerprint, self.config, self.profile.fingerprint()
        )

    @classmethod
    def for_trace(
        cls, trace: Trace, config: SimConfig, profile: Any, *, label: str = ""
    ) -> "AnalyticJob":
        return cls(
            trace=TraceRef.from_trace(trace),
            config=config,
            profile=profile,
            label=label,
        )


@dataclass(frozen=True)
class JobOutcome:
    """The (JSON-safe) result of one job.

    ``status`` holds a :class:`RunStatus` value for any run that produced
    a result — ``"complete"`` for a full replay, the degradation verdict
    (``"deadlock"``, ``"budget-exhausted"``, ...) for a partial one.
    When no simulation happened at all, ``error`` says why and ``status``
    distinguishes the failure modes: ``"failed"`` (the job itself raised),
    ``"worker-crashed"`` (retry across pool rebuilds exhausted) and
    ``"breaker-open"`` (the engine refused to attempt it) — so a batch
    report can show *why* each cell went unanswered.
    """

    fingerprint: str
    status: str
    makespan_us: int = 0
    engine_events: int = 0
    reason: Optional[str] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    attempts: int = 1
    from_cache: bool = False
    label: str = ""
    #: 0-or-1 per job: did the worker's in-process plan cache serve the
    #: compiled replay plan (hit) or compile it fresh (miss)?
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Kind-specific result data (JSON-safe).  Lint probes return their
    #: per-finding manifestation verdicts here; plain simulation jobs
    #: leave it None.
    payload: Optional[Dict[str, Any]] = None

    #: The job raised before producing any result (unparseable trace, ...).
    FAILED = "failed"
    #: The job killed its worker process on every attempt (retry exhausted).
    CRASHED = "worker-crashed"
    #: The engine's circuit breaker was open; the job was never attempted.
    BREAKER_OPEN = "breaker-open"

    @property
    def ok(self) -> bool:
        """A result exists (complete or partial)."""
        return self.error is None

    @property
    def complete(self) -> bool:
        return self.status == RunStatus.COMPLETE.value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "status": self.status,
            "makespan_us": self.makespan_us,
            "engine_events": self.engine_events,
            "reason": self.reason,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
            "attempts": self.attempts,
            "label": self.label,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any], *, from_cache: bool = False) -> "JobOutcome":
        return cls(
            fingerprint=data["fingerprint"],
            status=data["status"],
            makespan_us=int(data.get("makespan_us", 0)),
            engine_events=int(data.get("engine_events", 0)),
            reason=data.get("reason"),
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            attempts=int(data.get("attempts", 1)),
            from_cache=from_cache,
            label=data.get("label", ""),
            plan_cache_hits=int(data.get("plan_cache_hits", 0)),
            plan_cache_misses=int(data.get("plan_cache_misses", 0)),
            payload=data.get("payload"),
        )

    def with_label(self, label: str) -> "JobOutcome":
        return replace(self, label=label)
