"""The asyncio front end: resilient HTTP serving over the job engine.

This is the production face of ``vppb serve``.  It speaks HTTP/1.1
directly over :func:`asyncio.start_server` (stdlib only — no aiohttp)
and layers the :mod:`repro.jobs.resilience` primitives around the same
:class:`~repro.jobs.service.PredictionService` core the legacy threaded
server uses, so both front ends return byte-identical envelopes.

What the event loop adds over the threaded server:

*Admission control.*  ``/predict`` passes through a bounded
:class:`~repro.jobs.resilience.AdmissionGate`; past the watermark the
request is shed immediately as ``429`` + ``Retry-After`` instead of
queueing without bound.  Shedding is cheap (no simulation work starts),
which is the point — under overload the server stays responsive.

*Deadlines.*  A per-request deadline (``X-VPPB-Deadline-S`` header,
``deadline_s`` body key, or the server default) becomes a watchdog wall
budget inside the simulator; when it expires the client gets ``504``
with whatever partial cells were salvaged.  A second, harder timeout
(1.5x + 0.5s) guards the transport itself so a wedged worker can never
hold a connection open forever.

*Circuit breaking.*  The engine's breaker state surfaces as ``503`` +
``Retry-After`` before any work is queued, and flips ``/healthz/ready``
so load balancers stop routing here while workers are crash-looping.

*Streaming ingest.*  ``/traces`` feeds the body chunk-by-chunk into a
:class:`~repro.recorder.salvage.SalvageStream` as it arrives —
Content-Length or chunked transfer encoding — enforcing the body cap
mid-stream (``413``) and salvaging damaged logs instead of rejecting
them outright.

*Graceful shutdown.*  :meth:`AsyncPredictionServer.shutdown` stops
accepting, lets in-flight requests drain (bounded by
``drain_timeout_s``), then flushes the result cache so a restart starts
warm.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, AsyncIterator, Dict, Optional, Tuple

from repro.jobs.engine import JobEngine
from repro.jobs.resilience import AdmissionGate
from repro.jobs.service import (
    DeadlineExceeded,
    PredictionService,
    ServiceError,
)

__all__ = ["AsyncPredictionServer", "BackgroundServer", "serve_async"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_HEADER_LINES = 100
_MAX_LINE_BYTES = 16 * 1024
_READ_CHUNK = 64 * 1024


class _Request:
    __slots__ = ("method", "path", "version", "headers", "close", "body_consumed")

    def __init__(self, method: str, path: str, version: str, headers: Dict[str, str]):
        self.method = method
        self.path = path
        self.version = version
        self.headers = headers
        conn = headers.get("connection", "").lower()
        self.close = conn == "close" or (version == "HTTP/1.0" and conn != "keep-alive")
        # True once the framed body has been read off the socket in
        # full; starts True for bodyless requests.  While False the
        # connection cannot be reused: leftover body bytes would be
        # parsed as the next request line.
        length = headers.get("content-length", "").strip()
        chunked = "chunked" in headers.get("transfer-encoding", "").lower()
        self.body_consumed = not chunked and length in ("", "0")


class AsyncPredictionServer:
    """One listening socket + the resilience layer around a service core."""

    def __init__(
        self,
        service: PredictionService,
        *,
        host: str = "127.0.0.1",
        port: int = 8123,
        max_inflight: int = 8,
        retry_after_s: float = 1.0,
        default_deadline_s: Optional[float] = None,
        drain_timeout_s: float = 10.0,
        verbose: bool = False,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.gate = AdmissionGate(max_inflight, retry_after_s=retry_after_s)
        self.default_deadline_s = default_deadline_s
        self.drain_timeout_s = drain_timeout_s
        self.verbose = verbose
        self.draining = False
        self.hard_timeouts = 0
        self.abandoned_workers = 0  # executor threads outliving a 504
        self._abandoned_lock = threading.Lock()
        self.flushed_on_shutdown = 0
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self._conns: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        # simulation work runs here so the event loop never blocks;
        # sized past the gate so shedding, not thread exhaustion, is
        # always the binding constraint
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, max_inflight + 2), thread_name_prefix="vppb-svc"
        )

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "AsyncPredictionServer":
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def shutdown(self) -> Dict[str, Any]:
        """Stop accepting, drain in-flight work, flush the result cache."""
        self.draining = True
        drained = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._idle is not None and self._inflight:
            try:
                await asyncio.wait_for(self._idle.wait(), self.drain_timeout_s)
            except asyncio.TimeoutError:
                drained = False
        # idle keep-alive connections sit parked in readline(); cut them
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
        self.flushed_on_shutdown = self.service.engine.cache.flush()
        self._executor.shutdown(wait=False, cancel_futures=True)
        return {
            "drained": drained,
            "abandoned_inflight": self._inflight,
            "cache_entries_flushed": self.flushed_on_shutdown,
        }

    # -- connection handling --------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                close = await self._respond(request, reader, writer)
                if close or request.close or self.draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            pass
        except asyncio.CancelledError:
            pass  # shutdown cut this idle connection; end the task cleanly
        except Exception as exc:  # never let a handler crash take the loop down
            if self.verbose:
                print(f"vppb serve: connection error: {exc!r}")
        finally:
            if task is not None:
                self._conns.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[_Request]:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            await self._send(writer, 400, {"error": "request line too long"}, close=True)
            return None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            await self._send(
                writer, 400, {"error": f"malformed request line: {line[:80]!r}"},
                close=True,
            )
            return None
        method, path, version = parts
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(raw) > _MAX_LINE_BYTES:
                await self._send(writer, 400, {"error": "header line too long"}, close=True)
                return None
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            await self._send(writer, 400, {"error": "too many headers"}, close=True)
            return None
        return _Request(method, path, version, headers)

    async def _body_chunks(self, reader, request: _Request) -> AsyncIterator[bytes]:
        """Yield the request body as it arrives, enforcing the size cap.

        Raises :class:`ServiceError` 413 mid-stream when the cap is hit
        (the caller must then close the connection — the rest of the
        body is unread) and 400 on framing errors.
        """
        cap = self.service.max_body_bytes
        if "chunked" in request.headers.get("transfer-encoding", "").lower():
            total = 0
            while True:
                size_line = await reader.readline()
                try:
                    size = int(size_line.strip().split(b";")[0], 16)
                except ValueError:
                    raise ServiceError(400, f"bad chunk header: {size_line[:40]!r}")
                if size == 0:
                    while True:  # consume (and ignore) any trailers
                        trailer = await reader.readline()
                        if trailer in (b"\r\n", b"\n", b""):
                            break
                    request.body_consumed = True
                    return
                total += size
                if total > cap:
                    self.service.count_rejected_body()
                    raise ServiceError(
                        413, f"body exceeds the {cap}-byte cap", extra={"cap": cap}
                    )
                yield await reader.readexactly(size)
                await reader.readexactly(2)  # CRLF after each chunk
        else:
            raw = request.headers.get("content-length", "0")
            try:
                length = int(raw)
            except ValueError:
                raise ServiceError(400, f"bad Content-Length: {raw!r}")
            if length < 0:
                raise ServiceError(400, f"bad Content-Length: {raw!r}")
            if length > cap:
                self.service.count_rejected_body()
                raise ServiceError(
                    413,
                    f"body of {length} bytes exceeds the {cap}-byte cap",
                    extra={"cap": cap},
                )
            remaining = length
            while remaining > 0:
                chunk = await reader.read(min(_READ_CHUNK, remaining))
                if not chunk:
                    raise ConnectionError("client closed mid-body")
                remaining -= len(chunk)
                yield chunk
            request.body_consumed = True

    async def _read_json(self, reader, request: _Request) -> Dict[str, Any]:
        body = bytearray()
        async for chunk in self._body_chunks(reader, request):
            body.extend(chunk)
        if not body:
            return {}
        try:
            parsed = json.loads(bytes(body))
        except ValueError as exc:
            raise ServiceError(400, f"body is not valid JSON: {exc}")
        if not isinstance(parsed, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return parsed

    # -- routing --------------------------------------------------------

    async def _respond(self, request: _Request, reader, writer) -> bool:
        """Handle one request; returns True when the connection must close."""
        self._inflight += 1
        self._idle.clear()
        error = False
        try:
            try:
                status, payload, retry_after = await self._route(request, reader)
            except DeadlineExceeded as exc:
                error = True
                status, payload, retry_after = exc.status, exc.body(), None
            except ServiceError as exc:
                error = True
                status, payload, retry_after = exc.status, exc.body(), exc.retry_after_s
            except (ConnectionError, asyncio.IncompleteReadError):
                raise
            except Exception as exc:
                # contract: a stack trace never reaches the wire
                error = True
                status, payload, retry_after = (
                    500,
                    {"error": f"internal error: {type(exc).__name__}: {exc}"},
                    None,
                )
            self.service.count_request(error=error)
            # any response sent before the body was fully read (413
            # mid-stream, 429 shed, 404, bad deadline, ...) leaves
            # unread body bytes on the socket; a keep-alive read would
            # parse those as the next request line, so the only safe
            # continuation is to close
            must_close = not request.body_consumed
            await self._send(
                writer, status, payload, retry_after_s=retry_after, close=must_close
            )
            return must_close
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _route(
        self, request: _Request, reader
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        method, path = request.method, request.path
        if method == "GET" and path in ("/healthz", "/healthz/live"):
            return 200, {"status": "ok"}, None
        if method == "GET" and path == "/healthz/ready":
            return self._readiness()
        if method == "GET" and path == "/metrics":
            return 200, self._metrics(), None
        if method == "POST" and path == "/traces":
            return 200, await self._ingest_trace(request, reader), None
        if method == "POST" and path == "/predict":
            return 200, await self._predict(request, reader), None
        if method == "POST" and path == "/lint":
            return 200, await self._lint(request, reader), None
        raise ServiceError(404, f"no such endpoint: {method} {path}")

    def _readiness(self) -> Tuple[int, Dict[str, Any], Optional[float]]:
        reasons = []
        retry_after = None
        if self.draining:
            reasons.append("draining")
        breaker = self.service.engine.breaker
        if breaker is not None:
            wait = breaker.reject_for()
            if wait is not None:
                reasons.append("circuit breaker open")
                retry_after = max(0.1, wait)
        if self.gate.headroom == 0:
            reasons.append("admission queue full")
            retry_after = retry_after or self.gate.retry_after_s
        if reasons:
            return 503, {"status": "unready", "reasons": reasons}, retry_after
        return 200, {"status": "ready", "headroom": self.gate.headroom}, None

    def _metrics(self) -> Dict[str, Any]:
        snapshot = self.service.metrics()
        snapshot["async"] = {
            "admission": self.gate.snapshot(),
            "inflight": self._inflight,
            "draining": self.draining,
            "hard_timeouts": self.hard_timeouts,
            "abandoned_workers": self.abandoned_workers,
            "default_deadline_s": self.default_deadline_s,
        }
        return snapshot

    async def _ingest_trace(self, request: _Request, reader) -> Dict[str, Any]:
        from repro.recorder.salvage import SalvageLimitError, SalvageStream

        stream = SalvageStream(
            source="upload", max_bytes=self.service.max_body_bytes
        )
        loop = asyncio.get_running_loop()
        try:
            async for chunk in self._body_chunks(reader, request):
                stream.feed(chunk)
        except SalvageLimitError as exc:
            self.service.count_rejected_body()
            raise ServiceError(
                413,
                f"body exceeds the {exc.limit}-byte cap",
                extra={"cap": exc.limit},
            )
        # the final salvage pass re-walks every record; keep it off the loop
        result = await loop.run_in_executor(self._executor, stream.finish)
        return self.service.store_salvaged(result)

    async def _predict(self, request: _Request, reader) -> Dict[str, Any]:
        if not self.gate.try_enter():
            self.service.count_shed()
            raise ServiceError(
                429,
                f"server at capacity ({self.gate.capacity} requests in flight); "
                "retry later",
                retry_after_s=self.gate.retry_after_s,
                extra={"admission": self.gate.snapshot()},
            )
        release_on_exit = True
        try:
            body = await self._read_json(reader, request)
            deadline_s = self._deadline_for(request, body)
            loop = asyncio.get_running_loop()
            # submit directly (not run_in_executor) so the concurrent
            # future stays reachable after a hard timeout abandons the
            # awaitable wrapper
            work_cf = self._executor.submit(
                functools.partial(self.service.predict, body, deadline_s=deadline_s)
            )
            work = asyncio.wrap_future(work_cf, loop=loop)
            if deadline_s is None:
                return await work
            # the watchdog honours the deadline cooperatively; this
            # harder stop catches a wedged worker or pool rebuild storm
            try:
                return await asyncio.wait_for(work, deadline_s * 1.5 + 0.5)
            except asyncio.TimeoutError:
                self.hard_timeouts += 1
                # the simulation is still burning its executor thread:
                # keep the admission slot held until that thread really
                # ends, so a storm of wedged requests sheds 429s instead
                # of exhausting the pool and queueing admitted work that
                # can never start before its own deadline
                release_on_exit = False
                with self._abandoned_lock:
                    self.abandoned_workers += 1
                work_cf.add_done_callback(self._reap_abandoned)
                raise ServiceError(
                    504,
                    f"deadline of {deadline_s}s exceeded before the engine "
                    "responded; no partial result was salvaged",
                    retry_after_s=self.gate.retry_after_s,
                )
        finally:
            if release_on_exit:
                self.gate.leave()

    async def _lint(self, request: _Request, reader) -> Dict[str, Any]:
        """Lint shares predict's admission gate (a ``whatif`` grid costs
        real engine work) but not its deadline machinery — findings are
        all-or-nothing, there is no partial envelope to salvage."""
        if not self.gate.try_enter():
            self.service.count_shed()
            raise ServiceError(
                429,
                f"server at capacity ({self.gate.capacity} requests in flight); "
                "retry later",
                retry_after_s=self.gate.retry_after_s,
                extra={"admission": self.gate.snapshot()},
            )
        try:
            body = await self._read_json(reader, request)
            loop = asyncio.get_running_loop()
            work_cf = self._executor.submit(
                functools.partial(self.service.lint, body)
            )
            return await asyncio.wrap_future(work_cf, loop=loop)
        finally:
            self.gate.leave()

    def _reap_abandoned(self, done) -> None:
        # runs on the executor thread when an abandoned simulation ends
        self.gate.leave()  # thread-safe
        with self._abandoned_lock:
            self.abandoned_workers -= 1
        if not done.cancelled():
            done.exception()  # retrieved; the client already got its 504

    def _deadline_for(
        self, request: _Request, body: Dict[str, Any]
    ) -> Optional[float]:
        raw = request.headers.get("x-vppb-deadline-s")
        if raw is None:
            raw = body.get("deadline_s")
        if raw is None:
            return self.default_deadline_s
        try:
            deadline = float(raw)
        except (TypeError, ValueError):
            raise ServiceError(400, f"bad deadline {raw!r}")
        if deadline <= 0:
            raise ServiceError(400, f"bad deadline {raw!r}: must be > 0")
        return deadline

    # -- response writing -----------------------------------------------

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        *,
        retry_after_s: Optional[float] = None,
        close: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        if retry_after_s is not None:
            head.append(f"Retry-After: {max(1, round(retry_after_s))}")
        head.append(f"Connection: {'close' if close or self.draining else 'keep-alive'}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


class BackgroundServer:
    """Run an :class:`AsyncPredictionServer` on a daemon thread.

    The test suite and the load benchmark both need a live server next
    to synchronous client code::

        with BackgroundServer(service, max_inflight=4) as bg:
            conn = HTTPConnection("127.0.0.1", bg.port)
            ...
    """

    def __init__(self, service: PredictionService, **kwargs: Any):
        self.service = service
        self._kwargs = kwargs
        self.server: Optional[AsyncPredictionServer] = None
        self.port: Optional[int] = None
        self.shutdown_report: Optional[Dict[str, Any]] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="vppb-async-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("async server failed to start within 10s")
        if self._startup_error is not None:
            raise RuntimeError("async server failed to start") from self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            try:
                self.server = AsyncPredictionServer(self.service, port=0, **self._kwargs)
                await self.server.start()
                self.port = self.server.port
                self._stop = asyncio.Event()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                raise
            self._started.set()
            await self._stop.wait()
            self.shutdown_report = await self.server.shutdown()

        try:
            self._loop.run_until_complete(main())
        except BaseException:
            pass
        finally:
            self._loop.close()

    def stop(self) -> Optional[Dict[str, Any]]:
        if self._loop is not None and self._stop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        return self.shutdown_report


def serve_async(
    *,
    host: str = "127.0.0.1",
    port: int = 8123,
    engine: Optional[JobEngine] = None,
    spool_dir: Optional[Path] = None,
    max_inflight: int = 8,
    default_deadline_s: Optional[float] = None,
    max_body_bytes: Optional[int] = None,
    drain_timeout_s: float = 10.0,
    verbose: bool = True,
) -> None:
    """Run the asyncio service until SIGINT/SIGTERM (``vppb serve``)."""
    engine = engine or JobEngine()
    service = PredictionService(
        engine, spool_dir=spool_dir, max_body_bytes=max_body_bytes
    )

    async def main() -> None:
        server = AsyncPredictionServer(
            service,
            host=host,
            port=port,
            max_inflight=max_inflight,
            default_deadline_s=default_deadline_s,
            drain_timeout_s=drain_timeout_s,
            verbose=verbose,
        )
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # non-Unix event loops
                pass
        if verbose:
            print(
                f"vppb serve: listening on http://{host}:{server.port} "
                f"({engine.mode} engine, {engine.workers} workers, "
                f"max {max_inflight} in flight"
                + (
                    f", {default_deadline_s}s default deadline"
                    if default_deadline_s
                    else ""
                )
                + "); Ctrl-C to stop"
            )
        await stop.wait()
        if verbose:
            print("vppb serve: draining in-flight requests")
        report = await server.shutdown()
        if verbose:
            print(
                "vppb serve: shut down "
                f"(drained={report['drained']}, "
                f"cache entries flushed={report['cache_entries_flushed']})"
            )

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        engine.close()
