"""``vppb client`` — a retrying HTTP client for the prediction service.

The transport-level mirror of the server's resilience layer: every
request retries with capped exponential backoff + full jitter
(:func:`repro.jobs.resilience.backoff_delays`) on connection failures
and on the server's explicit back-off signals (``429`` shed, ``503``
breaker open), honouring the ``Retry-After`` header when one is sent —
the server knows its own cooldown better than our jitter schedule does.

Not retried: client errors (4xx other than 429) because resending the
same bad request cannot help, and ``504`` deadline expiries because the
response may carry a salvaged partial result the caller wants.

Stdlib-only (``http.client``), one fresh connection per attempt; for a
localhost batch service connection reuse buys nothing and a stale
keep-alive socket after a server restart is one more failure mode.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.errors import VppbError
from repro.jobs.resilience import backoff_delays

__all__ = ["ClientError", "ServiceClient"]

_RETRYABLE_STATUSES = (429, 503)
_CHUNK = 64 * 1024


class ClientError(VppbError):
    """A request that failed for good (after any retries).

    ``status`` is the final HTTP status (0 when the server was never
    reached) and ``body`` the decoded JSON error envelope, when any.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 0,
        body: Optional[Dict[str, Any]] = None,
        attempts: int = 1,
    ):
        super().__init__(message)
        self.status = status
        self.body = body or {}
        self.attempts = attempts

    @property
    def partial(self) -> Optional[Dict[str, Any]]:
        """The salvaged partial envelope of a 504, when the server sent one."""
        return self.body.get("partial")


class ServiceClient:
    """Talk to one ``vppb serve`` instance with retry/backoff built in."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8123,
        *,
        timeout_s: float = 60.0,
        attempts: int = 4,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 10.0,
        rng=None,
        sleep=time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.attempts = max(1, attempts)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = rng
        self._sleep = sleep
        self.retries = 0  # observability: transport retries performed

    # -- the retry loop -------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
        chunks: Optional[Iterable[bytes]] = None,
    ) -> Dict[str, Any]:
        """One logical request; retries transport errors, 429 and 503.

        Returns the decoded JSON body of a 2xx response; raises
        :class:`ClientError` otherwise.  ``chunks`` switches to chunked
        transfer encoding (streaming upload) — such requests are only
        retried when the chunk source is re-iterable (a list, or a
        generator *factory* wrapper like :class:`_Reiterable`); a plain
        one-shot generator gets a single attempt, because replaying an
        exhausted generator would silently send an empty body.
        """
        if chunks is not None and iter(chunks) is chunks:
            attempts = 1  # one-shot iterator: a retry cannot replay it
        else:
            attempts = self.attempts
        delays = backoff_delays(
            attempts,
            base_s=self.backoff_base_s,
            cap_s=self.backoff_cap_s,
            rng=self._rng,
        )
        last_error: Optional[ClientError] = None
        for attempt in range(1, attempts + 1):
            try:
                status, payload, retry_after = self._once(
                    method, path, body=body, headers=headers, chunks=chunks
                )
            except (ConnectionError, HTTPException, OSError, TimeoutError) as exc:
                last_error = ClientError(
                    f"{method} {path}: cannot reach {self.host}:{self.port}: {exc}",
                    attempts=attempt,
                )
                retry_after = None
            else:
                if status < 300:
                    return payload
                last_error = ClientError(
                    f"{method} {path} -> {status}: "
                    + str(payload.get("error", "unknown error")),
                    status=status,
                    body=payload,
                    attempts=attempt,
                )
                if status not in _RETRYABLE_STATUSES:
                    raise last_error
            if attempt == attempts:
                break
            delay = next(delays, 0.0)
            if retry_after is not None:
                delay = max(delay, retry_after)
            self.retries += 1
            self._sleep(delay)
        raise last_error

    def _once(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes],
        headers: Optional[Dict[str, str]],
        chunks: Optional[Iterable[bytes]],
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            if chunks is not None:
                conn.putrequest(method, path)
                conn.putheader("Transfer-Encoding", "chunked")
                for name, value in (headers or {}).items():
                    conn.putheader(name, value)
                conn.endheaders()
                for chunk in chunks:
                    if chunk:
                        conn.send(b"%x\r\n%s\r\n" % (len(chunk), chunk))
                conn.send(b"0\r\n\r\n")
            else:
                conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw) if raw else {}
            except ValueError:
                payload = {"error": raw.decode("utf-8", errors="replace")[:200]}
            retry_after = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
            return response.status, payload, retry_after
        finally:
            conn.close()

    # -- the API --------------------------------------------------------

    def alive(self) -> bool:
        try:
            return self.request("GET", "/healthz").get("status") == "ok"
        except ClientError:
            return False

    def ready(self) -> Dict[str, Any]:
        try:
            return self.request("GET", "/healthz/ready")
        except ClientError as exc:
            if exc.status == 503:
                return exc.body
            raise

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/metrics")

    def upload_trace(
        self, source: Union[str, Path], *, stream: bool = False
    ) -> Dict[str, Any]:
        """POST a log file to ``/traces``; returns the server's envelope.

        With ``stream=True`` the file goes up in 64 KiB chunks (chunked
        transfer encoding) so the server can salvage-parse as it reads —
        streamed requests re-open the file per retry attempt.
        """
        path = Path(source)
        if stream:
            def chunk_source():
                with open(path, "rb") as fh:
                    while True:
                        chunk = fh.read(_CHUNK)
                        if not chunk:
                            return
                        yield chunk

            return self.request("POST", "/traces", chunks=_Reiterable(chunk_source))
        return self.request("POST", "/traces", body=path.read_bytes())

    def upload_text(self, text: str) -> Dict[str, Any]:
        return self.request("POST", "/traces", body=text.encode("utf-8"))

    def predict(
        self,
        *,
        trace: Optional[str] = None,
        log: Optional[str] = None,
        cpus: Optional[List[int]] = None,
        binding: str = "unbound",
        lwps: Optional[int] = None,
        comm_delay_us: int = 0,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """POST ``/predict``; pass a ``trace`` fingerprint or raw ``log``."""
        request: Dict[str, Any] = {"binding": binding}
        if trace is not None:
            request["trace"] = trace
        if log is not None:
            request["log"] = log
        if cpus is not None:
            request["cpus"] = cpus
        if lwps is not None:
            request["lwps"] = lwps
        if comm_delay_us:
            request["comm_delay_us"] = comm_delay_us
        headers = {"Content-Type": "application/json"}
        if deadline_s is not None:
            request["deadline_s"] = deadline_s
        return self.request(
            "POST",
            "/predict",
            body=json.dumps(request).encode("utf-8"),
            headers=headers,
        )


class _Reiterable:
    """Wrap a generator factory so retries can restart the stream."""

    def __init__(self, factory):
        self._factory = factory

    def __iter__(self):
        return iter(self._factory())
