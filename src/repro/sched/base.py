"""The scheduler-backend contract: kernel policy behind a fixed interface.

The simulator's :class:`~repro.solaris.scheduler.Scheduler` is pure
*mechanism*: CPUs, the LWP pool, user-level multiplexing of unbound
threads, burst/quantum event arming, block/wake delivery and the
communication delay.  Everything that makes those decisions *Solaris*
decisions — which LWP runs next, who gets preempted, how long a time
slice is, how priorities age — lives in a :class:`SchedulerBackend`.

Swapping the backend answers the cross-OS what-if question: replay the
same recorded trace under a different kernel's dispatch policy.  The
contract (see ``docs/schedulers.md`` for the full semantics):

``thread_setrun(lwp, boost)``
    An LWP is entering the kernel run queue because its thread woke (or
    was just created).  ``boost`` is True for sleep/block returns.  The
    backend adjusts placement state (Solaris: *slpret* priority lift;
    CFS: sleeper-fairness vruntime placement).
``sched_tick(runnable, now)``
    Run-queue maintenance, called at the top of every dispatch pass
    over the current runnable list (Solaris: starvation lifts; Clutch:
    root-bucket deadline refresh).
``thread_select(runnable)``
    Order the runnable LWPs into dispatch preference, best first.  May
    sort in place; must return a total, deterministic order (ties by
    ``enqueue_seq`` — never by id() or wall clock).
``quantum_for(lwp)``
    The time slice to grant the LWP next time it runs.
``quantum_expire(lwp)``
    The LWP used up its slice while ONPROC: apply accounting (Solaris:
    *tqexp* demotion; CFS: vruntime charge).
``quantum_yield(lwp)``
    After expiry accounting: must the LWP surrender its CPU to a queued
    contender, or may it run another slice?
``find_victim(lwp, allowed)``
    No allowed CPU is idle: pick the CPU whose running LWP the
    candidate preempts, or None to keep the candidate queued.

Backends may additionally define ``on_dispatch(lwp)`` /
``on_deschedule(lwp)`` hooks (not present on the base class): the
mechanism calls them when an LWP goes on / comes off a processor, which
is where usage-driven policies (CFS vruntime, Clutch timeshare decay)
account CPU time.  A third optional hook, ``on_contention(runnable)``,
fires when a dispatch pass ends with runnable LWPs still queued (no
idle CPU, no preemption): tickless backends use it to collapse an
extended uncontended slice back to a real one via
:meth:`Scheduler.retick` — the NO_HZ re-arm.  The Solaris backend
defines none of the three, so the stock model pays no per-placement
overhead for them.

Ticking every short CFS/Clutch quantum on an *uncontended* processor
would flood the discrete-event queue with no-op expiries (charge,
re-arm, nothing to yield to).  Real kernels stopped doing this years
ago (Linux ``NO_HZ``, XNU's timer coalescing); backends model it by
returning :data:`TICKLESS_SLICE_US` from ``quantum_for`` when no
compatible contender is queued, and re-ticking from ``on_contention``
when one appears.

Determinism is part of the contract: a backend must be a pure function
of simulation state (integer arithmetic, insertion-ordered containers,
stable sorts).  The engine's replay determinism — and the content-
addressed result cache keyed on ``(trace, config, backend name+version)``
— depend on it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.solaris.lwp import SimLwp
    from repro.solaris.scheduler import Scheduler, SimCpu

__all__ = [
    "SchedulerBackend",
    "TICKLESS_SLICE_US",
    "register_backend",
    "create_backend",
    "available_backends",
    "backend_version",
]

#: the "slice" granted by a tickless backend when no compatible
#: contender is queued (~18 simulated minutes — far beyond any burst,
#: so the timer is effectively parked).  ``on_contention`` re-ticks the
#: running LWP down to a real slice the moment a contender fails to
#: place, so the parked timer never delays a runnable thread.
TICKLESS_SLICE_US = 1 << 30


class SchedulerBackend:
    """Base class for kernel scheduling policies (see module docstring).

    Subclasses set ``name`` (the ``SimConfig.scheduler`` value) and
    ``version`` (bumped on any semantic change — it is baked into job
    fingerprints, so cached results under the old semantics stop being
    served).
    """

    #: registry key and the value of ``SimConfig.scheduler``
    name: str = ""
    #: semantic version, part of every job fingerprint
    version: int = 0

    sched: "Scheduler"

    def bind(self, sched: "Scheduler") -> None:
        """Attach to the mechanism before the first dispatch."""
        self.sched = sched
        self.config = sched.config
        self.dispatch_table = sched.dispatch_table

    # -- policy hooks ---------------------------------------------------

    def thread_setrun(self, lwp: "SimLwp", boost: bool) -> None:
        raise NotImplementedError

    def sched_tick(self, runnable: "List[SimLwp]", now: int) -> None:
        """Run-queue maintenance; default: none."""

    def thread_select(self, runnable: "List[SimLwp]") -> "List[SimLwp]":
        raise NotImplementedError

    def quantum_for(self, lwp: "SimLwp") -> int:
        raise NotImplementedError

    def quantum_expire(self, lwp: "SimLwp") -> None:
        """Expiry accounting; default: none."""

    def quantum_yield(self, lwp: "SimLwp") -> bool:
        raise NotImplementedError

    def find_victim(
        self, lwp: "SimLwp", allowed: "List[SimCpu]"
    ) -> "Optional[SimCpu]":
        raise NotImplementedError


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type[SchedulerBackend]] = {}


def register_backend(cls: Type[SchedulerBackend]) -> Type[SchedulerBackend]:
    """Class decorator adding a backend to the name registry."""
    if not cls.name:
        raise ValueError(f"backend {cls!r} has no name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"scheduler backend {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def backend_version(name: str) -> int:
    """The fingerprint version of backend *name*."""
    return _lookup(name).version


def create_backend(name: str) -> SchedulerBackend:
    """Instantiate the backend registered under *name*."""
    return _lookup(name)()


def _lookup(name: str) -> Type[SchedulerBackend]:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends()) or "none registered"
        raise ValueError(
            f"unknown scheduler backend {name!r} (known: {known})"
        ) from None
