"""The Solaris 2.5 TS/RT dispatch policy as a scheduler backend (§3.2).

This is the policy half of the original two-level model, extracted
verbatim from the scheduler so the mechanism could host other kernels.
Its decisions are **bit-identical** to the pre-refactor scheduler — the
differential parity suite (``tests/test_replay_fastpath.py``,
``tests/test_sched_parity.py``) pins that:

* effective priority is the Solaris global priority ordering: every RT
  LWP outranks every TS LWP, fixed within its class;
* dispatch order is ``(-effective priority, enqueue_seq)`` — strict
  priority with FIFO among equals;
* TS LWPs age by the dispatch table: *tqexp* demotion on quantum
  expiry, *slpret* lift on sleep return, *maxwait/lwait* starvation
  lifts applied during dispatch; RT priorities never move;
* preemption displaces the lowest-priority running LWP strictly below
  the candidate (first-lowest in CPU order);
* on expiry the LWP yields only to an equal-or-higher priority queued
  contender that may run on its CPU, else it runs another slice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.sched.base import SchedulerBackend, register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.solaris.lwp import SimLwp
    from repro.solaris.scheduler import SimCpu

__all__ = ["SolarisBackend"]


def _effective_priority(lwp: "SimLwp") -> int:
    """Global dispatch priority: every RT LWP outranks every TS LWP
    (the Solaris global priority ordering), fixed within its class."""
    return lwp.kernel_priority + (1_000 if lwp.rt else 0)


@register_backend
class SolarisBackend(SchedulerBackend):
    """Two-level Solaris 2.5 kernel dispatch (the paper's model)."""

    name = "solaris"
    version = 1

    def thread_setrun(self, lwp: "SimLwp", boost: bool) -> None:
        # sleep-return lift (slpret); RT priorities are fixed
        if boost and not lwp.rt:
            lwp.kernel_priority = self.dispatch_table.after_sleep(
                lwp.kernel_priority
            )

    def sched_tick(self, runnable: "List[SimLwp]", now: int) -> None:
        # starvation lifts (maxwait/lwait), applied while dispatching
        dispatch = self.dispatch_table
        for lwp in runnable:
            if lwp.rt:
                continue  # RT priorities are fixed, never lifted
            waited = now - lwp.runnable_since_us
            if waited > dispatch.maxwait_us(lwp.kernel_priority):
                lwp.kernel_priority = dispatch.after_starvation(
                    lwp.kernel_priority
                )
                lwp.runnable_since_us = now

    def thread_select(self, runnable: "List[SimLwp]") -> "List[SimLwp]":
        if len(runnable) > 1:
            runnable.sort(key=lambda l: (-_effective_priority(l), l.enqueue_seq))
        return runnable

    def quantum_for(self, lwp: "SimLwp") -> int:
        if lwp.rt:
            return self.config.rt_quantum_us
        return self.dispatch_table.quantum_us(lwp.kernel_priority)

    def quantum_expire(self, lwp: "SimLwp") -> None:
        if not lwp.rt:
            # TS aging; RT priorities are fixed (pure round-robin)
            lwp.kernel_priority = self.dispatch_table.after_quantum_expiry(
                lwp.kernel_priority
            )

    def quantum_yield(self, lwp: "SimLwp") -> bool:
        my_pri = _effective_priority(lwp)
        for other in self.sched._runnable.values():
            if _effective_priority(other) >= my_pri and (
                other.bound_cpu is None or other.bound_cpu == lwp.cpu
            ):
                return True
        return False

    def find_victim(
        self, lwp: "SimLwp", allowed: "List[SimCpu]"
    ) -> "Optional[SimCpu]":
        # displace the lowest-priority running LWP that is strictly
        # below us (RT outranks every TS LWP)
        victim_cpu: "Optional[SimCpu]" = None
        victim_pri = _effective_priority(lwp)
        for cpu in allowed:
            running = cpu.lwp
            assert running is not None
            if _effective_priority(running) < victim_pri:
                victim_pri = _effective_priority(running)
                victim_cpu = cpu
        return victim_cpu
