"""A CFS-style scheduler backend (Linux's Completely Fair Scheduler).

Fair-class LWPs are ordered by **virtual runtime**: every µs an LWP
spends on a processor advances its vruntime by ``1024 / weight`` µs, so
lighter (lower-priority) LWPs age faster and the one with the smallest
vruntime always runs next.  The model follows the kernel's design:

* **weights** come from the standard ``prio_to_weight`` table.  The
  recorded Solaris TS priority (0..59, 29 default) maps linearly onto
  nice +19..-20, with priority 29 landing on nice 0 (weight 1024), so
  traces recorded without priority manipulation replay at uniform
  weight;
* **slicing**: the granted slice is ``max(min_granularity, latency /
  nr)`` where ``nr`` counts the LWP itself plus the queued fair
  contenders that may run on its CPU — the scheduling latency window
  shared among the effective runqueue, floored so heavy contention
  cannot shrink slices to nothing (defaults 6 ms / 0.75 ms, the
  kernel's).  With no contender the tick is **parked** (NO_HZ): an
  uncontended LWP runs untimed instead of flooding the event queue
  with no-op expiries, and ``on_contention`` re-arms the tick the
  moment a contender queues without placing;
* **sleeper fairness**: an LWP waking from sleep/block is placed at
  ``max(own vruntime, min_vruntime − latency/2)`` — it gets a modest
  wake-up advantage but cannot bank unbounded credit while asleep.  A
  brand-new LWP starts at ``min_vruntime`` (no credit for being born);
* **wake-preemption**: a waking LWP preempts the running LWP with the
  largest vruntime, but only when the victim trails by more than the
  wakeup granularity (1 ms, scaled by the candidate's weight) —
  hysteresis against preemption storms;
* on **expiry** the LWP is requeued whenever any compatible contender
  is queued (``check_preempt_tick``: exhausting the slice reschedules
  if the runqueue is non-empty);
* the **RT class** sits above the fair class, exactly as on Linux:
  RT LWPs order by fixed priority ahead of every fair LWP, preempt any
  fair LWP, round-robin on ``rt_quantum_us``, and are never charged
  vruntime.

Simplifications, documented as such: one global runqueue (per-CPU
runqueues plus load balancing collapse to this on a machine whose CPUs
are symmetric and whose affinity axis is per-thread binding), and
vruntime lives on the LWP — under the two-level model the kernel
schedules LWPs, so a pool LWP's vruntime follows the LWP, not the user
thread it happens to carry.  All arithmetic is integer (vruntime in
weighted µs, ``delta * 1024 // weight``); ties close by
``enqueue_seq``; replay stays deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sched.base import (
    TICKLESS_SLICE_US,
    SchedulerBackend,
    register_backend,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.solaris.lwp import SimLwp
    from repro.solaris.scheduler import SimCpu

__all__ = ["CfsBackend"]

#: scheduling latency window shared by the runqueue (µs)
SCHED_LATENCY_US = 6_000
#: slice floor under heavy contention (µs)
MIN_GRANULARITY_US = 750
#: wake-preemption hysteresis (µs, at nice-0 weight)
WAKEUP_GRANULARITY_US = 1_000

#: nice-0 load weight; vruntime advances by ``delta * 1024 // weight``
NICE_0_WEIGHT = 1024

#: the kernel's prio_to_weight[] table, nice -20 .. +19
WEIGHTS = (
    88761, 71755, 56483, 46273, 36291,
    29154, 23254, 18705, 14949, 11916,
    9548, 7620, 6100, 4904, 3906,
    3121, 2501, 1991, 1586, 1277,
    1024, 820, 655, 526, 423,
    335, 272, 215, 172, 137,
    110, 87, 70, 56, 45,
    36, 29, 23, 18, 15,
)


def _weight(lwp: "SimLwp") -> int:
    """Load weight from the recorded TS priority (29 → nice 0)."""
    nice = (29 - lwp.kernel_priority) * 2 // 3
    if nice < -20:
        nice = -20
    elif nice > 19:
        nice = 19
    return WEIGHTS[nice + 20]


@register_backend
class CfsBackend(SchedulerBackend):
    """vruntime ordering, min-granularity slicing, wake-preemption."""

    name = "cfs"
    version = 1

    def bind(self, sched) -> None:
        super().bind(sched)
        #: vruntime per LWP id (weighted µs)
        self._vruntime: Dict[int, int] = {}
        #: dispatch/charge timestamp per ONPROC LWP id
        self._since_us: Dict[int, int] = {}
        #: monotonic floor of the queue's vruntime (wake placement)
        self._min_vruntime = 0

    # -- vruntime accounting -------------------------------------------

    def _vr(self, lwp: "SimLwp") -> int:
        """Committed vruntime, initialised at min_vruntime on first use
        (a new LWP earns no credit for not having existed)."""
        lid = int(lwp.lwp_id)
        vr = self._vruntime.get(lid)
        if vr is None:
            vr = self._min_vruntime
            self._vruntime[lid] = vr
        return vr

    def _vr_now(self, lwp: "SimLwp", now: int) -> int:
        """Committed vruntime plus the uncharged ONPROC stretch."""
        vr = self._vr(lwp)
        since = self._since_us.get(int(lwp.lwp_id))
        if since is not None and now > since:
            vr += (now - since) * NICE_0_WEIGHT // _weight(lwp)
        return vr

    def _charge(self, lwp: "SimLwp") -> None:
        lid = int(lwp.lwp_id)
        now = self.sched.engine.now_us
        since = self._since_us.pop(lid, None)
        if since is not None and not lwp.rt:
            delta_vr = (now - since) * NICE_0_WEIGHT // _weight(lwp)
            vr = self._vr(lwp) + delta_vr
            self._vruntime[lid] = vr
            if vr > self._min_vruntime:
                # monotonic advance; lazily tightened in thread_setrun
                self._advance_min_vruntime(now)

    def _advance_min_vruntime(self, now: int) -> None:
        """min_vruntime tracks the smallest vruntime still in play
        (queued or running), and never moves backwards."""
        floor: Optional[int] = None
        for other in self.sched._runnable.values():
            if other.rt:
                continue
            vr = self._vr(other)
            if floor is None or vr < floor:
                floor = vr
        for cpu in self.sched.cpus:
            running = cpu.lwp
            if running is not None and not running.rt:
                vr = self._vr_now(running, now)
                if floor is None or vr < floor:
                    floor = vr
        if floor is not None and floor > self._min_vruntime:
            self._min_vruntime = floor

    def on_dispatch(self, lwp: "SimLwp") -> None:
        self._since_us[int(lwp.lwp_id)] = self.sched.engine.now_us
        # CFS grants a fresh slice per pick; a preempted LWP does not
        # resume a banked remainder (its claim lives in vruntime)
        lwp.quantum_remaining_us = 0

    def on_deschedule(self, lwp: "SimLwp") -> None:
        self._charge(lwp)

    # -- the SchedulerBackend hooks ------------------------------------

    def thread_setrun(self, lwp: "SimLwp", boost: bool) -> None:
        if lwp.rt:
            return
        now = self.sched.engine.now_us
        self._advance_min_vruntime(now)
        lid = int(lwp.lwp_id)
        vr = self._vr(lwp)
        if boost:
            # sleeper fairness: bounded wake-up credit
            placed = self._min_vruntime - SCHED_LATENCY_US // 2
            if placed > vr:
                self._vruntime[lid] = placed

    def thread_select(self, runnable: "List[SimLwp]") -> "List[SimLwp]":
        if len(runnable) > 1:
            runnable.sort(
                key=lambda l: (
                    (0, -l.kernel_priority, l.enqueue_seq)
                    if l.rt
                    else (1, self._vr(l), l.enqueue_seq)
                )
            )
        return runnable

    def quantum_for(self, lwp: "SimLwp") -> int:
        if lwp.rt:
            return self.config.rt_quantum_us
        # the global-runqueue collapse of the per-CPU rq: this CPU's
        # effective queue is the LWP itself plus every queued fair
        # contender that may run here — NOT the other CPUs' running
        # LWPs, which occupy their own runqueues
        cpu = lwp.cpu
        nr = 1
        for o in self.sched._runnable.values():
            if not o.rt and (o.bound_cpu is None or o.bound_cpu == cpu):
                nr += 1
        if nr == 1:
            # nothing to share the latency window with: park the tick
            # (NO_HZ); on_contention re-arms it when a contender queues
            return TICKLESS_SLICE_US
        return max(MIN_GRANULARITY_US, SCHED_LATENCY_US // nr)

    def quantum_expire(self, lwp: "SimLwp") -> None:
        # commit the consumed slice so the re-queued LWP sorts by what
        # it actually ran; the LWP is still ONPROC (the mechanism's
        # stale-timer guard), so restart the charge clock — a follow-up
        # preemption then charges a zero-length stretch harmlessly
        self._charge(lwp)
        self._since_us[int(lwp.lwp_id)] = self.sched.engine.now_us

    def quantum_yield(self, lwp: "SimLwp") -> bool:
        """check_preempt_tick: exhausting the slice reschedules when
        any compatible contender is queued."""
        for other in self.sched._runnable.values():
            if other.bound_cpu is None or other.bound_cpu == lwp.cpu:
                return True
        return False

    def on_contention(self, runnable: "List[SimLwp]") -> None:
        """A queued contender found no idle CPU and failed
        wake-preemption: collapse any parked tickless slice back to the
        real one, measured from the dispatch stamp, so the contender
        waits at most a slice (Linux re-arms the tick the moment a
        second task lands on a NO_HZ core)."""
        now = self.sched.engine.now_us
        retick = self.sched.retick
        for cpu in self.sched.cpus:
            running = cpu.lwp
            if running is None or running.rt:
                continue
            slice_us = self.quantum_for(running)
            if slice_us >= TICKLESS_SLICE_US:
                continue  # no contender may run here
            ran = now - self._since_us.get(int(running.lwp_id), now)
            retick(running, max(MIN_GRANULARITY_US, slice_us - ran))

    def find_victim(
        self, lwp: "SimLwp", allowed: "List[SimCpu]"
    ) -> "Optional[SimCpu]":
        now = self.sched.engine.now_us
        if lwp.rt:
            # the RT class preempts any fair LWP, or a lower RT priority
            victim_cpu: "Optional[SimCpu]" = None
            best = (1, lwp.kernel_priority)  # (class, priority): fair < RT
            for cpu in allowed:
                running = cpu.lwp
                assert running is not None
                key = (1, running.kernel_priority) if running.rt else (0, 0)
                if key < best:
                    best = key
                    victim_cpu = cpu
            return victim_cpu
        # fair wake-preemption: displace the largest-vruntime fair LWP,
        # with the wakeup-granularity hysteresis; never preempt RT
        gran_vr = WAKEUP_GRANULARITY_US * NICE_0_WEIGHT // _weight(lwp)
        threshold = self._vr(lwp) + gran_vr
        victim_cpu = None
        worst = threshold
        for cpu in allowed:
            running = cpu.lwp
            assert running is not None
            if running.rt:
                continue
            vr = self._vr_now(running, now)
            if vr > worst:
                worst = vr
                victim_cpu = cpu
        return victim_cpu
