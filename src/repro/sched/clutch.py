"""A Clutch-style scheduler backend (XNU's EDF root-bucket design).

Models the top level of Apple's Clutch hierarchy on this simulator's
LWP population:

* LWPs map to **root buckets** by scheduling class and priority band —
  RT LWPs land in FIXPRI; TS LWPs in FG / IN / DF / UT / BG by their
  recorded kernel priority (see :func:`_bucket_for`);
* the runnable bucket with the **earliest deadline** runs first.  A
  bucket's deadline is set to ``now + WCEL`` (worst-case execution
  latency) when it turns non-empty, so interactive buckets with short
  WCELs bound their scheduling latency while batch buckets soak up the
  remaining bandwidth — and a long-queued background bucket eventually
  outranks everyone, which is the design's starvation avoidance;
* higher buckets hold a **warp budget**: while it lasts they may jump
  ahead of an earlier-deadline lower bucket (low-latency bursts).  A
  warped selection charges the bucket its quantum; winning a selection
  on deadline merit refills the budget.  Warp bends selection order
  only — preemption and expiry decisions compare plain deadlines;
* within a bucket, **timeshare decay** orders LWPs: an LWP's intra-
  bucket priority falls by one level per ``2^DECAY_SHIFT`` µs of CPU it
  has consumed, FIFO among equals — CPU hogs sink, interactive LWPs
  stay near the front;
* FIXPRI ignores all of that: it always outranks the share buckets and
  orders by raw RT priority (matching the Solaris RT invariant, so RT
  conformance tests hold across backends).

WCEL, warp and quantum values follow the published XNU tables
(microseconds).  Quanta are granted fresh per selection, and on an
uncontended processor the tick is parked entirely (XNU coalesces idle
timers the same way): round-robin ticking only runs while a compatible
contender is queued, with ``on_contention`` re-arming the tick when one
appears.  This is a *style* port, not a port of the XNU sources:
the second hierarchy level (per-thread-group clutch buckets) is
collapsed, since the simulated process is a single thread group.  All
arithmetic is integer and all orderings close ties by ``enqueue_seq``,
keeping replay deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sched.base import (
    TICKLESS_SLICE_US,
    SchedulerBackend,
    register_backend,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.solaris.lwp import SimLwp
    from repro.solaris.scheduler import SimCpu

__all__ = ["ClutchBackend"]

# root buckets, highest first
FIXPRI, FG, IN, DF, UT, BG = range(6)
_SHARE_BUCKETS = (FG, IN, DF, UT, BG)

#: worst-case execution latency per share bucket (µs, XNU values)
WCEL_US = {FG: 0, IN: 37_500, DF: 75_000, UT: 150_000, BG: 250_000}
#: warp budget per share bucket (µs, XNU values)
WARP_US = {FG: 8_000, IN: 4_000, DF: 2_000, UT: 1_000, BG: 0}
#: time slice per share bucket (µs)
QUANTUM_US = {FG: 10_000, IN: 8_000, DF: 6_000, UT: 4_000, BG: 2_000}

#: intra-bucket timeshare decay: one priority level per 2^14 µs (~16 ms)
#: of consumed CPU
DECAY_SHIFT = 14


def _bucket_for(lwp: "SimLwp") -> int:
    """Map an LWP to its root bucket by class and priority band."""
    if lwp.rt:
        return FIXPRI
    kp = lwp.kernel_priority
    if kp >= 45:
        return FG
    if kp >= 35:
        return IN
    if kp >= 25:
        return DF
    if kp >= 10:
        return UT
    return BG


@register_backend
class ClutchBackend(SchedulerBackend):
    """EDF root buckets + warp budgets + timeshare decay."""

    name = "clutch"
    version = 1

    def bind(self, sched) -> None:
        super().bind(sched)
        #: absolute deadline of each currently non-empty share bucket
        self._deadline: Dict[int, int] = {}
        #: remaining warp budget per share bucket
        self._warp: Dict[int, int] = dict(WARP_US)
        #: CPU consumed per LWP id (drives timeshare decay)
        self._used_us: Dict[int, int] = {}
        #: dispatch timestamp per LWP id (charge basis)
        self._since_us: Dict[int, int] = {}

    # -- CPU-usage accounting ------------------------------------------

    def on_dispatch(self, lwp: "SimLwp") -> None:
        self._since_us[int(lwp.lwp_id)] = self.sched.engine.now_us
        # a fresh quantum per selection (a preempted LWP's standing is
        # its bucket deadline, not a banked remainder) — also keeps a
        # parked tickless slice from surviving a later contended pick
        lwp.quantum_remaining_us = 0

    def on_deschedule(self, lwp: "SimLwp") -> None:
        self._charge(lwp)

    def _charge(self, lwp: "SimLwp") -> None:
        lid = int(lwp.lwp_id)
        now = self.sched.engine.now_us
        since = self._since_us.get(lid)
        if since is not None:
            self._used_us[lid] = self._used_us.get(lid, 0) + (now - since)
            self._since_us[lid] = now

    def _intra_priority(self, lwp: "SimLwp") -> int:
        """Decayed in-bucket priority: base level minus consumed CPU."""
        return lwp.kernel_priority - (
            self._used_us.get(int(lwp.lwp_id), 0) >> DECAY_SHIFT
        )

    def _bucket_key(self, bucket: int, now: int) -> Tuple[int, int]:
        """Deadline-ordering key of *bucket* (lower runs first).

        An empty bucket — e.g. the bucket of an ONPROC LWP with no
        queued siblings — gets the deadline it *would* receive if it
        turned non-empty now, so running LWPs compare fairly against
        queued ones.
        """
        if bucket == FIXPRI:
            return (0, 0)
        return (1, self._deadline.get(bucket, now + WCEL_US[bucket]))

    # -- the SchedulerBackend hooks ------------------------------------

    def thread_setrun(self, lwp: "SimLwp", boost: bool) -> None:
        # bucket membership is recomputed on demand; a fresh wake needs
        # no per-LWP placement state (deadlines refresh in sched_tick)
        pass

    def sched_tick(self, runnable: "List[SimLwp]", now: int) -> None:
        """Refresh bucket deadlines against the current runnable set."""
        present = {_bucket_for(lwp) for lwp in runnable}
        for b in list(self._deadline):
            if b not in present:
                del self._deadline[b]  # bucket drained: deadline resets
        for b in present:
            if b != FIXPRI and b not in self._deadline:
                self._deadline[b] = now + WCEL_US[b]

    def thread_select(self, runnable: "List[SimLwp]") -> "List[SimLwp]":
        if len(runnable) <= 1:
            return runnable
        rank = self._select_ranks()
        runnable.sort(
            key=lambda l: (
                rank[_bucket_for(l)],
                -(l.kernel_priority if l.rt else self._intra_priority(l)),
                l.enqueue_seq,
            )
        )
        return runnable

    def _select_ranks(self) -> Dict[int, int]:
        """Dispatch rank of every bucket for one selection (lower runs
        first): FIXPRI, then the EDF winner among non-empty share
        buckets — displaced by the highest warping bucket when one has
        budget — then the rest by deadline, then empty buckets."""
        order: Dict[int, int] = {FIXPRI: 0}
        nonempty = sorted(self._deadline.items(), key=lambda kv: (kv[1], kv[0]))
        ranked = [b for b, _ in nonempty]
        if ranked:
            winner = ranked[0]
            for b in _SHARE_BUCKETS:  # highest share bucket first
                if b >= winner:
                    # deadline-merit win: the warp budget refills
                    self._warp[winner] = WARP_US[winner]
                    break
                if b in self._deadline and self._warp[b] > 0:
                    self._warp[b] = max(0, self._warp[b] - QUANTUM_US[b])
                    ranked.remove(b)
                    ranked.insert(0, b)
                    break
        rank = 1
        for b in ranked:
            order[b] = rank
            rank += 1
        for b in _SHARE_BUCKETS:
            if b not in order:
                order[b] = rank
                rank += 1
        return order

    def quantum_for(self, lwp: "SimLwp") -> int:
        if lwp.rt:
            return self.config.rt_quantum_us
        cpu = lwp.cpu
        for other in self.sched._runnable.values():
            if other.bound_cpu is None or other.bound_cpu == cpu:
                return QUANTUM_US[_bucket_for(lwp)]
        # uncontended: park the tick (XNU coalesces idle-machine timers
        # the same way); on_contention re-arms when a contender queues
        return TICKLESS_SLICE_US

    def quantum_expire(self, lwp: "SimLwp") -> None:
        # charge the slice into the decay accumulator mid-run, so a
        # CPU hog sinks within its bucket even while it stays ONPROC
        self._charge(lwp)

    def quantum_yield(self, lwp: "SimLwp") -> bool:
        """Yield to any compatible contender whose bucket deadline is
        no later than ours (round-robin within a bucket); FIXPRI yields
        only to equal-or-higher RT priority."""
        runnable = self.sched._runnable
        if not runnable:
            return False
        now = self.sched.engine.now_us
        if lwp.rt:
            for other in runnable.values():
                if (
                    other.rt
                    and other.kernel_priority >= lwp.kernel_priority
                    and (other.bound_cpu is None or other.bound_cpu == lwp.cpu)
                ):
                    return True
            return False
        mine = self._bucket_key(_bucket_for(lwp), now)
        for other in runnable.values():
            if self._bucket_key(_bucket_for(other), now) <= mine and (
                other.bound_cpu is None or other.bound_cpu == lwp.cpu
            ):
                return True
        return False

    def on_contention(self, runnable: "List[SimLwp]") -> None:
        """A queued LWP found no idle CPU and no victim: collapse any
        parked tickless slice on the running LWPs back to the bucket
        quantum (measured from dispatch), so round-robin resumes."""
        now = self.sched.engine.now_us
        retick = self.sched.retick
        for cpu in self.sched.cpus:
            running = cpu.lwp
            if running is None or running.rt:
                continue
            quantum = self.quantum_for(running)
            if quantum >= TICKLESS_SLICE_US:
                continue  # no contender may run here
            ran = now - self._since_us.get(int(running.lwp_id), now)
            retick(running, max(1_000, quantum - ran))

    def find_victim(
        self, lwp: "SimLwp", allowed: "List[SimCpu]"
    ) -> "Optional[SimCpu]":
        """Preempt the running LWP whose bucket deadline is latest and
        strictly later than the candidate's (no same-deadline
        preemption); FIXPRI additionally displaces lower RT priority."""
        now = self.sched.engine.now_us
        mine = self._bucket_key(_bucket_for(lwp), now)
        victim_cpu: "Optional[SimCpu]" = None
        worst = mine
        for cpu in allowed:
            running = cpu.lwp
            assert running is not None
            key = self._bucket_key(_bucket_for(running), now)
            if key > worst:
                worst = key
                victim_cpu = cpu
        if victim_cpu is not None:
            return victim_cpu
        if lwp.rt:
            # FIXPRI round 2: displace a strictly lower RT priority
            victim_pri = lwp.kernel_priority
            for cpu in allowed:
                running = cpu.lwp
                assert running is not None
                if running.rt and running.kernel_priority < victim_pri:
                    victim_pri = running.kernel_priority
                    victim_cpu = cpu
        return victim_cpu
