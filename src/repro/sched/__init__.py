"""Pluggable kernel scheduler backends.

One recorded trace, several kernels: ``SimConfig(scheduler=...)``
selects which dispatch policy the simulated machine runs, turning a
prediction sweep into a cross-OS study.  Backends:

* ``"solaris"`` — the paper's two-level Solaris 2.5 TS/RT model (the
  default; bit-identical to the original hard-wired scheduler);
* ``"clutch"`` — XNU-Clutch-style EDF root buckets with warp budgets
  and timeshare decay;
* ``"cfs"`` — Linux-CFS-style vruntime fairness with min-granularity
  slicing and wake-preemption.

See :mod:`repro.sched.base` for the backend contract and
``docs/schedulers.md`` for each model's semantics.  The stress/parity
harness in :mod:`repro.sched.stress_parity` differentially tests every
registered backend on the same trace.
"""

from repro.sched.base import (
    SchedulerBackend,
    available_backends,
    backend_version,
    create_backend,
    register_backend,
)
from repro.sched.cfs import CfsBackend
from repro.sched.clutch import ClutchBackend
from repro.sched.solaris import SolarisBackend

__all__ = [
    "SchedulerBackend",
    "SolarisBackend",
    "ClutchBackend",
    "CfsBackend",
    "available_backends",
    "backend_version",
    "create_backend",
    "register_backend",
]
