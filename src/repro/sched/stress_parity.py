"""Cross-backend stress and parity harness: one trace, every kernel.

Every registered scheduler backend replays the same compiled traces —
healthy fixtures plus :mod:`repro.faultinject`-perturbed variants — and
each run is held to the invariants a correct scheduler cannot break,
whatever its policy:

* **no lost wakeups** — a trace whose replay completes under the
  reference backend completes under every backend.  A backend that
  mis-places a woken LWP strands its waiters, the watchdog diagnoses
  deadlock/livelock, and this harness fails;
* **conservation of CPU time** — per backend the machine's busy time
  equals the sum of per-thread work, fits the machine
  (``makespan × cpus``), and stays within a small tolerance of the
  other backends' totals (backends may differ in preemption counts and
  hence switch overhead, but never in the recorded work they execute);
* **same events** — the multiset of placed library calls
  ``(tid, primitive, object, status)`` is identical across backends:
  policy moves events in time, never invents or loses them;
* **deterministic replay** — running a cell twice produces equal
  results, and the compiled fast path stays bit-identical to the
  legacy walker *per backend*;
* **graceful degradation** — a wakeup-dropped trace must come back as
  a diagnosed partial result (deadlock detection fires) under every
  backend, never complete and never crash.

Run it directly (the CI ``sched-parity`` job does)::

    python -m repro.sched.stress_parity

Exit status 0 when every invariant holds, 1 with a per-violation
listing otherwise.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import SimConfig
from repro.core.simulator import ReplayPlan, Simulator
from repro.sched.base import available_backends

__all__ = ["StressReport", "run_stress", "main"]

#: relative spread allowed between backends' total CPU time (switch
#: overhead varies with preemption count; recorded work does not)
CPU_TIME_TOLERANCE = 0.10


@dataclass
class StressReport:
    """Outcome of one harness run."""

    cells: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def fail(self, message: str) -> None:
        self.violations.append(message)

    def describe(self) -> str:
        lines = [
            f"sched stress/parity: {self.cells} cells, "
            f"{len(self.violations)} violation(s)"
        ]
        lines.extend(f"  VIOLATION: {v}" for v in self.violations)
        return "\n".join(lines)


def _event_multiset(result) -> Dict[Tuple, int]:
    counts: Dict[Tuple, int] = {}
    for ev in result.events:
        key = (int(ev.tid), ev.primitive, ev.obj, ev.status)
        counts[key] = counts.get(key, 0) + 1
    return counts


def _replay(plan: ReplayPlan, config: SimConfig, engine: str):
    return Simulator(config, strict=False).run_replay(plan, replay_engine=engine)


def _check_cell(
    report: StressReport,
    name: str,
    plan: ReplayPlan,
    cpus: int,
    backends: List[str],
    *,
    expect_complete: bool,
) -> None:
    """Run one (fixture, cpus) cell under every backend and cross-check."""
    report.cells += 1
    results = {}
    for backend in backends:
        config = SimConfig(cpus=cpus, scheduler=backend)
        cell = f"{name}/{cpus}cpu/{backend}"
        legacy = _replay(plan, config, "legacy")
        fast = _replay(plan, config, "fast")
        again = _replay(plan, config, "fast")
        if fast != legacy:
            report.fail(f"{cell}: fast replay diverged from legacy")
            continue
        if fast != again:
            report.fail(f"{cell}: replay is not deterministic")
            continue
        results[backend] = fast

        if expect_complete and fast.incomplete:
            report.fail(
                f"{cell}: lost wakeup — complete trace came back "
                f"{fast.status.value} ({fast.incompleteness.reason})"
            )
        if not expect_complete and not fast.incomplete:
            report.fail(
                f"{cell}: wakeup-dropped trace replayed to completion "
                "(deadlock detection did not fire)"
            )

        busy = fast.total_cpu_time_us()
        work = sum(s.work_us for s in fast.summaries.values())
        if busy != work:
            report.fail(
                f"{cell}: CPU time not conserved — machine busy {busy}us "
                f"vs thread work {work}us"
            )
        if busy > fast.makespan_us * cpus:
            report.fail(
                f"{cell}: busy time {busy}us exceeds the machine "
                f"({fast.makespan_us}us x {cpus} CPUs)"
            )

    if len(results) < 2:
        return
    # cross-backend checks, against the reference backend's result
    reference_backend = backends[0]
    reference = results.get(reference_backend)
    if reference is None:
        return
    ref_events = _event_multiset(reference)
    ref_busy = reference.total_cpu_time_us()
    for backend, result in results.items():
        if backend == reference_backend:
            continue
        cell = f"{name}/{cpus}cpu/{backend}"
        if expect_complete and _event_multiset(result) != ref_events:
            report.fail(
                f"{cell}: placed-event multiset differs from "
                f"{reference_backend}'s"
            )
        if expect_complete and ref_busy:
            drift = abs(result.total_cpu_time_us() - ref_busy) / ref_busy
            if drift > CPU_TIME_TOLERANCE:
                report.fail(
                    f"{cell}: total CPU time {result.total_cpu_time_us()}us "
                    f"drifts {drift:.1%} from {reference_backend}'s "
                    f"{ref_busy}us (tolerance {CPU_TIME_TOLERANCE:.0%})"
                )


def _fixtures(scale: float) -> List[Tuple[str, ReplayPlan, bool]]:
    """(name, plan, expect_complete) triples: healthy traces plus
    faultinject-perturbed variants."""
    from repro.core.predictor import compile_trace
    from repro.faultinject.perturb import drop_wakeups, skew_clock, stall_threads
    from repro.program.uniexec import record_program
    from repro.workloads import get_workload

    prodcons = record_program(
        get_workload("prodcons").make_program(4, scale)
    ).trace
    fft = record_program(get_workload("fft").make_program(4, scale)).trace

    prodcons_plan = compile_trace(prodcons)
    fft_plan = compile_trace(fft)
    fixtures = [
        ("prodcons", prodcons_plan, True),
        ("barrier-fft", fft_plan, True),
        # perturbed but still well-formed: clock drift and parked LWPs
        # stress preemption paths without breaking completability
        ("prodcons-skew", skew_clock(prodcons_plan, seed=7), True),
        ("prodcons-stall", stall_threads(prodcons_plan, seed=7), True),
        # lost wakeups: every backend must diagnose, none may complete
        (
            "prodcons-dropped",
            compile_trace(drop_wakeups(prodcons, seed=7).trace),
            False,
        ),
    ]
    return fixtures


def run_stress(
    *,
    scale: float = 0.3,
    cpu_counts: Tuple[int, ...] = (2, 4),
    backends: Optional[List[str]] = None,
) -> StressReport:
    """Execute the full harness and return its report."""
    backends = list(backends or available_backends())
    # the reference backend leads (cross-backend checks anchor on it)
    if "solaris" in backends:
        backends.remove("solaris")
        backends.insert(0, "solaris")
    report = StressReport()
    for name, plan, expect_complete in _fixtures(scale):
        for cpus in cpu_counts:
            _check_cell(
                report, name, plan, cpus, backends,
                expect_complete=expect_complete,
            )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="cross-backend scheduler stress/parity harness"
    )
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument(
        "--cpus", default="2,4", help="comma-separated CPU counts"
    )
    parser.add_argument(
        "--backends", default=None,
        help="comma-separated backend names (default: all registered)",
    )
    args = parser.parse_args(argv)
    cpu_counts = tuple(int(v) for v in args.cpus.split(","))
    backends = args.backends.split(",") if args.backends else None
    report = run_stress(
        scale=args.scale, cpu_counts=cpu_counts, backends=backends
    )
    print(report.describe())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
