"""The standing chaos suite: every corruptor against a real log.

:func:`run_chaos` feeds every ``(corruptor, seed)`` variant of a log
through the strict parser first and the salvage pipeline second, and
classifies what happened.  The contract it checks is the robustness
invariant of the ingestion layer:

    every damaged log either still loads strictly, or salvages into a
    usable trace with a non-empty repair report — it never escapes as
    an unhandled exception.

Outcomes marked ``failed`` are contract violations; the test suite
asserts there are none, and CI runs this as a standing job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.errors import TraceError
from repro.recorder.logfile import loads
from repro.recorder.salvage import SalvageReport, salvage_loads

from repro.faultinject.corrupt import CorruptedLog, corruption_corpus

__all__ = ["ChaosOutcome", "run_chaos", "chaos_summary"]


@dataclass(frozen=True)
class ChaosOutcome:
    """What happened to one damaged variant of the log.

    ``status`` is ``"strict-ok"`` (the damage was harmless and the log
    still parses strictly), ``"salvaged"`` (strict parsing failed or the
    text changed, but the salvage pipeline produced a usable trace and a
    repair report), or ``"failed"`` (the robustness contract was
    violated: an unexpected exception escaped, or salvage claimed a
    damaged log needed no repairs).
    """

    kind: str
    seed: int
    status: str
    records: int = 0
    report: Optional[SalvageReport] = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("strict-ok", "salvaged")


def _examine(variant: CorruptedLog, pristine: str) -> ChaosOutcome:
    try:
        trace = loads(variant.text, mode="strict")
    except TraceError:
        # LogFormatError (parse damage) or TraceError (structural damage
        # that parsed fine) — either way the salvage pipeline takes over.
        pass
    else:
        return ChaosOutcome(
            kind=variant.kind, seed=variant.seed,
            status="strict-ok", records=len(trace),
        )

    try:
        result = salvage_loads(variant.text)
    except Exception as exc:  # noqa: BLE001 - the contract is "never raises"
        return ChaosOutcome(
            kind=variant.kind, seed=variant.seed,
            status="failed", error=f"salvage raised {type(exc).__name__}: {exc}",
        )

    if result.report.clean and variant.text != pristine:
        return ChaosOutcome(
            kind=variant.kind, seed=variant.seed,
            status="failed", report=result.report,
            error="strict load failed but salvage reported no repairs",
        )
    return ChaosOutcome(
        kind=variant.kind, seed=variant.seed,
        status="salvaged", records=len(result.trace), report=result.report,
    )


def run_chaos(text: str, *, seeds: Sequence[int] = (0, 1, 2)) -> List[ChaosOutcome]:
    """Damage *text* with every registered corruptor under every seed and
    classify each outcome.  Never raises; contract violations come back
    as outcomes with ``status == "failed"``."""
    return [
        _examine(variant, text)
        for variant in corruption_corpus(text, seeds=seeds)
    ]


def chaos_summary(outcomes: Iterable[ChaosOutcome]) -> str:
    """Human-readable tally, with one line per failure."""
    outcomes = list(outcomes)
    tally = {"strict-ok": 0, "salvaged": 0, "failed": 0}
    for o in outcomes:
        tally[o.status] = tally.get(o.status, 0) + 1
    lines = [
        f"{len(outcomes)} variant(s): "
        f"{tally['strict-ok']} strict-ok, "
        f"{tally['salvaged']} salvaged, "
        f"{tally['failed']} failed"
    ]
    for o in outcomes:
        if o.status == "failed":
            lines.append(f"  FAIL {o.kind} seed={o.seed}: {o.error}")
    return "\n".join(lines)
