"""Seeded corruptors over log-file text.

Each corruptor is a pure function ``(text, rng) -> text`` registered in
:data:`CORRUPTORS` under a stable name; :func:`corrupt` drives one by
name with an integer seed, and :func:`corruption_corpus` enumerates the
full corruptor x seed grid for the chaos suite.  The damage models the
failure modes a 15 MB log (§4) actually meets in the wild: a recorder
killed mid-write, a copy cut short, lines duplicated or reordered by a
buggy collector, and single-field bit-rot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence

__all__ = [
    "CorruptorFn",
    "CORRUPTORS",
    "corruptor",
    "corrupt",
    "corruption_corpus",
    "CorruptedLog",
    "truncate_at",
]

CorruptorFn = Callable[[str, random.Random], str]

CORRUPTORS: Dict[str, CorruptorFn] = {}


def corruptor(name: str) -> Callable[[CorruptorFn], CorruptorFn]:
    """Register a corruptor under *name*."""

    def register(fn: CorruptorFn) -> CorruptorFn:
        if name in CORRUPTORS:
            raise ValueError(f"duplicate corruptor {name!r}")
        CORRUPTORS[name] = fn
        return fn

    return register


def corrupt(text: str, kind: str, seed: int = 0) -> str:
    """Apply the named corruptor deterministically (same seed, same damage)."""
    try:
        fn = CORRUPTORS[kind]
    except KeyError:
        raise KeyError(
            f"unknown corruptor {kind!r}; have {sorted(CORRUPTORS)}"
        ) from None
    return fn(text, random.Random(seed))


@dataclass(frozen=True)
class CorruptedLog:
    """One damaged variant of a log, tagged with how it was made."""

    kind: str
    seed: int
    text: str


def corruption_corpus(
    text: str, *, seeds: Sequence[int] = (0, 1, 2)
) -> Iterator[CorruptedLog]:
    """Every registered corruptor applied under every seed."""
    for kind in sorted(CORRUPTORS):
        for seed in seeds:
            yield CorruptedLog(kind=kind, seed=seed, text=corrupt(text, kind, seed))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def truncate_at(text: str, offset: int) -> str:
    """Cut the log at an arbitrary byte offset (recorder died mid-write)."""
    return text[:max(0, offset)]


def _lines(text: str) -> List[str]:
    return text.splitlines(keepends=True)


def _record_indices(lines: List[str]) -> List[int]:
    """Indices of non-header, non-blank lines (the actual records)."""
    return [
        i
        for i, line in enumerate(lines)
        if line.strip() and not line.lstrip().startswith("#")
    ]


def _pick(rng: random.Random, indices: List[int], fraction: float, at_least: int = 1) -> List[int]:
    if not indices:
        return []
    count = max(at_least, int(len(indices) * fraction))
    count = min(count, len(indices))
    return sorted(rng.sample(indices, count))


# ---------------------------------------------------------------------------
# corruptors
# ---------------------------------------------------------------------------


@corruptor("truncate")
def _truncate(text: str, rng: random.Random) -> str:
    """Cut at a random byte offset, typically leaving a partial last line."""
    if not text:
        return text
    return truncate_at(text, rng.randrange(1, len(text) + 1))


@corruptor("drop-lines")
def _drop_lines(text: str, rng: random.Random) -> str:
    """Lose a few records (a collector that dropped buffers)."""
    lines = _lines(text)
    doomed = set(_pick(rng, _record_indices(lines), 0.05))
    return "".join(l for i, l in enumerate(lines) if i not in doomed)


@corruptor("duplicate-lines")
def _duplicate_lines(text: str, rng: random.Random) -> str:
    """Write a few records twice (a retried flush)."""
    lines = _lines(text)
    doubled = set(_pick(rng, _record_indices(lines), 0.05))
    out: List[str] = []
    for i, line in enumerate(lines):
        out.append(line)
        if i in doubled:
            out.append(line if line.endswith("\n") else line + "\n")
    return "".join(out)


@corruptor("swap-lines")
def _swap_lines(text: str, rng: random.Random) -> str:
    """Reorder adjacent records (out-of-order delivery)."""
    lines = _lines(text)
    records = _record_indices(lines)
    for i in _pick(rng, records[:-1], 0.05):
        j = records[records.index(i) + 1]
        lines[i], lines[j] = lines[j], lines[i]
    return "".join(lines)


def _mangle_field(text: str, rng: random.Random, column: int, value: str) -> str:
    """Replace field *column* of a few record lines with *value*."""
    lines = _lines(text)
    for i in _pick(rng, _record_indices(lines), 0.03):
        fields = lines[i].split()
        if len(fields) > column:
            fields[column] = value
            lines[i] = " ".join(fields) + "\n"
    return "".join(lines)


@corruptor("mangle-timestamp")
def _mangle_timestamp(text: str, rng: random.Random) -> str:
    return _mangle_field(text, rng, 0, "not-a-time")


@corruptor("negative-timestamp")
def _negative_timestamp(text: str, rng: random.Random) -> str:
    return _mangle_field(text, rng, 0, f"-{rng.randrange(1, 10)}.000000")


@corruptor("backwards-timestamp")
def _backwards_timestamp(text: str, rng: random.Random) -> str:
    """Rewind a few timestamps to zero (clock glitch; ordering damage)."""
    return _mangle_field(text, rng, 0, "0.000000")


@corruptor("mangle-tid")
def _mangle_tid(text: str, rng: random.Random) -> str:
    return _mangle_field(text, rng, 1, "X9")


@corruptor("mangle-primitive")
def _mangle_primitive(text: str, rng: random.Random) -> str:
    return _mangle_field(text, rng, 3, "warp_drive")


@corruptor("unknown-attribute")
def _unknown_attribute(text: str, rng: random.Random) -> str:
    """Append an attribute from a future format version (forward compat)."""
    lines = _lines(text)
    for i in _pick(rng, _record_indices(lines), 0.05):
        lines[i] = lines[i].rstrip("\n") + " colour=red\n"
    return "".join(lines)


@corruptor("garbage-bytes")
def _garbage_bytes(text: str, rng: random.Random) -> str:
    """Overwrite a small window with binary noise (disk corruption)."""
    if len(text) < 8:
        return text
    start = rng.randrange(0, len(text) - 4)
    width = rng.randrange(4, min(64, len(text) - start) + 1)
    noise = "".join(chr(rng.randrange(33, 127)) for _ in range(width))
    return text[:start] + noise + text[start + width:]


@corruptor("duplicate-header")
def _duplicate_header(text: str, rng: random.Random) -> str:
    lines = _lines(text)
    headers = [l for l in lines if l.lstrip().startswith("#")]
    if not headers:
        return text
    dup = rng.choice(headers)
    insert_at = rng.randrange(0, len(lines) + 1)
    lines.insert(insert_at, dup if dup.endswith("\n") else dup + "\n")
    return "".join(lines)


@corruptor("delete-header")
def _delete_header(text: str, rng: random.Random) -> str:
    """Lose the version header (the first thing truncation-from-the-top eats)."""
    lines = _lines(text)
    return "".join(l for l in lines if not l.lstrip().startswith("# vppb-log"))


@corruptor("invert-lock-order")
def _invert_lock_order(text: str, rng: random.Random) -> str:
    """Invert one thread's lock nesting (semantic damage, not syntax).

    Finds a properly nested window ``lock A .. lock B .. unlock B ..
    unlock A`` in one thread and swaps ``A`` and ``B`` on every
    mutex line inside it, so that thread now nests B-then-A while the
    rest of the log still nests A-then-B.  The result parses strictly,
    replays fine on one schedule — and carries a latent ABBA deadlock
    only a lock-order analysis (``vppb lint``, VPPB-R002) can see.
    Logs without a two-lock nest get weaker semantic damage instead: one
    complete lock..unlock span is retargeted onto a shadow mutex the
    rest of the log never synchronises on (still balanced, still
    parseable — but the critical section it guarded is now unprotected).
    """
    lines = _lines(text)

    def fields_of(i: int):
        parts = lines[i].split()
        if len(parts) < 4 or parts[3] not in ("mutex_lock", "mutex_unlock"):
            return None
        obj = next((p[4:] for p in parts[4:] if p.startswith("obj=")), None)
        return (parts[1], parts[2], parts[3], obj) if obj else None

    # per-thread scan for lock-A .. lock-B .. unlock-B .. unlock-A windows
    # (tracked on 'call' records; the paired 'ret' lines share the window)
    windows: List[tuple] = []  # (tid, start_line, end_line, obj_a, obj_b)
    nest: Dict[str, List[tuple]] = {}  # tid -> stack of (obj, line)
    inner: Dict[str, str] = {}  # tid -> first nested lock of the open span
    for i in _record_indices(lines):
        parsed = fields_of(i)
        if parsed is None:
            continue
        tid, phase, prim, obj = parsed
        if phase != "call":
            continue
        stack = nest.setdefault(tid, [])
        if prim == "mutex_lock":
            stack.append((obj, i))
            if len(stack) == 2 and tid not in inner and obj != stack[0][0]:
                inner[tid] = obj
        elif stack and stack[-1][0] == obj:
            outer_obj, outer_line = stack.pop()
            if not stack:
                obj_b = inner.pop(tid, None)
                if obj_b is not None:
                    windows.append((tid, outer_line, i, outer_obj, obj_b))
        else:
            nest[tid] = []  # unbalanced; restart this thread's scan
            inner.pop(tid, None)
    if not windows:
        # nothing nests: retarget one complete lock..unlock span instead
        spans: List[tuple] = []  # (tid, start_line, end_line, obj)
        open_lock: Dict[tuple, int] = {}
        for i in _record_indices(lines):
            parsed = fields_of(i)
            if parsed is None:
                continue
            tid, phase, prim, obj = parsed
            if prim == "mutex_lock" and phase == "call":
                open_lock[(tid, obj)] = i
            elif prim == "mutex_unlock" and phase == "ret":
                start = open_lock.pop((tid, obj), None)
                if start is not None:
                    spans.append((tid, start, i, obj))
        if not spans:
            return text
        tid, start, end, obj = spans[rng.randrange(len(spans))]
        for i in range(start, end + 1):
            parsed = fields_of(i)
            if parsed and parsed[0] == tid and f"obj={obj}" in lines[i]:
                lines[i] = lines[i].replace(f"obj={obj}", f"obj={obj}_shadow")
        return "".join(lines)
    tid, start, end, obj_a, obj_b = windows[rng.randrange(len(windows))]
    # the window must close with the ret of the final unlock, or the swap
    # would split that call/ret pair across two different objects
    for j in range(end + 1, len(lines)):
        if fields_of(j) == (tid, "ret", "mutex_unlock", obj_a):
            end = j
            break
    for i in range(start, end + 1):
        parsed = fields_of(i)
        if parsed is None or parsed[0] != tid:
            continue  # other threads' interleaved records stay intact
        if f"obj={obj_a}" in lines[i]:
            lines[i] = lines[i].replace(f"obj={obj_a}", f"obj={obj_b}")
        elif f"obj={obj_b}" in lines[i]:
            lines[i] = lines[i].replace(f"obj={obj_b}", f"obj={obj_a}")
    return "".join(lines)
