"""Seeded corruptors over log-file text.

Each corruptor is a pure function ``(text, rng) -> text`` registered in
:data:`CORRUPTORS` under a stable name; :func:`corrupt` drives one by
name with an integer seed, and :func:`corruption_corpus` enumerates the
full corruptor x seed grid for the chaos suite.  The damage models the
failure modes a 15 MB log (§4) actually meets in the wild: a recorder
killed mid-write, a copy cut short, lines duplicated or reordered by a
buggy collector, and single-field bit-rot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence

__all__ = [
    "CorruptorFn",
    "CORRUPTORS",
    "corruptor",
    "corrupt",
    "corruption_corpus",
    "CorruptedLog",
    "truncate_at",
]

CorruptorFn = Callable[[str, random.Random], str]

CORRUPTORS: Dict[str, CorruptorFn] = {}


def corruptor(name: str) -> Callable[[CorruptorFn], CorruptorFn]:
    """Register a corruptor under *name*."""

    def register(fn: CorruptorFn) -> CorruptorFn:
        if name in CORRUPTORS:
            raise ValueError(f"duplicate corruptor {name!r}")
        CORRUPTORS[name] = fn
        return fn

    return register


def corrupt(text: str, kind: str, seed: int = 0) -> str:
    """Apply the named corruptor deterministically (same seed, same damage)."""
    try:
        fn = CORRUPTORS[kind]
    except KeyError:
        raise KeyError(
            f"unknown corruptor {kind!r}; have {sorted(CORRUPTORS)}"
        ) from None
    return fn(text, random.Random(seed))


@dataclass(frozen=True)
class CorruptedLog:
    """One damaged variant of a log, tagged with how it was made."""

    kind: str
    seed: int
    text: str


def corruption_corpus(
    text: str, *, seeds: Sequence[int] = (0, 1, 2)
) -> Iterator[CorruptedLog]:
    """Every registered corruptor applied under every seed."""
    for kind in sorted(CORRUPTORS):
        for seed in seeds:
            yield CorruptedLog(kind=kind, seed=seed, text=corrupt(text, kind, seed))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def truncate_at(text: str, offset: int) -> str:
    """Cut the log at an arbitrary byte offset (recorder died mid-write)."""
    return text[:max(0, offset)]


def _lines(text: str) -> List[str]:
    return text.splitlines(keepends=True)


def _record_indices(lines: List[str]) -> List[int]:
    """Indices of non-header, non-blank lines (the actual records)."""
    return [
        i
        for i, line in enumerate(lines)
        if line.strip() and not line.lstrip().startswith("#")
    ]


def _pick(rng: random.Random, indices: List[int], fraction: float, at_least: int = 1) -> List[int]:
    if not indices:
        return []
    count = max(at_least, int(len(indices) * fraction))
    count = min(count, len(indices))
    return sorted(rng.sample(indices, count))


# ---------------------------------------------------------------------------
# corruptors
# ---------------------------------------------------------------------------


@corruptor("truncate")
def _truncate(text: str, rng: random.Random) -> str:
    """Cut at a random byte offset, typically leaving a partial last line."""
    if not text:
        return text
    return truncate_at(text, rng.randrange(1, len(text) + 1))


@corruptor("drop-lines")
def _drop_lines(text: str, rng: random.Random) -> str:
    """Lose a few records (a collector that dropped buffers)."""
    lines = _lines(text)
    doomed = set(_pick(rng, _record_indices(lines), 0.05))
    return "".join(l for i, l in enumerate(lines) if i not in doomed)


@corruptor("duplicate-lines")
def _duplicate_lines(text: str, rng: random.Random) -> str:
    """Write a few records twice (a retried flush)."""
    lines = _lines(text)
    doubled = set(_pick(rng, _record_indices(lines), 0.05))
    out: List[str] = []
    for i, line in enumerate(lines):
        out.append(line)
        if i in doubled:
            out.append(line if line.endswith("\n") else line + "\n")
    return "".join(out)


@corruptor("swap-lines")
def _swap_lines(text: str, rng: random.Random) -> str:
    """Reorder adjacent records (out-of-order delivery)."""
    lines = _lines(text)
    records = _record_indices(lines)
    for i in _pick(rng, records[:-1], 0.05):
        j = records[records.index(i) + 1]
        lines[i], lines[j] = lines[j], lines[i]
    return "".join(lines)


def _mangle_field(text: str, rng: random.Random, column: int, value: str) -> str:
    """Replace field *column* of a few record lines with *value*."""
    lines = _lines(text)
    for i in _pick(rng, _record_indices(lines), 0.03):
        fields = lines[i].split()
        if len(fields) > column:
            fields[column] = value
            lines[i] = " ".join(fields) + "\n"
    return "".join(lines)


@corruptor("mangle-timestamp")
def _mangle_timestamp(text: str, rng: random.Random) -> str:
    return _mangle_field(text, rng, 0, "not-a-time")


@corruptor("negative-timestamp")
def _negative_timestamp(text: str, rng: random.Random) -> str:
    return _mangle_field(text, rng, 0, f"-{rng.randrange(1, 10)}.000000")


@corruptor("backwards-timestamp")
def _backwards_timestamp(text: str, rng: random.Random) -> str:
    """Rewind a few timestamps to zero (clock glitch; ordering damage)."""
    return _mangle_field(text, rng, 0, "0.000000")


@corruptor("mangle-tid")
def _mangle_tid(text: str, rng: random.Random) -> str:
    return _mangle_field(text, rng, 1, "X9")


@corruptor("mangle-primitive")
def _mangle_primitive(text: str, rng: random.Random) -> str:
    return _mangle_field(text, rng, 3, "warp_drive")


@corruptor("unknown-attribute")
def _unknown_attribute(text: str, rng: random.Random) -> str:
    """Append an attribute from a future format version (forward compat)."""
    lines = _lines(text)
    for i in _pick(rng, _record_indices(lines), 0.05):
        lines[i] = lines[i].rstrip("\n") + " colour=red\n"
    return "".join(lines)


@corruptor("garbage-bytes")
def _garbage_bytes(text: str, rng: random.Random) -> str:
    """Overwrite a small window with binary noise (disk corruption)."""
    if len(text) < 8:
        return text
    start = rng.randrange(0, len(text) - 4)
    width = rng.randrange(4, min(64, len(text) - start) + 1)
    noise = "".join(chr(rng.randrange(33, 127)) for _ in range(width))
    return text[:start] + noise + text[start + width:]


@corruptor("duplicate-header")
def _duplicate_header(text: str, rng: random.Random) -> str:
    lines = _lines(text)
    headers = [l for l in lines if l.lstrip().startswith("#")]
    if not headers:
        return text
    dup = rng.choice(headers)
    insert_at = rng.randrange(0, len(lines) + 1)
    lines.insert(insert_at, dup if dup.endswith("\n") else dup + "\n")
    return "".join(lines)


@corruptor("delete-header")
def _delete_header(text: str, rng: random.Random) -> str:
    """Lose the version header (the first thing truncation-from-the-top eats)."""
    lines = _lines(text)
    return "".join(l for l in lines if not l.lstrip().startswith("# vppb-log"))
