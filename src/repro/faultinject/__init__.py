"""Deterministic fault injection for traces and simulations.

Production record-and-replay systems treat trace damage and divergence
as expected inputs; this package manufactures that damage on demand so
the salvage pipeline (:mod:`repro.recorder.salvage`) and the simulator
watchdog (:class:`repro.core.engine.Watchdog`) are tested against
realistic corruption rather than hand-picked fixtures.

* :mod:`repro.faultinject.corrupt` — seeded corruptors over log *text*
  (truncation, duplication, reordering, field mangling);
* :mod:`repro.faultinject.perturb` — seeded perturbations of traces and
  replay plans (dropped wake-ups, clock skew, stalled LWPs);
* :mod:`repro.faultinject.chaos` — the standing chaos suite: run every
  corruptor over a log and check each outcome loads strictly or
  salvages with a non-empty report.

Everything is driven by an explicit seed; the same (input, corruptor,
seed) triple always produces the same damage, so every chaos failure is
reproducible.
"""

from repro.faultinject.corrupt import (
    CORRUPTORS,
    corrupt,
    corruption_corpus,
    truncate_at,
)
from repro.faultinject.perturb import (
    drop_wakeups,
    perturb_profile,
    skew_clock,
    stall_threads,
)
from repro.faultinject.chaos import ChaosOutcome, chaos_summary, run_chaos

__all__ = [
    "CORRUPTORS",
    "corrupt",
    "corruption_corpus",
    "truncate_at",
    "drop_wakeups",
    "perturb_profile",
    "skew_clock",
    "stall_threads",
    "ChaosOutcome",
    "chaos_summary",
    "run_chaos",
]
