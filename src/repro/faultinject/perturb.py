"""Seeded perturbations of traces and replay plans.

Where :mod:`repro.faultinject.corrupt` damages the log *text* (and so
exercises the parser and the salvage pipeline), these perturbations
damage the *semantics* of an already-valid trace or compiled plan, and
so exercise the simulator's watchdog and graceful-degradation paths:

* :func:`drop_wakeups` removes ``sema_post`` / ``cond_signal`` /
  ``cond_broadcast`` call+ret pairs from a trace.  The result is still a
  structurally valid log, but replaying it can leave waiters blocked
  forever — exactly the deadlock/livelock shape the watchdog must turn
  into a partial result.
* :func:`skew_clock` scales each step's CPU burst by a seeded factor,
  modelling a recorder whose timestamps drifted.
* :func:`stall_threads` inserts long no-CPU delays into thread step
  lists, modelling LWPs that the kernel parked mid-run.

Plan perturbations follow :mod:`repro.analysis.transform`'s rule: they
return a new plan and never mutate the input.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import EventRecord, Phase, Primitive
from repro.core.simulator import ReplayPlan
from repro.core.trace import Trace
from repro.program import ops as op_mod
from repro.program.behavior import Step

__all__ = [
    "DroppedWakeups",
    "delay_steps",
    "drop_wakeups",
    "skew_clock",
    "stall_threads",
    "perturb_profile",
]

_WAKEUP_PRIMITIVES = (
    Primitive.SEMA_POST,
    Primitive.COND_SIGNAL,
    Primitive.COND_BROADCAST,
)


@dataclass(frozen=True)
class DroppedWakeups:
    """What :func:`drop_wakeups` removed: ``(lineno-ish index, record)``
    pairs in original record order, call records only."""

    trace: Trace
    dropped: Tuple[EventRecord, ...]


def _copy_plan(plan: ReplayPlan, steps: Dict[int, List[Step]]) -> ReplayPlan:
    return ReplayPlan(steps=steps, meta=dict(plan.meta), program_name=plan.program_name)


def delay_steps(
    plan: ReplayPlan,
    insertions: Sequence[Tuple[int, int, int]],
) -> ReplayPlan:
    """Insert targeted ``Delay`` steps: the deterministic sibling of
    :func:`stall_threads`.

    Each ``(tid, step_index, delay_us)`` entry inserts ``Step(0,
    Delay(delay_us))`` immediately *before* that thread's
    ``step_index``-th step, postponing everything from that step on.
    This is how lint witness schedules are built: a minimal, surgical
    nudge that forces a specific adjacency (a racy access inversion, a
    deadlock cycle's hold-and-wait overlap) without touching any other
    thread.  Returns a new plan; the input is untouched.
    """
    by_tid: Dict[int, List[Tuple[int, int]]] = {}
    for tid, step_index, delay_us in insertions:
        if delay_us < 0:
            raise ValueError(f"delay_us must be >= 0, got {delay_us}")
        by_tid.setdefault(int(tid), []).append((int(step_index), int(delay_us)))

    out: Dict[int, List[Step]] = {}
    for tid in sorted(plan.steps):
        steps = list(plan.steps[tid])
        # descending order keeps earlier indices valid across insertions
        for step_index, delay_us in sorted(by_tid.get(tid, ()), reverse=True):
            at = min(max(0, step_index), len(steps))
            steps.insert(at, Step(0, op_mod.Delay(delay_us)))
        out[tid] = steps
    return _copy_plan(plan, out)


def drop_wakeups(
    trace: Trace,
    *,
    seed: int = 0,
    fraction: float = 0.5,
    primitives: Sequence[Primitive] = _WAKEUP_PRIMITIVES,
) -> DroppedWakeups:
    """Remove a seeded sample of wake-up call+ret pairs from *trace*.

    Each victim is a CALL record of one of *primitives*; its matching
    RET (the next record of the same thread, primitive and object) is
    removed with it, so the result still satisfies the structural
    invariants and loads as a valid :class:`Trace`.  Replaying it,
    however, may strand the threads that waited on those signals —
    feeding the simulator's deadlock/watchdog machinery realistic input.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    records = list(trace.records)
    wanted = set(primitives)

    candidates = [
        i
        for i, rec in enumerate(records)
        if rec.is_call and rec.primitive in wanted
    ]
    count = min(len(candidates), max(1, int(len(candidates) * fraction))) if candidates else 0
    victims = sorted(rng.sample(candidates, count)) if count else []

    doomed: set = set()
    dropped: List[EventRecord] = []
    for i in victims:
        call = records[i]
        doomed.add(i)
        dropped.append(call)
        for j in range(i + 1, len(records)):
            rec = records[j]
            if (
                j not in doomed
                and rec.tid == call.tid
                and rec.primitive is call.primitive
                and rec.obj == call.obj
                and rec.phase is Phase.RET
            ):
                doomed.add(j)
                break

    kept = [rec for i, rec in enumerate(records) if i not in doomed]
    return DroppedWakeups(
        trace=Trace(kept, trace.meta, validate=True),
        dropped=tuple(dropped),
    )


def skew_clock(
    plan: ReplayPlan,
    *,
    seed: int = 0,
    max_skew: float = 0.1,
) -> ReplayPlan:
    """Scale each step's CPU burst by an independent seeded factor drawn
    uniformly from ``[1 - max_skew, 1 + max_skew]`` (recorder clock
    drift).  Returns a new plan; the input is untouched."""
    if not 0.0 <= max_skew < 1.0:
        raise ValueError(f"max_skew must be in [0, 1), got {max_skew}")
    rng = random.Random(seed)
    out: Dict[int, List[Step]] = {}
    for tid in sorted(plan.steps):
        new_steps: List[Step] = []
        for s in plan.steps[tid]:
            factor = rng.uniform(1.0 - max_skew, 1.0 + max_skew)
            new_steps.append(Step(max(0, round(s.work_us * factor)), s.op))
        out[tid] = new_steps
    return _copy_plan(plan, out)


def stall_threads(
    plan: ReplayPlan,
    *,
    seed: int = 0,
    stall_us: int = 50_000,
    fraction: float = 0.5,
    threads: Optional[Sequence[int]] = None,
) -> ReplayPlan:
    """Insert a ``Delay(stall_us)`` step at one seeded position in each
    chosen thread (the kernel parked the LWP mid-run).  ``threads``
    restricts the damage; by default a seeded *fraction* of all threads
    with at least one step is stalled."""
    if stall_us < 0:
        raise ValueError(f"stall_us must be >= 0, got {stall_us}")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    eligible = sorted(tid for tid, steps in plan.steps.items() if steps)
    if threads is not None:
        chosen = [tid for tid in eligible if tid in set(threads)]
    else:
        count = min(len(eligible), max(1, int(len(eligible) * fraction))) if eligible else 0
        chosen = sorted(rng.sample(eligible, count)) if count else []

    out: Dict[int, List[Step]] = {}
    for tid in sorted(plan.steps):
        steps = list(plan.steps[tid])
        if tid in chosen:
            at = rng.randrange(0, len(steps) + 1)
            steps.insert(at, Step(0, op_mod.Delay(stall_us)))
        out[tid] = steps
    return _copy_plan(plan, out)


def perturb_profile(
    profile_text: str,
    *,
    seed: int = 0,
    factor_range: Tuple[float, float] = (1.5, 3.0),
) -> str:
    """Silently corrupt a calibration profile's fitted parameters.

    Scales a seeded subset (at least one) of the profile's ``params`` by
    factors drawn from *factor_range*, leaving the recorded error table
    untouched — the exact failure mode drift detection exists for: a
    profile whose parameters no longer produce the accuracy it claims.
    ``vppb validate`` against the perturbed profile must flag the
    mismatch (exit 1 or 2), never pass it.

    Operates on the JSON text so it composes with the corruptor
    pipeline; raises ``ValueError`` for input that is not a profile.
    """
    import json

    lo, hi = factor_range
    if not 0 < lo <= hi:
        raise ValueError(f"bad factor range {factor_range!r}")
    try:
        document = json.loads(profile_text)
    except ValueError as exc:
        raise ValueError(f"not a calibration profile: {exc}") from exc
    params = document.get("params")
    if not isinstance(params, dict) or not params:
        raise ValueError("not a calibration profile: no 'params' object")
    rng = random.Random(f"vppb-profile-perturb-{seed}")
    names = sorted(params)
    count = rng.randint(1, len(names))
    for name in rng.sample(names, count):
        params[name] = round(float(params[name]) * rng.uniform(lo, hi), 6)
    return json.dumps(document, indent=2, sort_keys=True)
