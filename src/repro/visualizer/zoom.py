"""Zoom and interval selection (§3.3).

"The zoom utility can increase (or decrease) the magnification to an
arbitrary magnification degree in steps of a factor of 1.5 or 3.  The
zoom keeps the left-most time fixed in the execution flow graph.  The
user can mark a time interval in the parallelism graph, and the execution
graph will automatically show only the marked interval."

:class:`ZoomState` is the pure view-model: it tracks the visible window
over a fixed full range and implements those exact rules.  Renderers take
its ``(view_start_us, view_end_us)``.
"""

from __future__ import annotations

from repro.core.errors import VisualizationError

__all__ = ["ZOOM_FACTORS", "ZoomState"]

#: The paper's zoom step factors.
ZOOM_FACTORS = (1.5, 3.0)

#: Never zoom below one microsecond of visible time (Recorder resolution).
_MIN_SPAN_US = 1


class ZoomState:
    """Visible-window state of the execution flow graph."""

    def __init__(self, full_start_us: int, full_end_us: int):
        if full_end_us <= full_start_us:
            raise VisualizationError(
                f"empty time range [{full_start_us}, {full_end_us}]"
            )
        self.full_start_us = full_start_us
        self.full_end_us = full_end_us
        self.view_start_us = full_start_us
        self.view_end_us = full_end_us

    # ------------------------------------------------------------------

    @property
    def span_us(self) -> int:
        return self.view_end_us - self.view_start_us

    @property
    def magnification(self) -> float:
        """How many times the full range the current view is blown up."""
        return (self.full_end_us - self.full_start_us) / self.span_us

    # ------------------------------------------------------------------

    def zoom_in(self, factor: float = 1.5) -> "ZoomState":
        """Magnify by *factor*, keeping the left edge fixed (§3.3)."""
        self._check_factor(factor)
        new_span = max(_MIN_SPAN_US, round(self.span_us / factor))
        self.view_end_us = self.view_start_us + new_span
        return self

    def zoom_out(self, factor: float = 1.5) -> "ZoomState":
        """Shrink magnification by *factor*, left edge fixed, clamped to
        the full range."""
        self._check_factor(factor)
        new_span = round(self.span_us * factor)
        self.view_end_us = min(self.full_end_us, self.view_start_us + new_span)
        return self

    def select_interval(self, start_us: int, end_us: int) -> "ZoomState":
        """Jump to an interval marked in the parallelism graph (§3.3)."""
        if not (self.full_start_us <= start_us < end_us <= self.full_end_us):
            raise VisualizationError(
                f"interval [{start_us}, {end_us}] outside "
                f"[{self.full_start_us}, {self.full_end_us}]"
            )
        self.view_start_us = start_us
        self.view_end_us = end_us
        return self

    def scroll_to_center(self, time_us: int) -> "ZoomState":
        """Scroll so *time_us* sits mid-window (used when the inspector
        steps to an event: "the execution flow graph is automatically
        scrolled in order to place the event in the centre of the
        window")."""
        span = self.span_us
        start = time_us - span // 2
        start = max(self.full_start_us, min(start, self.full_end_us - span))
        self.view_start_us = start
        self.view_end_us = start + span
        return self

    def reset(self) -> "ZoomState":
        self.view_start_us = self.full_start_us
        self.view_end_us = self.full_end_us
        return self

    # ------------------------------------------------------------------

    @staticmethod
    def _check_factor(factor: float) -> None:
        if factor not in ZOOM_FACTORS:
            raise VisualizationError(
                f"zoom factor must be one of {ZOOM_FACTORS}, got {factor}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ZoomState [{self.view_start_us}, {self.view_end_us}] of "
            f"[{self.full_start_us}, {self.full_end_us}]>"
        )
