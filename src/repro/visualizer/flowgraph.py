"""The execution flow graph (§3.3, lower graph of fig. 5).

"In the execution flow graph the time is represented on the X-axis and
the threads are represented on the Y-axis.  A horizontal line indicates
that the thread of that Y-position is executing, the lack of a line
indicates that the thread can not execute, a grey line that the thread is
ready to run but does not have any LWP or CPU to run on."

:class:`FlowGraph` arranges the simulation result into renderable rows —
one per thread, each holding its state segments and event marks — and
supports the interval cropping the zoom machinery needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.errors import VisualizationError
from repro.core.ids import ThreadId
from repro.core.result import (
    PlacedEvent,
    SegmentKind,
    SimulationResult,
    ThreadSegment,
)

__all__ = ["FlowRow", "FlowGraph", "FindingMarker", "match_findings"]


@dataclass(frozen=True)
class FlowRow:
    """One thread's line in the flow graph."""

    tid: ThreadId
    label: str
    func_name: str
    segments: Sequence[ThreadSegment]
    events: Sequence[PlacedEvent]

    def active_in(self, start_us: int, end_us: int) -> bool:
        """True when the thread runs or produces an event in the window —
        the criterion the automatic thread compression uses (§3.3: "The
        compression only shows the threads active during the time
        interval shown")."""
        for seg in self.segments:
            if (
                seg.kind is SegmentKind.RUNNING
                and seg.end_us > start_us
                and seg.start_us < end_us
            ):
                return True
        for ev in self.events:
            if ev.end_us >= start_us and ev.start_us <= end_us:
                return True
        return False

    def cropped(self, start_us: int, end_us: int) -> "FlowRow":
        """Clip segments/events to a window (segments are trimmed, events
        kept if they intersect)."""
        segs = []
        for seg in self.segments:
            if seg.end_us <= start_us or seg.start_us >= end_us:
                continue
            segs.append(
                ThreadSegment(
                    tid=seg.tid,
                    kind=seg.kind,
                    start_us=max(seg.start_us, start_us),
                    end_us=min(seg.end_us, end_us),
                    cpu=seg.cpu,
                )
            )
        evs = [
            ev
            for ev in self.events
            if ev.end_us >= start_us and ev.start_us <= end_us
        ]
        return FlowRow(self.tid, self.label, self.func_name, segs, evs)


class FlowGraph:
    """All thread rows of one simulated execution."""

    def __init__(self, rows: List[FlowRow], start_us: int, end_us: int):
        self.rows = rows
        self.start_us = start_us
        self.end_us = end_us

    # ------------------------------------------------------------------

    @classmethod
    def from_result(cls, result: SimulationResult) -> "FlowGraph":
        rows = []
        for tid in sorted(result.segments, key=int):
            summary = result.summaries.get(tid)
            func = summary.func_name if summary else ""
            rows.append(
                FlowRow(
                    tid=tid,
                    label=f"T{int(tid)}",
                    func_name=func,
                    segments=list(result.segments[tid]),
                    events=result.events_for(tid),
                )
            )
        return cls(rows, 0, result.makespan_us)

    # ------------------------------------------------------------------

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us

    def row_for(self, tid: ThreadId) -> FlowRow:
        for row in self.rows:
            if int(row.tid) == int(tid):
                return row
        raise VisualizationError(f"no row for thread T{int(tid)}")

    def window(self, start_us: int, end_us: int) -> "FlowGraph":
        """Crop every row to [start_us, end_us)."""
        if start_us >= end_us:
            raise VisualizationError(f"bad window [{start_us}, {end_us})")
        rows = [row.cropped(start_us, end_us) for row in self.rows]
        return FlowGraph(rows, start_us, end_us)

    def compressed(
        self,
        *,
        window_start_us: Optional[int] = None,
        window_end_us: Optional[int] = None,
        keep: Optional[Sequence[int]] = None,
    ) -> "FlowGraph":
        """Remove irrelevant threads (§3.3 thread compression).

        Automatic mode (default): keep only the threads active in the
        visible interval.  Manual mode: ``keep`` lists the thread ids the
        user selected from the thread list.
        """
        lo = self.start_us if window_start_us is None else window_start_us
        hi = self.end_us if window_end_us is None else window_end_us
        if keep is not None:
            chosen = {int(t) for t in keep}
            rows = [r for r in self.rows if int(r.tid) in chosen]
        else:
            rows = [r for r in self.rows if r.active_in(lo, hi)]
        return FlowGraph(rows, self.start_us, self.end_us)

    def thread_ids(self) -> List[int]:
        return [int(r.tid) for r in self.rows]

    def event_count(self) -> int:
        return sum(len(r.events) for r in self.rows)


# ---------------------------------------------------------------------------
# lint overlay
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FindingMarker:
    """A lint finding anchored onto the flow graph.

    ``time_us`` is the start of the first placed event matching the
    finding's thread and source location (``None`` when the finding has
    no on-graph anchor — e.g. a whole-object observation); renderers draw
    these as markers on the owning thread's row.
    """

    finding: object  # repro.analysis.lint.findings.Finding
    tid: Optional[int]
    time_us: Optional[int]


def match_findings(graph: FlowGraph, findings: Sequence) -> List[FindingMarker]:
    """Anchor lint findings (trace-side) to placed events (simulation-side).

    The lint engine works on the recorded trace, the flow graph on a
    simulated execution, so record indices do not line up; what survives
    both worlds is (thread id, source location).  Each finding is matched
    to the earliest event of its thread at its source line; findings
    carrying neither stay unanchored (``time_us`` is ``None``).

    The graph's events are indexed once by (thread, file, line), so
    matching stays linear in events + findings rather than their product
    — a full lint report over a large trace anchors in one sweep.
    """
    anchors: dict = {}
    for row in graph.rows:
        per_site = anchors.setdefault(int(row.tid), {})
        for ev in row.events:
            if ev.source is None:
                continue
            key = (ev.source.file, ev.source.line)
            prior = per_site.get(key)
            if prior is None or ev.start_us < prior:
                per_site[key] = ev.start_us

    markers: List[FindingMarker] = []
    for finding in findings:
        tid = getattr(finding, "tid", None)
        source = getattr(finding, "source", None)
        time_us = None
        if tid is not None and source is not None:
            time_us = anchors.get(int(tid), {}).get((source.file, source.line))
        markers.append(FindingMarker(finding=finding, tid=tid, time_us=time_us))
    return markers
