"""The Visualizer (§3.3): graphs, zooming, inspection, rendering."""

from repro.visualizer.flowgraph import FlowGraph, FlowRow
from repro.visualizer.inspect import EventInfo, EventInspector
from repro.visualizer.parallelism import ParallelismGraph, ParallelismPoint
from repro.visualizer.ascii_render import (
    render_ascii,
    render_flow_ascii,
    render_parallelism_ascii,
)
from repro.visualizer.svg_render import render_svg, save_svg
from repro.visualizer.chrome_trace import save_chrome_trace, to_chrome_trace
from repro.visualizer.html_report import render_html_report, save_html_report
from repro.visualizer.stats import ThreadStats, format_thread_stats, thread_stats
from repro.visualizer.symbols import LEGEND, EventStyle, Shape, style_for
from repro.visualizer.zoom import ZOOM_FACTORS, ZoomState

__all__ = [
    "FlowGraph",
    "FlowRow",
    "EventInfo",
    "EventInspector",
    "ParallelismGraph",
    "ParallelismPoint",
    "render_ascii",
    "render_flow_ascii",
    "render_parallelism_ascii",
    "render_svg",
    "save_svg",
    "render_html_report",
    "save_html_report",
    "save_chrome_trace",
    "to_chrome_trace",
    "ThreadStats",
    "format_thread_stats",
    "thread_stats",
    "LEGEND",
    "EventStyle",
    "Shape",
    "style_for",
    "ZOOM_FACTORS",
    "ZoomState",
]
