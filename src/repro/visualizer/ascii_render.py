"""Terminal renderer: the fig. 5 graphs as plain text.

Useful for quick inspection in a shell and for assertable tests.  The
parallelism graph is a stacked column chart (``#`` running, ``+``
runnable); the flow graph uses ``=`` for running, ``.`` for
runnable-without-processor and spaces for blocked, with event characters
from :mod:`repro.visualizer.symbols` overlaid.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.result import SegmentKind, SimulationResult
from repro.core.timebase import format_us
from repro.visualizer.flowgraph import FlowGraph
from repro.visualizer.parallelism import ParallelismGraph
from repro.visualizer.symbols import style_for

__all__ = ["render_parallelism_ascii", "render_flow_ascii", "render_ascii"]

_RUNNING_CH = "#"
_RUNNABLE_CH = "+"
_RUN_LINE = "="
_GREY_LINE = "."


def _column_of(time_us: int, start: int, end: int, width: int) -> int:
    span = max(1, end - start)
    col = (time_us - start) * width // span
    return max(0, min(width - 1, col))


def render_parallelism_ascii(
    result: SimulationResult,
    *,
    width: int = 80,
    height: int = 10,
    window_start_us: Optional[int] = None,
    window_end_us: Optional[int] = None,
) -> str:
    """The upper fig. 5 graph as text columns."""
    start = 0 if window_start_us is None else window_start_us
    end = result.makespan_us if window_end_us is None else window_end_us
    end = max(end, start + 1)
    par = ParallelismGraph.from_result(result)

    # sample per column at the column's start time (vectorised: wide
    # renders of large logs are thousands of queries)
    import numpy as np

    span = end - start
    times = start + (np.arange(width, dtype=np.int64) * span) // width
    running_arr, runnable_arr = par.sample(times)
    running = running_arr.tolist()
    runnable = runnable_arr.tolist()
    peak = max(1, max(r + q for r, q in zip(running, runnable)))
    scale = height / peak

    rows: List[str] = []
    for level in range(height, 0, -1):
        row = []
        for r, q in zip(running, runnable):
            run_h = r * scale
            tot_h = (r + q) * scale
            if run_h >= level:
                row.append(_RUNNING_CH)
            elif tot_h >= level:
                row.append(_RUNNABLE_CH)
            else:
                row.append(" ")
        rows.append("".join(row))
    header = f"parallelism (peak {peak}; '#' running, '+' runnable)"
    footer = f"{format_us(start, decimals=3)}s{' ' * (width - 20)}{format_us(end, decimals=3)}s"
    return "\n".join([header] + rows + [footer])


def render_flow_ascii(
    result: SimulationResult,
    *,
    width: int = 80,
    window_start_us: Optional[int] = None,
    window_end_us: Optional[int] = None,
    compress_threads: bool = False,
) -> str:
    """The lower fig. 5 graph as one text row per thread."""
    start = 0 if window_start_us is None else window_start_us
    end = result.makespan_us if window_end_us is None else window_end_us
    end = max(end, start + 1)
    flow = FlowGraph.from_result(result)
    if compress_threads:
        flow = flow.compressed(window_start_us=start, window_end_us=end)

    label_w = max((len(f"{r.label} {r.func_name}".strip()) for r in flow.rows), default=4)
    lines = []
    for row in flow.rows:
        chars = [" "] * width
        for seg in row.segments:
            if seg.end_us <= start or seg.start_us >= end:
                continue
            ch = None
            if seg.kind is SegmentKind.RUNNING:
                ch = _RUN_LINE
            elif seg.kind is SegmentKind.RUNNABLE:
                ch = _GREY_LINE
            if ch is None:
                continue
            c0 = _column_of(max(seg.start_us, start), start, end, width)
            c1 = _column_of(min(seg.end_us, end), start, end, width)
            for c in range(c0, max(c0, c1) + 1):
                chars[c] = ch
        for ev in row.events:
            if not (start <= ev.start_us <= end):
                continue
            c = _column_of(ev.start_us, start, end, width)
            chars[c] = style_for(ev.primitive).char
        label = f"{row.label} {row.func_name}".strip().ljust(label_w)
        lines.append(f"{label} |{''.join(chars)}|")
    return "\n".join(lines)


def render_ascii(result: SimulationResult, *, width: int = 80, **kw) -> str:
    """Both graphs stacked, like the Visualizer's main window (fig. 5)."""
    return (
        render_parallelism_ascii(result, width=width, **kw)
        + "\n\n"
        + render_flow_ascii(result, width=width, **kw)
    )
