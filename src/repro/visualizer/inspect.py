"""Event inspection — the §3.3 popup window and stepping facilities.

"By selecting a particular (interesting) event ... a popup window is
shown that gives more information": about the thread (identity, start
routine, start/end time, time actually working, total execution time) and
about the event (what it was, which CPU, start/end/duration, source file
and line).  "The user can step to the previous or next event made by this
thread ... the user can find the next or previous similar event", i.e.
the next operation on the same object; and the tool can hand the source
position to an editor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.errors import VisualizationError
from repro.core.events import Primitive, SourceLocation, Status
from repro.core.ids import SyncObjectId, ThreadId
from repro.core.result import PlacedEvent, SimulationResult

__all__ = ["EventInfo", "EventInspector"]


@dataclass(frozen=True)
class EventInfo:
    """Everything the §3.3 popup displays for one selected event."""

    # --- the thread causing the event --------------------------------
    tid: int
    func_name: str
    thread_start_us: Optional[int]
    thread_end_us: Optional[int]
    thread_work_us: int
    thread_total_us: Optional[int]

    # --- the event itself ---------------------------------------------
    index: int
    primitive: Primitive
    obj: Optional[SyncObjectId]
    target: Optional[int]
    status: Optional[Status]
    cpu: Optional[int]
    start_us: int
    end_us: int
    source: Optional[SourceLocation]

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us

    def describe(self) -> str:
        """Multi-line text, one field per line (popup body)."""
        lines = [
            f"thread: T{self.tid} ({self.func_name or '?'})",
            f"thread started: {self.thread_start_us} us",
            f"thread ended: {self.thread_end_us} us",
            f"thread working time: {self.thread_work_us} us",
            f"thread total time: {self.thread_total_us} us",
            f"event: {self.primitive.value}"
            + (f" on {self.obj}" if self.obj else "")
            + (f" with T{self.target}" if self.target is not None else ""),
            f"on CPU: {self.cpu}",
            f"event start: {self.start_us} us, end: {self.end_us} us, "
            f"took: {self.duration_us} us",
        ]
        if self.status is not None:
            lines.append(f"outcome: {self.status.value}")
        if self.source is not None:
            lines.append(f"source: {self.source}")
        return "\n".join(lines)


class EventInspector:
    """Selection and stepping over a simulation's placed events."""

    def __init__(self, result: SimulationResult):
        self.result = result
        self._events = result.events  # sorted by (start, index)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------

    def popup(self, index: int) -> EventInfo:
        """Full popup info for event *index*."""
        ev = self._event(index)
        summary = self.result.summaries.get(ev.tid)
        if summary is None:
            raise VisualizationError(f"no summary for thread T{int(ev.tid)}")
        return EventInfo(
            tid=int(ev.tid),
            func_name=summary.func_name,
            thread_start_us=summary.start_us,
            thread_end_us=summary.end_us,
            thread_work_us=summary.work_us,
            thread_total_us=summary.total_us,
            index=ev.index,
            primitive=ev.primitive,
            obj=ev.obj,
            target=int(ev.target) if ev.target is not None else None,
            status=ev.status,
            cpu=ev.cpu,
            start_us=ev.start_us,
            end_us=ev.end_us,
            source=ev.source,
        )

    def find_at(self, tid: ThreadId, time_us: int) -> Optional[PlacedEvent]:
        """The event of *tid* nearest to *time_us* (a mouse click)."""
        candidates = [ev for ev in self._events if ev.tid == tid]
        if not candidates:
            return None
        return min(candidates, key=lambda ev: abs(ev.start_us - time_us))

    # ------------------------------------------------------------------
    # stepping (same thread)
    # ------------------------------------------------------------------

    def next_event(self, index: int) -> Optional[PlacedEvent]:
        """Next event made by the same thread."""
        ev = self._event(index)
        for cand in self._events[index + 1 :]:
            if cand.tid == ev.tid:
                return cand
        return None

    def prev_event(self, index: int) -> Optional[PlacedEvent]:
        """Previous event made by the same thread."""
        ev = self._event(index)
        for cand in reversed(self._events[:index]):
            if cand.tid == ev.tid:
                return cand
        return None

    # ------------------------------------------------------------------
    # similar-event stepping (any thread, same object/primitive)
    # ------------------------------------------------------------------

    def next_similar(self, index: int) -> Optional[PlacedEvent]:
        """Next event of the same type on the same object — e.g. "the
        next operation on the same mutex variable" (§3.3)."""
        ev = self._event(index)
        for cand in self._events[index + 1 :]:
            if self._similar(ev, cand):
                return cand
        return None

    def prev_similar(self, index: int) -> Optional[PlacedEvent]:
        ev = self._event(index)
        for cand in reversed(self._events[:index]):
            if self._similar(ev, cand):
                return cand
        return None

    def all_on_object(self, obj: SyncObjectId) -> list:
        """Every operation on one synchronisation object, in time order —
        the unique "follow all operations on a specific semaphore"
        facility the conclusion highlights."""
        return [ev for ev in self._events if ev.obj == obj]

    # ------------------------------------------------------------------
    # source mapping
    # ------------------------------------------------------------------

    def source_position(self, index: int) -> Tuple[str, int]:
        """(file, line) to hand to an editor, highlighted (§3.3)."""
        ev = self._event(index)
        if ev.source is None:
            raise VisualizationError(
                f"event {index} has no recorded source location"
            )
        return ev.source.file, ev.source.line

    # ------------------------------------------------------------------

    @staticmethod
    def _similar(a: PlacedEvent, b: PlacedEvent) -> bool:
        if a.obj is not None:
            return b.obj == a.obj  # any operation on the same variable
        return b.primitive is a.primitive

    def _event(self, index: int) -> PlacedEvent:
        if not 0 <= index < len(self._events):
            raise VisualizationError(f"no event with index {index}")
        return self._events[index]

    def __len__(self) -> int:
        return len(self._events)
