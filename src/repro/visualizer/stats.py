"""Numeric statistics view.

§6 notes that purely statistical displays "often give only average values
which are often useless since it is hard to identify when and where the
program generated the statistics" — VPPB's answer is the time-resolved
graphs.  Still, the event popup already carries per-thread numbers
(working time, total time), and a table of them is the quickest way to
*rank* suspects before diving into the flow graph.  This module provides
that table, clearly subordinated to the graphs it indexes into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.result import SegmentKind, SimulationResult
from repro.core.timebase import format_us

__all__ = ["ThreadStats", "thread_stats", "format_thread_stats"]


@dataclass(frozen=True)
class ThreadStats:
    """One thread's aggregate numbers (the popup's figures, tabulated)."""

    tid: int
    func_name: str
    running_us: int
    runnable_us: int
    blocked_us: int
    sleeping_us: int
    events: int

    @property
    def lifetime_us(self) -> int:
        return self.running_us + self.runnable_us + self.blocked_us + self.sleeping_us

    @property
    def utilisation(self) -> float:
        """Fraction of its lifetime the thread actually worked."""
        life = self.lifetime_us
        return self.running_us / life if life else 0.0


def thread_stats(result: SimulationResult) -> List[ThreadStats]:
    """Per-thread time decomposition, ordered by thread id."""
    stats: List[ThreadStats] = []
    for tid in sorted(result.segments, key=int):
        buckets = {kind: 0 for kind in SegmentKind}
        for seg in result.segments[tid]:
            buckets[seg.kind] += seg.duration_us
        summary = result.summaries.get(tid)
        stats.append(
            ThreadStats(
                tid=int(tid),
                func_name=summary.func_name if summary else "",
                running_us=buckets[SegmentKind.RUNNING],
                runnable_us=buckets[SegmentKind.RUNNABLE],
                blocked_us=buckets[SegmentKind.BLOCKED],
                sleeping_us=buckets[SegmentKind.SLEEPING],
                events=len(result.events_for(tid)),
            )
        )
    return stats


def format_thread_stats(
    result: SimulationResult, *, top: Optional[int] = None
) -> str:
    """A text table of :func:`thread_stats`, worst utilisation first when
    ``top`` is given (the ranking mode), thread order otherwise."""
    stats = thread_stats(result)
    if top is not None:
        stats = sorted(stats, key=lambda s: s.utilisation)[:top]
    lines = [
        f"{'thread':<14} {'running':>10} {'runnable':>10} {'blocked':>10} "
        f"{'sleeping':>10} {'util':>6} {'events':>7}"
    ]
    for s in stats:
        label = f"T{s.tid} {s.func_name}".strip()
        lines.append(
            f"{label:<14} {format_us(s.running_us, decimals=3):>10} "
            f"{format_us(s.runnable_us, decimals=3):>10} "
            f"{format_us(s.blocked_us, decimals=3):>10} "
            f"{format_us(s.sleeping_us, decimals=3):>10} "
            f"{s.utilisation:>5.0%} {s.events:>7}"
        )
    return "\n".join(lines)
