"""Standalone HTML report: the Visualizer session as a single file.

Bundles everything the §3.3 GUI offers into one self-contained HTML page
a browser can open offline: the fig. 5 SVG (parallelism + flow graphs),
the per-thread statistics table, the bottleneck ranking, the speed-up
summary, and an event table with source locations — the popup's content
for every event, searchable with the browser's find.

No JavaScript frameworks, no external assets: inline SVG and CSS only.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import List, Optional, Set, Tuple, Union

from repro.analysis.metrics import contention_by_object
from repro.core.result import SimulationResult
from repro.core.timebase import format_us
from repro.visualizer.stats import thread_stats
from repro.visualizer.svg_render import render_svg

__all__ = ["render_html_report", "save_html_report"]

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; font-size: 0.85em; }
th, td { border: 1px solid #ccc; padding: 3px 8px; text-align: right; }
th { background: #f0f0f0; } td.l, th.l { text-align: left; }
.summary { background: #f7f7f7; padding: 0.8em 1.2em; border-radius: 6px; }
.note { color: #666; font-size: 0.85em; }
svg { max-width: 100%; height: auto; border: 1px solid #eee; }
tr.flagged td { background: #fff2f0; }
.sev-error { color: #b00020; font-weight: bold; }
.sev-warning { color: #9a6700; font-weight: bold; }
.sev-note { color: #555; }
.lint-why { color: #666; font-size: 0.85em; }
"""

_MAX_EVENT_ROWS = 2_000


def _esc(value: object) -> str:
    return html.escape(str(value))


def _summary_section(result: SimulationResult, title: str) -> List[str]:
    machine = result.config.describe()
    return [
        f"<h1>{_esc(title)}</h1>",
        '<div class="summary">',
        f"<p>machine: {_esc(machine)}</p>",
        f"<p>makespan: {format_us(result.makespan_us)} s &nbsp;|&nbsp; "
        f"utilisation: {result.utilisation():.0%} &nbsp;|&nbsp; "
        f"{len(result.events)} thread-library events, "
        f"{len(result.summaries)} threads</p>",
        "</div>",
    ]


def _stats_section(result: SimulationResult) -> List[str]:
    parts = [
        "<h2>Per-thread time decomposition</h2>",
        "<table><tr><th class='l'>thread</th><th>running (s)</th>"
        "<th>runnable (s)</th><th>blocked (s)</th><th>sleeping (s)</th>"
        "<th>util</th><th>events</th></tr>",
    ]
    for s in thread_stats(result):
        parts.append(
            f"<tr><td class='l'>T{s.tid} {_esc(s.func_name)}</td>"
            f"<td>{format_us(s.running_us)}</td>"
            f"<td>{format_us(s.runnable_us)}</td>"
            f"<td>{format_us(s.blocked_us)}</td>"
            f"<td>{format_us(s.sleeping_us)}</td>"
            f"<td>{s.utilisation:.0%}</td><td>{s.events}</td></tr>"
        )
    parts.append("</table>")
    return parts


def _bottleneck_section(result: SimulationResult, top: int) -> List[str]:
    profiles = [
        p for p in contention_by_object(result) if p.total_blocked_us > 0
    ][:top]
    if not profiles:
        return ["<h2>Bottlenecks</h2><p class='note'>no blocked time on any "
                "synchronisation object</p>"]
    parts = [
        "<h2>Bottlenecks (blocked time per object)</h2>",
        "<table><tr><th class='l'>object</th><th>ops</th>"
        "<th>blocking ops</th><th>total blocked (s)</th>"
        "<th>worst wait (s)</th></tr>",
    ]
    for p in profiles:
        parts.append(
            f"<tr><td class='l'>{_esc(p.obj)}</td><td>{p.operations}</td>"
            f"<td>{p.blocking_operations}</td>"
            f"<td>{format_us(p.total_blocked_us)}</td>"
            f"<td>{format_us(p.max_blocked_us)}</td></tr>"
        )
    parts.append("</table>")
    return parts


def _finding_sites(findings) -> Set[Tuple[int, str, int]]:
    """(tid, file, line) triples a finding points at — primary or witness."""
    sites: Set[Tuple[int, str, int]] = set()
    for f in findings:
        if f.tid is not None and f.source is not None:
            sites.add((f.tid, f.source.file, f.source.line))
        for site in f.related:
            if site.tid is not None and site.source is not None:
                sites.add((site.tid, site.source.file, site.source.line))
    return sites


def _lint_section(findings) -> List[str]:
    parts = ["<h2>Static analysis (trace lint)</h2>"]
    if not len(findings):
        parts.append(
            "<p class='note'>no findings: the recorded synchronisation "
            "behaviour passed every lint rule</p>"
        )
        return parts
    parts.append(
        "<table><tr><th class='l'>severity</th><th class='l'>rule</th>"
        "<th class='l'>thread</th><th class='l'>object</th>"
        "<th class='l'>source</th><th class='l'>finding</th></tr>"
    )
    for f in findings:
        details = "".join(
            f"<div class='lint-why'>see: {_esc(site.describe())}</div>"
            for site in f.related
        )
        witness = getattr(f, "witness", None)
        if witness:
            digest = str(witness.get("digest", ""))[:12]
            replay = witness.get("replay", "")
            details += (
                f"<div class='lint-why'>witness {_esc(digest)} — "
                f"<code>{_esc(replay)}</code></div>"
            )
        manifests = getattr(f, "manifests", None)
        if manifests is not None:
            shown = (
                ", ".join(_esc(m) for m in manifests)
                if manifests
                else "never (no probed config reproduced it)"
            )
            details += f"<div class='lint-why'>manifests: {shown}</div>"
        parts.append(
            f"<tr><td class='l sev-{f.severity.value}'>{f.severity.value}</td>"
            f"<td class='l'>{_esc(f.rule_id)}</td>"
            f"<td class='l'>{'T%d' % f.tid if f.tid is not None else ''}</td>"
            f"<td class='l'>{_esc(f.obj) if f.obj else ''}</td>"
            f"<td class='l'>{_esc(f.source) if f.source else ''}</td>"
            f"<td class='l'>{_esc(f.message)}{details}</td></tr>"
        )
    parts.append("</table>")
    return parts


def _event_section(
    result: SimulationResult, flagged: Set[Tuple[int, str, int]] = frozenset()
) -> List[str]:
    parts = [
        "<h2>Events (the popup's content, tabulated)</h2>",
        "<table><tr><th>#</th><th class='l'>thread</th><th class='l'>event</th>"
        "<th class='l'>object</th><th>start (s)</th><th>took (s)</th>"
        "<th>cpu</th><th class='l'>outcome</th><th class='l'>source</th></tr>",
    ]
    truncated = len(result.events) > _MAX_EVENT_ROWS
    for ev in result.events[:_MAX_EVENT_ROWS]:
        obj = _esc(ev.obj) if ev.obj else (
            f"T{int(ev.target)}" if ev.target is not None else ""
        )
        hit = (
            ev.source is not None
            and (int(ev.tid), ev.source.file, ev.source.line) in flagged
        )
        row_attr = " class='flagged'" if hit else ""
        parts.append(
            f"<tr{row_attr}>"
            f"<td>{ev.index}</td><td class='l'>T{int(ev.tid)}</td>"
            f"<td class='l'>{_esc(ev.primitive.value)}</td>"
            f"<td class='l'>{obj}</td>"
            f"<td>{format_us(ev.start_us)}</td>"
            f"<td>{format_us(ev.duration_us)}</td>"
            f"<td>{ev.cpu if ev.cpu is not None else ''}</td>"
            f"<td class='l'>{_esc(ev.status.value) if ev.status else ''}</td>"
            f"<td class='l'>{_esc(ev.source) if ev.source else ''}</td></tr>"
        )
    parts.append("</table>")
    if truncated:
        parts.append(
            f"<p class='note'>showing the first {_MAX_EVENT_ROWS} of "
            f"{len(result.events)} events</p>"
        )
    return parts


def render_html_report(
    result: SimulationResult,
    *,
    title: str = "VPPB predicted execution",
    top_bottlenecks: int = 10,
    svg_width: int = 1100,
    compress_threads: bool = False,
    findings=None,
) -> str:
    """Build the standalone HTML report text.

    ``findings`` (a :class:`repro.analysis.lint.LintReport`, optional)
    adds a "Static analysis" section and highlights the event-table rows
    whose (thread, source) a finding points at."""
    svg = render_svg(
        result, width=svg_width, compress_threads=compress_threads, title=""
    )
    flagged: Set[Tuple[int, str, int]] = (
        _finding_sites(findings) if findings is not None else set()
    )
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        *_summary_section(result, title),
        "<h2>Parallelism and execution flow (fig. 5 view)</h2>",
        svg,
        *(_lint_section(findings) if findings is not None else []),
        *_stats_section(result),
        *_bottleneck_section(result, top_bottlenecks),
        *_event_section(result, flagged),
        "<p class='note'>generated by repro, a reproduction of VPPB "
        "(Broberg, Lundberg, Grahn — IPPS 1998)</p>",
        "</body></html>",
    ]
    return "\n".join(parts)


def save_html_report(
    result: SimulationResult, path: Union[str, Path], **kw
) -> Path:
    """Render and write the report; returns the path."""
    path = Path(path)
    path.write_text(render_html_report(result, **kw))
    return path
