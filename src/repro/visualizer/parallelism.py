"""The parallelism graph (§3.3, upper graph of fig. 5).

"The higher the graph reaches the more parallelism exists in the
application.  The number of running threads are indicated with green.  On
top of the graph, all the threads that are runnable but not running are
presented in red.  It is easy [to] see where the performance bottlenecks
are in time as well as the potential parallelism."

:class:`ParallelismGraph` is a pair of step functions over simulated time:
``running(t)`` (green) and ``runnable(t)`` (red, stacked on top).  It is
derived from the simulation result's thread segments and is exact — the
breakpoints are the segment boundaries, not samples.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.errors import VisualizationError
from repro.core.result import SegmentKind, SimulationResult

__all__ = ["ParallelismPoint", "ParallelismGraph"]


@dataclass(frozen=True, slots=True)
class ParallelismPoint:
    """One breakpoint of the step function: counts hold from ``time_us``
    until the next point."""

    time_us: int
    running: int
    runnable: int

    @property
    def total(self) -> int:
        """Green plus red: all threads that *could* use a processor."""
        return self.running + self.runnable


class ParallelismGraph:
    """Exact running/runnable counts over time."""

    def __init__(self, points: Sequence[ParallelismPoint], end_us: int):
        if not points:
            points = [ParallelismPoint(0, 0, 0)]
        self.points: List[ParallelismPoint] = list(points)
        self.end_us = end_us

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_result(cls, result: SimulationResult) -> "ParallelismGraph":
        """Build the graph from a simulation's thread segments."""
        deltas: Dict[int, List[int]] = {}

        def bump(t: int, d_running: int, d_runnable: int) -> None:
            entry = deltas.setdefault(t, [0, 0])
            entry[0] += d_running
            entry[1] += d_runnable

        for segments in result.segments.values():
            for seg in segments:
                if seg.duration_us == 0:
                    continue
                if seg.kind is SegmentKind.RUNNING:
                    bump(seg.start_us, +1, 0)
                    bump(seg.end_us, -1, 0)
                elif seg.kind is SegmentKind.RUNNABLE:
                    bump(seg.start_us, 0, +1)
                    bump(seg.end_us, 0, -1)

        points: List[ParallelismPoint] = []
        running = runnable = 0
        for t in sorted(deltas):
            d_run, d_rbl = deltas[t]
            running += d_run
            runnable += d_rbl
            if running < 0 or runnable < 0:
                raise VisualizationError(
                    f"negative thread count at t={t} (corrupt segments)"
                )
            points.append(ParallelismPoint(t, running, runnable))
        if not points or points[0].time_us != 0:
            points.insert(0, ParallelismPoint(0, 0, 0))
        return cls(points, result.makespan_us)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def at(self, time_us: int) -> ParallelismPoint:
        """Counts in force at *time_us*."""
        times = [p.time_us for p in self.points]
        i = bisect.bisect_right(times, time_us) - 1
        if i < 0:
            return ParallelismPoint(time_us, 0, 0)
        return self.points[i]

    def sample(self, times_us: "np.ndarray") -> Tuple["np.ndarray", "np.ndarray"]:
        """Vectorised bulk query: (running, runnable) at each timestamp.

        Renderers sample one value per output column; for the 15 MB-log
        regime (§4) that is tens of thousands of queries, so this uses a
        single ``searchsorted`` over the breakpoint array instead of a
        Python-level bisect per sample.
        """
        times = np.asarray(times_us, dtype=np.int64)
        breakpoints = np.fromiter(
            (p.time_us for p in self.points), dtype=np.int64, count=len(self.points)
        )
        running = np.fromiter(
            (p.running for p in self.points), dtype=np.int64, count=len(self.points)
        )
        runnable = np.fromiter(
            (p.runnable for p in self.points), dtype=np.int64, count=len(self.points)
        )
        idx = np.searchsorted(breakpoints, times, side="right") - 1
        valid = idx >= 0
        idx = np.clip(idx, 0, len(breakpoints) - 1)
        out_running = np.where(valid, running[idx], 0)
        out_runnable = np.where(valid, runnable[idx], 0)
        return out_running, out_runnable

    def max_running(self) -> int:
        return max(p.running for p in self.points)

    def max_total(self) -> int:
        """Peak of green + red — the paper's "potential parallelism"."""
        return max(p.total for p in self.points)

    def average_running(self) -> float:
        """Time-weighted mean number of running threads."""
        if self.end_us == 0:
            return 0.0
        area = 0
        for a, b in zip(self.points, self.points[1:]):
            area += a.running * (b.time_us - a.time_us)
        area += self.points[-1].running * (self.end_us - self.points[-1].time_us)
        return area / self.end_us

    def average_runnable(self) -> float:
        """Time-weighted mean number of starved (red) threads."""
        if self.end_us == 0:
            return 0.0
        area = 0
        for a, b in zip(self.points, self.points[1:]):
            area += a.runnable * (b.time_us - a.time_us)
        area += self.points[-1].runnable * (self.end_us - self.points[-1].time_us)
        return area / self.end_us

    def window(self, start_us: int, end_us: int) -> "ParallelismGraph":
        """Crop to an interval (used when the user marks a region, §3.3)."""
        if start_us > end_us:
            raise VisualizationError(f"bad window [{start_us}, {end_us}]")
        first = self.at(start_us)
        points = [ParallelismPoint(start_us, first.running, first.runnable)]
        points += [
            p for p in self.points if start_us < p.time_us < end_us
        ]
        return ParallelismGraph(points, end_us)

    def bottleneck_intervals(self, *, max_running: int = 1) -> List[Tuple[int, int]]:
        """Intervals where at most *max_running* threads run — where the
        serialisation bottlenecks live.  Returns merged (start, end) pairs.
        """
        intervals: List[Tuple[int, int]] = []
        open_start = None
        for i, p in enumerate(self.points):
            end = (
                self.points[i + 1].time_us if i + 1 < len(self.points) else self.end_us
            )
            if p.running <= max_running:
                if open_start is None:
                    open_start = p.time_us
            else:
                if open_start is not None:
                    intervals.append((open_start, p.time_us))
                    open_start = None
            if end >= self.end_us:
                break
        if open_start is not None:
            intervals.append((open_start, self.end_us))
        return [iv for iv in intervals if iv[1] > iv[0]]
