"""Event symbols and colours (§3.3).

"Different events are displayed with different symbols and colours, e.g.,
all semaphores are shown in red, and the primitives sema_post and
sema_wait are represented as an upward and a downward facing arrow,
respectively."

The mapping is keyed by primitive; colour follows the object family
(semaphores red, mutexes blue, condition variables green, readers/writer
locks purple, thread management black).  Both renderers consume it: the
SVG renderer draws ``shape`` with ``color``; the terminal renderer prints
``char``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.core.events import Primitive

__all__ = ["Shape", "EventStyle", "style_for", "LEGEND"]


class Shape(enum.Enum):
    """Geometric shapes the SVG renderer knows how to draw."""

    ARROW_UP = "arrow_up"
    ARROW_DOWN = "arrow_down"
    ARROW_UP_HOLLOW = "arrow_up_hollow"
    ARROW_DOWN_HOLLOW = "arrow_down_hollow"
    CIRCLE = "circle"
    DIAMOND = "diamond"
    CROSS = "cross"
    SQUARE = "square"
    TICK = "tick"


@dataclass(frozen=True, slots=True)
class EventStyle:
    """How one primitive is displayed in the execution flow graph."""

    shape: Shape
    color: str
    char: str
    label: str


_SEMA = "#cc2222"  # red — the paper's semaphore colour
_MUTEX = "#2244cc"  # blue
_COND = "#117722"  # green
_RW = "#7722aa"  # purple
_THREAD = "#111111"  # black

_STYLES: Dict[Primitive, EventStyle] = {
    # semaphores: up/down arrows in red, exactly as §3.3 describes
    Primitive.SEMA_POST: EventStyle(Shape.ARROW_UP, _SEMA, "^", "sema_post"),
    Primitive.SEMA_WAIT: EventStyle(Shape.ARROW_DOWN, _SEMA, "v", "sema_wait"),
    Primitive.SEMA_TRYWAIT: EventStyle(
        Shape.ARROW_DOWN_HOLLOW, _SEMA, "y", "sema_trywait"
    ),
    Primitive.SEMA_INIT: EventStyle(Shape.SQUARE, _SEMA, "s", "sema_init"),
    # mutexes
    Primitive.MUTEX_LOCK: EventStyle(Shape.ARROW_DOWN, _MUTEX, "v", "mutex_lock"),
    Primitive.MUTEX_UNLOCK: EventStyle(Shape.ARROW_UP, _MUTEX, "^", "mutex_unlock"),
    Primitive.MUTEX_TRYLOCK: EventStyle(
        Shape.ARROW_DOWN_HOLLOW, _MUTEX, "t", "mutex_trylock"
    ),
    # condition variables
    Primitive.COND_WAIT: EventStyle(Shape.ARROW_DOWN, _COND, "w", "cond_wait"),
    Primitive.COND_TIMEDWAIT: EventStyle(
        Shape.ARROW_DOWN_HOLLOW, _COND, "W", "cond_timedwait"
    ),
    Primitive.COND_SIGNAL: EventStyle(Shape.ARROW_UP, _COND, "s", "cond_signal"),
    Primitive.COND_BROADCAST: EventStyle(
        Shape.ARROW_UP_HOLLOW, _COND, "B", "cond_broadcast"
    ),
    # readers/writer locks
    Primitive.RW_RDLOCK: EventStyle(Shape.ARROW_DOWN, _RW, "r", "rw_rdlock"),
    Primitive.RW_WRLOCK: EventStyle(Shape.ARROW_DOWN, _RW, "R", "rw_wrlock"),
    Primitive.RW_TRYRDLOCK: EventStyle(
        Shape.ARROW_DOWN_HOLLOW, _RW, "q", "rw_tryrdlock"
    ),
    Primitive.RW_TRYWRLOCK: EventStyle(
        Shape.ARROW_DOWN_HOLLOW, _RW, "Q", "rw_trywrlock"
    ),
    Primitive.RW_UNLOCK: EventStyle(Shape.ARROW_UP, _RW, "u", "rw_unlock"),
    # thread management
    Primitive.THR_CREATE: EventStyle(Shape.CIRCLE, _THREAD, "o", "thr_create"),
    Primitive.THR_EXIT: EventStyle(Shape.CROSS, _THREAD, "x", "thr_exit"),
    Primitive.THR_JOIN: EventStyle(Shape.DIAMOND, _THREAD, "j", "thr_join"),
    Primitive.THR_YIELD: EventStyle(Shape.TICK, _THREAD, "~", "thr_yield"),
    Primitive.THR_SETPRIO: EventStyle(Shape.SQUARE, _THREAD, "p", "thr_setprio"),
    Primitive.THR_SETCONCURRENCY: EventStyle(
        Shape.SQUARE, _THREAD, "c", "thr_setconcurrency"
    ),
    Primitive.THREAD_START: EventStyle(Shape.TICK, _THREAD, "|", "thread_start"),
    Primitive.IO_WAIT: EventStyle(Shape.SQUARE, "#b8860b", "D", "io_wait"),
    # shared-variable accesses (lint instrumentation): orange ticks
    Primitive.SHARED_READ: EventStyle(Shape.TICK, "#cc7700", ".", "shared_read"),
    Primitive.SHARED_WRITE: EventStyle(Shape.TICK, "#cc7700", "!", "shared_write"),
    Primitive.START_COLLECT: EventStyle(Shape.TICK, _THREAD, "[", "start_collect"),
    Primitive.END_COLLECT: EventStyle(Shape.TICK, _THREAD, "]", "end_collect"),
}

_DEFAULT = EventStyle(Shape.SQUARE, "#666666", "?", "event")

#: (label, colour, char) triples for rendering a legend.
LEGEND = [
    (style.label, style.color, style.char) for style in _STYLES.values()
]


def style_for(primitive: Primitive) -> EventStyle:
    """Display style of one primitive (a neutral default for unknowns)."""
    return _STYLES.get(primitive, _DEFAULT)
