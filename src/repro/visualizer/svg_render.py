"""SVG renderer: the fig. 5 view as a standalone vector image.

Renders the parallelism graph (green running area with the red runnable
band stacked on top) above the execution flow graph (per-thread lines:
solid black = running, grey = runnable-without-processor, gap = blocked;
event symbols per :mod:`repro.visualizer.symbols`), plus a time axis and
a legend.  No third-party dependencies — plain SVG string building.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import List, Optional, Union

from repro.core.result import SegmentKind, SimulationResult
from repro.core.timebase import format_us
from repro.visualizer.flowgraph import FlowGraph
from repro.visualizer.parallelism import ParallelismGraph
from repro.visualizer.symbols import Shape, style_for

__all__ = ["render_svg", "save_svg"]

_RUNNING_FILL = "#2e9e4f"  # green (paper)
_RUNNABLE_FILL = "#d23b2f"  # red (paper)
_RUN_LINE = "#111111"
_GREY_LINE = "#9a9a9a"
_AXIS = "#444444"

_MARGIN_L = 70
_MARGIN_R = 20
_PAR_HEIGHT = 120
_ROW_HEIGHT = 22
_GAP = 40
_AXIS_H = 30


def _x(time_us: int, start_us: int, end_us: int, width: float) -> float:
    span = max(1, end_us - start_us)
    return _MARGIN_L + (time_us - start_us) / span * width


def _symbol(shape: Shape, color: str, x: float, y: float, size: float = 5.0) -> str:
    s = size
    if shape in (Shape.ARROW_UP, Shape.ARROW_UP_HOLLOW):
        fill = color if shape is Shape.ARROW_UP else "none"
        return (
            f'<polygon points="{x - s},{y + s} {x + s},{y + s} {x},{y - s}" '
            f'fill="{fill}" stroke="{color}" stroke-width="1"/>'
        )
    if shape in (Shape.ARROW_DOWN, Shape.ARROW_DOWN_HOLLOW):
        fill = color if shape is Shape.ARROW_DOWN else "none"
        return (
            f'<polygon points="{x - s},{y - s} {x + s},{y - s} {x},{y + s}" '
            f'fill="{fill}" stroke="{color}" stroke-width="1"/>'
        )
    if shape is Shape.CIRCLE:
        return f'<circle cx="{x}" cy="{y}" r="{s * 0.8}" fill="{color}"/>'
    if shape is Shape.DIAMOND:
        return (
            f'<polygon points="{x},{y - s} {x + s},{y} {x},{y + s} {x - s},{y}" '
            f'fill="{color}"/>'
        )
    if shape is Shape.CROSS:
        return (
            f'<path d="M {x - s} {y - s} L {x + s} {y + s} '
            f'M {x - s} {y + s} L {x + s} {y - s}" '
            f'stroke="{color}" stroke-width="1.6"/>'
        )
    if shape is Shape.SQUARE:
        return (
            f'<rect x="{x - s * 0.7}" y="{y - s * 0.7}" width="{s * 1.4}" '
            f'height="{s * 1.4}" fill="{color}"/>'
        )
    # TICK and anything else
    return (
        f'<line x1="{x}" y1="{y - s}" x2="{x}" y2="{y + s}" '
        f'stroke="{color}" stroke-width="1.4"/>'
    )


def _render_parallelism(
    par: ParallelismGraph, start_us: int, end_us: int, width: float, y0: float
) -> List[str]:
    out = [
        f'<text x="{_MARGIN_L}" y="{y0 - 6}" font-size="12" fill="{_AXIS}">'
        "parallelism (green running, red runnable)</text>"
    ]
    peak = max(1, par.max_total())
    scale = _PAR_HEIGHT / peak
    base = y0 + _PAR_HEIGHT

    pts = [p for p in par.points if p.time_us <= end_us]
    for i, p in enumerate(pts):
        if p.time_us >= end_us:
            break
        t0 = max(p.time_us, start_us)
        t1 = pts[i + 1].time_us if i + 1 < len(pts) else end_us
        t1 = min(t1, end_us)
        if t1 <= t0:
            continue
        x0 = _x(t0, start_us, end_us, width)
        x1 = _x(t1, start_us, end_us, width)
        run_h = p.running * scale
        rbl_h = p.runnable * scale
        if run_h:
            out.append(
                f'<rect x="{x0:.2f}" y="{base - run_h:.2f}" '
                f'width="{x1 - x0:.2f}" height="{run_h:.2f}" '
                f'fill="{_RUNNING_FILL}"/>'
            )
        if rbl_h:
            out.append(
                f'<rect x="{x0:.2f}" y="{base - run_h - rbl_h:.2f}" '
                f'width="{x1 - x0:.2f}" height="{rbl_h:.2f}" '
                f'fill="{_RUNNABLE_FILL}"/>'
            )
    # y scale marks
    out.append(
        f'<line x1="{_MARGIN_L}" y1="{y0}" x2="{_MARGIN_L}" y2="{base}" '
        f'stroke="{_AXIS}" stroke-width="1"/>'
    )
    out.append(
        f'<text x="{_MARGIN_L - 8}" y="{y0 + 10}" font-size="10" '
        f'text-anchor="end" fill="{_AXIS}">{peak}</text>'
    )
    out.append(
        f'<text x="{_MARGIN_L - 8}" y="{base}" font-size="10" '
        f'text-anchor="end" fill="{_AXIS}">0</text>'
    )
    return out


def _render_flow(
    flow: FlowGraph, start_us: int, end_us: int, width: float, y0: float
) -> List[str]:
    out = [
        f'<text x="{_MARGIN_L}" y="{y0 - 6}" font-size="12" fill="{_AXIS}">'
        "execution flow</text>"
    ]
    for i, row in enumerate(flow.rows):
        y = y0 + i * _ROW_HEIGHT + _ROW_HEIGHT / 2
        label = html.escape(f"{row.label} {row.func_name}".strip())
        out.append(
            f'<text x="{_MARGIN_L - 8}" y="{y + 4}" font-size="11" '
            f'text-anchor="end" fill="{_AXIS}">{label}</text>'
        )
        for seg in row.segments:
            if seg.end_us <= start_us or seg.start_us >= end_us:
                continue
            if seg.kind is SegmentKind.RUNNING:
                color, w = _RUN_LINE, 2.4
            elif seg.kind is SegmentKind.RUNNABLE:
                color, w = _GREY_LINE, 2.4
            else:
                continue  # blocked/sleeping: no line (§3.3)
            x0 = _x(max(seg.start_us, start_us), start_us, end_us, width)
            x1 = _x(min(seg.end_us, end_us), start_us, end_us, width)
            out.append(
                f'<line x1="{x0:.2f}" y1="{y}" x2="{x1:.2f}" y2="{y}" '
                f'stroke="{color}" stroke-width="{w}"/>'
            )
        for ev in row.events:
            if ev.start_us > end_us or ev.start_us < start_us:
                continue
            style = style_for(ev.primitive)
            x = _x(ev.start_us, start_us, end_us, width)
            title = html.escape(
                f"{ev.primitive.value}"
                + (f" {ev.obj}" if ev.obj else "")
                + f" @ {format_us(ev.start_us)}s"
            )
            out.append(
                "<g>"
                + _symbol(style.shape, style.color, x, y)
                + f"<title>{title}</title></g>"
            )
    return out


def _render_axis(
    start_us: int, end_us: int, width: float, y: float, ticks: int = 8
) -> List[str]:
    out = [
        f'<line x1="{_MARGIN_L}" y1="{y}" x2="{_MARGIN_L + width:.2f}" y2="{y}" '
        f'stroke="{_AXIS}" stroke-width="1"/>'
    ]
    for i in range(ticks + 1):
        t = start_us + (end_us - start_us) * i // ticks
        x = _x(t, start_us, end_us, width)
        out.append(
            f'<line x1="{x:.2f}" y1="{y}" x2="{x:.2f}" y2="{y + 5}" '
            f'stroke="{_AXIS}" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{x:.2f}" y="{y + 18}" font-size="10" '
            f'text-anchor="middle" fill="{_AXIS}">{format_us(t, decimals=3)}s</text>'
        )
    return out


def render_svg(
    result: SimulationResult,
    *,
    window_start_us: Optional[int] = None,
    window_end_us: Optional[int] = None,
    width: int = 1000,
    compress_threads: bool = False,
    title: str = "",
) -> str:
    """Render the fig. 5 view (parallelism + flow graphs) as SVG text."""
    start = 0 if window_start_us is None else window_start_us
    end = result.makespan_us if window_end_us is None else window_end_us
    end = max(end, start + 1)

    par = ParallelismGraph.from_result(result)
    flow = FlowGraph.from_result(result)
    if compress_threads:
        flow = flow.compressed(window_start_us=start, window_end_us=end)

    plot_w = width - _MARGIN_L - _MARGIN_R
    y_par = 30
    y_flow = y_par + _PAR_HEIGHT + _GAP
    y_axis = y_flow + len(flow.rows) * _ROW_HEIGHT + 10
    height = y_axis + _AXIS_H + 10

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="16" font-size="13" '
            f'text-anchor="middle" fill="{_AXIS}">{html.escape(title)}</text>'
        )
    parts += _render_parallelism(par, start, end, plot_w, y_par)
    parts += _render_flow(flow, start, end, plot_w, y_flow)
    parts += _render_axis(start, end, plot_w, y_axis)
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(result: SimulationResult, path: Union[str, Path], **kw) -> Path:
    """Render and write to *path*; returns the path."""
    path = Path(path)
    path.write_text(render_svg(result, **kw))
    return path
