"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

A modern renderer target for the §3.3 execution flow graph: the simulated
execution exported as the Trace Event Format's JSON array, loadable in
``chrome://tracing``, Perfetto UI or ``speedscope``.  Threads become
rows, RUNNING segments become duration events (named by the thread's
start routine), thread-library calls become either instant events (fast
ops) or duration events (blocking waits), and CPUs are exposed as
counters so the parallelism graph is visible as a track.

Format reference: the de-facto "Trace Event Format" document (Google).
Only features every viewer supports are emitted: ``X`` (complete), ``i``
(instant) and ``C`` (counter) events, microsecond timestamps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.result import SegmentKind, SimulationResult
from repro.visualizer.parallelism import ParallelismGraph

__all__ = ["to_chrome_trace", "save_chrome_trace"]

#: ops quicker than this render as instants (arrows), not bars
_INSTANT_THRESHOLD_US = 50


def to_chrome_trace(result: SimulationResult, *, program: str = "vppb") -> str:
    """Serialise a simulated execution to Trace Event Format JSON."""
    events: List[dict] = []
    pid = 1

    # thread metadata: names and stable ordering
    for tid in sorted(result.summaries, key=int):
        summary = result.summaries[tid]
        name = f"T{int(tid)} {summary.func_name}".strip()
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": int(tid),
                "args": {"name": name},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": pid,
                "tid": int(tid),
                "args": {"sort_index": int(tid)},
            }
        )

    # RUNNING segments as complete events, labelled with the CPU
    for tid, segments in result.segments.items():
        for seg in segments:
            if seg.kind is not SegmentKind.RUNNING or seg.duration_us == 0:
                continue
            events.append(
                {
                    "ph": "X",
                    "name": f"run cpu{seg.cpu}",
                    "cat": "running",
                    "pid": pid,
                    "tid": int(tid),
                    "ts": seg.start_us,
                    "dur": seg.duration_us,
                    "args": {"cpu": seg.cpu},
                }
            )

    # thread-library calls: instants for fast ops, bars for blocking waits
    for ev in result.events:
        args: Dict[str, object] = {}
        if ev.obj is not None:
            args["object"] = str(ev.obj)
        if ev.target is not None:
            args["target"] = f"T{int(ev.target)}"
        if ev.status is not None:
            args["status"] = ev.status.value
        if ev.source is not None:
            args["source"] = str(ev.source)
        base = {
            "name": ev.primitive.value,
            "cat": "thread-library",
            "pid": pid,
            "tid": int(ev.tid),
            "args": args,
        }
        if ev.duration_us > _INSTANT_THRESHOLD_US:
            events.append({**base, "ph": "X", "ts": ev.start_us, "dur": ev.duration_us})
        else:
            events.append({**base, "ph": "i", "ts": ev.start_us, "s": "t"})

    # the parallelism graph as counter tracks (green/red of fig. 5)
    graph = ParallelismGraph.from_result(result)
    for point in graph.points:
        events.append(
            {
                "ph": "C",
                "name": "parallelism",
                "pid": pid,
                "ts": point.time_us,
                "args": {"running": point.running, "runnable": point.runnable},
            }
        )

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "program": program,
            "machine": result.config.describe(),
            "generator": "repro (VPPB reproduction)",
        },
    }
    return json.dumps(doc, separators=(",", ":"))


def save_chrome_trace(
    result: SimulationResult, path: Union[str, Path], **kw
) -> Path:
    """Write the Trace Event JSON; returns the path."""
    path = Path(path)
    path.write_text(to_chrome_trace(result, **kw))
    return path
